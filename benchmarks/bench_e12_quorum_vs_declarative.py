"""E12 — hand-tuned quorums vs. the declarative specification.

Section 2.2 and the related-work discussion argue that exposing (N, R, W)
knobs makes developers reason about mechanisms, and that declaring the
desired outcome is more effective.  This benchmark sweeps Dynamo-style
quorum settings on the same cluster substrate, measures the latency and
staleness each produces, and then shows the single declarative SCADS spec
("read your own writes, LWW otherwise") achieving the fresh-read outcome of
the strong quorum at a latency close to the weak one.
"""

from __future__ import annotations

import numpy as np

from repro import Scads
from repro.baselines.quorum_store import QuorumConfig, QuorumStore
from repro.core.consistency.spec import ConsistencySpec, SessionGuarantee
from repro.core.schema import EntitySchema, Field

OPERATIONS = 150
QUORUM_GRID = [
    QuorumConfig(n=3, r=1, w=1),
    QuorumConfig(n=3, r=1, w=3),
    QuorumConfig(n=3, r=3, w=1),
    QuorumConfig(n=3, r=2, w=2),
]


def _run_quorum(config: QuorumConfig) -> dict:
    store = QuorumStore(config, seed=47, initial_groups=2)
    write_latencies, read_latencies = [], []
    stale = 0
    for i in range(OPERATIONS):
        key = (f"user{i % 30}",)
        write_latencies.append(store.put(key, {"v": i}).latency)
        result, was_stale = store.get_and_check_staleness(key)
        read_latencies.append(result.latency if result.success else 0.0)
        stale += was_stale
        store.run_for(0.2)
    return {
        "label": f"quorum N={config.n} R={config.r} W={config.w}",
        "strong": config.strongly_consistent,
        "stale_fraction": stale / OPERATIONS,
        "mean_read_ms": float(np.mean(read_latencies)) * 1000,
        "mean_write_ms": float(np.mean(write_latencies)) * 1000,
    }


def _run_declarative() -> dict:
    spec = ConsistencySpec(session=SessionGuarantee(read_your_writes=True))
    engine = Scads(seed=47, autoscale=False, initial_groups=2, consistency=spec)
    engine.register_entity(EntitySchema(
        "items", key_fields=[Field("key")], value_fields=[Field("v")],
    ))
    engine.start()
    write_latencies, read_latencies = [], []
    stale = 0
    for i in range(OPERATIONS):
        user = f"user{i % 30}"
        write_latencies.append(
            engine.put("items", {"key": user, "v": str(i)}, session_id=user).latency
        )
        outcome = engine.get("items", (user,), session_id=user)
        read_latencies.append(outcome.latency)
        if outcome.row is None or outcome.row.get("v") != str(i):
            stale += 1
        engine.run_for(0.2)
    return {
        "label": "SCADS declarative (read-your-writes, LWW)",
        "strong": "declared outcome",
        "stale_fraction": stale / OPERATIONS,
        "mean_read_ms": float(np.mean(read_latencies)) * 1000,
        "mean_write_ms": float(np.mean(write_latencies)) * 1000,
    }


def run_experiment():
    rows = [_run_quorum(config) for config in QUORUM_GRID]
    rows.append(_run_declarative())
    return rows


def test_e12_quorum_vs_declarative(benchmark, table_printer):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table_printer(
        "E12 — quorum knobs vs. one declarative specification",
        ["configuration", "R+W>N", "own-write stale fraction",
         "mean read (ms)", "mean write (ms)"],
        [(r["label"], r["strong"], f"{r['stale_fraction']:.3f}",
          f"{r['mean_read_ms']:.2f}", f"{r['mean_write_ms']:.2f}") for r in rows],
    )
    weak = rows[0]
    strong = next(r for r in rows if r["strong"] is True)
    declarative = rows[-1]
    # Hand-tuning exposes the trade-off: the weak quorum is fast but stale,
    # the strong quorum is fresh but pays on every operation.
    assert weak["stale_fraction"] > strong["stale_fraction"]
    assert strong["mean_write_ms"] + strong["mean_read_ms"] \
        > weak["mean_write_ms"] + weak["mean_read_ms"]
    # The declarative spec achieves the fresh-read outcome without the
    # developer choosing any quorum numbers.
    assert declarative["stale_fraction"] == 0.0
