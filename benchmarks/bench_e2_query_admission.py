"""E2 — performance-safe query admission.

Section 3.2: queries are declared ahead of time; SCADS admits only those it
can execute and maintain with bounded work, and rejects the rest with a
reason.  This benchmark runs a corpus of templates through the analyzer —
including the paper's own examples (the birthday join, the Facebook-style
bounded friend list, the Twitter-style unbounded follower list) — and reports
the admission decision, the reason, and the computed work bounds.
"""

from __future__ import annotations

from repro.core.query.analyzer import QueryAnalyzer, QueryRejected
from repro.core.query.parser import parse_query
from repro.core.schema import EntitySchema, Field, FieldType, SchemaRegistry


def _registry() -> SchemaRegistry:
    registry = SchemaRegistry()
    registry.register_entity(EntitySchema(
        "profiles", key_fields=[Field("user_id")],
        value_fields=[Field("name"), Field("birthday"), Field("hometown")],
    ))
    registry.register_entity(EntitySchema(
        "friendships", key_fields=[Field("f1"), Field("f2")],
        max_per_partition=5000, column_bounds={"f2": 5000},
    ))
    registry.register_entity(EntitySchema(
        "statuses", key_fields=[Field("user_id"), Field("status_id", FieldType.INT)],
        value_fields=[Field("text")], max_per_partition=1000,
    ))
    registry.register_entity(EntitySchema(
        "follows", key_fields=[Field("follower"), Field("followee")],
        # No cardinality bound: Twitter-style unbounded follow lists.
    ))
    return registry


CORPUS = [
    ("friend list (Facebook 5k cap)",
     "SELECT * FROM friendships WHERE f1 = <u> LIMIT 5000"),
    ("friend birthdays (paper's example)",
     "SELECT p.* FROM friendships f JOIN profiles p ON f.f2 = p.user_id "
     "WHERE f.f1 = <u> ORDER BY p.birthday LIMIT 20"),
    ("recent statuses",
     "SELECT * FROM statuses WHERE user_id = <u> ORDER BY status_id DESC LIMIT 20"),
    ("friends of friends (bounded, LIMIT)",
     "SELECT p.* FROM friendships f JOIN friendships g ON f.f2 = g.f1 "
     "JOIN profiles p ON g.f2 = p.user_id WHERE f.f1 = <u> LIMIT 20"),
    ("statuses since cursor",
     "SELECT * FROM statuses WHERE user_id = <u> AND status_id > <cursor> LIMIT 20"),
    ("everyone in a hometown (no bound)",
     "SELECT * FROM profiles WHERE hometown = <town>"),
    ("Twitter followers (unbounded fan-out)",
     "SELECT * FROM follows WHERE follower = <u> LIMIT 20"),
    ("Twitter follower join (unbounded even with LIMIT)",
     "SELECT p.* FROM follows f JOIN profiles p ON f.followee = p.user_id "
     "WHERE f.follower = <u> LIMIT 20"),
    ("friends of friends without LIMIT",
     "SELECT p.* FROM friendships f JOIN friendships g ON f.f2 = g.f1 "
     "JOIN profiles p ON g.f2 = p.user_id WHERE f.f1 = <u>"),
    ("full table scan",
     "SELECT * FROM profiles WHERE name = 'Alice'"),
]

# Which corpus entries the paper's model should admit.
EXPECTED_ADMITTED = {
    "friend list (Facebook 5k cap)",
    "friend birthdays (paper's example)",
    "recent statuses",
    "friends of friends (bounded, LIMIT)",
    "statuses since cursor",
}


def run_experiment():
    analyzer = QueryAnalyzer(_registry())
    rows = []
    for label, sql in CORPUS:
        try:
            analyzed = analyzer.analyze(parse_query(sql))
            rows.append((label, "ADMITTED", f"read<={analyzed.read_work_bound}",
                         f"update<={analyzed.update_work_bound}"))
        except QueryRejected as rejection:
            rows.append((label, "REJECTED", rejection.reason.value, ""))
    return rows


def test_e2_query_admission(benchmark, table_printer):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table_printer(
        "E2 — query-template admission decisions",
        ["template", "decision", "reason / read bound", "update bound"],
        rows,
    )
    admitted = {label for label, decision, *_ in rows if decision == "ADMITTED"}
    assert admitted == EXPECTED_ADMITTED
