"""F3 — Figure 3: the table of index update operations.

The paper's Figure 3 lists, for a typical social network, which base-table
changes must update which pre-computed index::

    friend index             | friendships  | *
    friends of friends index | friend index | *
    birthday index           | profiles     | birthday
    birthday index           | friendship   | *

This benchmark registers the paper's query templates and checks that the
query compiler derives exactly that dispatch table.
"""

from __future__ import annotations

from repro import Scads
from repro.apps.social_network import SocialNetworkApp

# The rows of Figure 3, normalised to this repo's index naming.
EXPECTED_ROWS = {
    ("idx_friends", "friendships", "*"),
    ("idx_friends_of_friends", "idx_friends", "*"),
    ("idx_friend_birthdays", "profiles", "birthday"),
    ("idx_friend_birthdays", "friendships", "*"),
}


def run_experiment():
    engine = Scads(seed=1, autoscale=False)
    engine.start()
    SocialNetworkApp(engine, friend_cap=5000, page_size=20)
    return engine.maintenance_table()


def test_fig3_index_maintenance_table(benchmark, table_printer):
    rules = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    derived = {
        (rule.index_name, rule.display_table(), rule.field)
        for rule in rules
        if rule.index_name.startswith("idx_")
    }
    table_printer(
        "Figure 3 — derived index maintenance table",
        ["Index", "Table", "Field"],
        sorted(derived),
    )
    missing = EXPECTED_ROWS - derived
    assert not missing, f"paper rows not derived: {missing}"
    # The compiler must not dispatch friends-of-friends maintenance on
    # profile changes (Figure 3 has no such row).
    assert not any(index == "idx_friends_of_friends" and table == "profiles"
                   for index, table, _ in derived)
    # Auxiliary reverse indexes are an implementation detail the paper does
    # not show; print them separately for completeness.
    auxiliary = {(r.index_name, r.table, r.field) for r in rules
                 if not r.index_name.startswith("idx_")}
    if auxiliary:
        table_printer("auxiliary reverse indexes (implementation detail)",
                      ["Index", "Table", "Field"], sorted(auxiliary))
