"""E15 — mixed spot/on-demand fleet economics under an interruption storm.

Section 2.1's utility-computing premise says capacity should be bought
where it is cheapest; the spot market sells interruptible capacity at a
steep discount in exchange for a two-minute revocation notice.  The fleet
policy under test keeps every durable quorum member on-demand and buys
*surge read replicas* spot-first with automatic on-demand fallback, so
revocation can never touch a write quorum.

Two identically-seeded runs of the grid's ``spot-interruption-storm``
scenario (viral ramp + a mid-ramp capacity drought with correlated
revocation notices):

* **mixed fleet** — the scenario as shipped: spot surge, graceful drain
  to hibernation on notice, resume instead of cold re-copy;
* **all on-demand** — same trace, same controller, spot disabled.  The
  storm is stripped from this arm: a spot-market drought is a no-op
  against a fleet that holds no spot capacity.

The mixed fleet must land a strictly smaller bill while both arms meet
the scenario's windowed SLA policy (equal compliance, cheaper dollars),
lose zero acknowledged writes, serve zero stale reads, and leave the
whole drain/hibernate story visible on the decision timeline.
"""

from __future__ import annotations

from collections import Counter

from repro.experiments.harness import (
    default_spec,
    run_closed_loop,
    smoke_mode,
)
from repro.parallel.scenarios import STANDARD_SUITE, smoke_variant

SEED = 42


def _scenario():
    spec = next(s for s in STANDARD_SUITE if s.name == "spot-interruption-storm")
    return smoke_variant(spec) if smoke_mode() else spec


def _run(spec, spot: bool):
    knobs = dict(spec.engine_knobs)
    knobs["spot"] = spot
    knobs["telemetry"] = True
    faults = spec.faults if spot else ()
    return run_closed_loop(
        trace=spec.trace.build(), duration=spec.duration, seed=SEED,
        n_users=spec.n_users, friend_cap=spec.friend_cap,
        spec=default_spec(latency=spec.sla_latency),
        initial_groups=spec.initial_groups,
        control_interval=spec.control_interval,
        mix_kind=spec.mix, faults=faults, engine_kwargs=knobs,
    )


def _violated_fraction(engine, op: str, spec) -> float:
    windows = [w for w in engine.sla_compliance_windows(op)
               if w.total >= spec.sla_min_window_ops]
    if not windows:
        return 0.0
    violated = sum(1 for w in windows if not w.compliant(spec.sla_percentile))
    return violated / len(windows)


def run_experiment():
    spec = _scenario()
    mixed = _run(spec, spot=True)
    on_demand = _run(spec, spot=False)
    return spec, mixed, on_demand


def test_e15_mixed_fleet_economics(benchmark, table_printer):
    spec, mixed, on_demand = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1)
    rows = []
    for label, result in (("mixed fleet (spot surge + storm)", mixed),
                          ("all on-demand", on_demand)):
        engine = result.engine
        split = engine.pool.cost_by_purchase_option()
        fleet = engine.spot_fleet
        rows.append((
            label,
            f"{engine.pool.total_cost():.2f}",
            f"{split.get('spot', 0.0):.3f}",
            f"{_violated_fraction(engine, 'read', spec):.2f}",
            f"{_violated_fraction(engine, 'write', spec):.2f}",
            fleet.surge_count() if fleet else 0,
            dict(Counter(r.outcome for r in fleet.records())) if fleet else {},
            engine.lost_write_count(),
            engine.stale_read_count(),
        ))
    table_printer(
        "E15 — spot surge vs all on-demand under an interruption storm",
        ["fleet", "dollars", "spot $", "read viol", "write viol",
         "surge", "interruption outcomes", "lost writes", "stale reads"],
        rows,
    )
    mixed_cost = mixed.engine.pool.total_cost()
    od_cost = on_demand.engine.pool.total_cost()
    print(f"\nmixed fleet billed ${mixed_cost:.2f} vs ${od_cost:.2f} "
          f"all on-demand ({(1 - mixed_cost / od_cost) * 100:.0f}% saved) "
          f"through a {spec.faults[0].duration:.0f}s capacity drought")
    if smoke_mode():
        return  # the smoke ramp is too short for drains to complete
    # Equal SLA compliance: both arms meet the scenario's windowed policy.
    for result in (mixed, on_demand):
        assert _violated_fraction(result.engine, "read", spec) \
            <= spec.sla_violation_budget
        assert _violated_fraction(result.engine, "write", spec) \
            <= (spec.sla_write_violation_budget or spec.sla_violation_budget)
    # ... and the mixed fleet is strictly cheaper.
    assert mixed_cost < od_cost
    # Robustness: revocation cost the fleet no acknowledged writes and no
    # staleness-bound violations, and the drains completed as hibernations.
    assert mixed.engine.lost_write_count() == 0
    assert mixed.engine.stale_read_count() == 0
    outcomes = Counter(r.outcome for r in mixed.engine.spot_fleet.records())
    assert outcomes.get("hibernated", 0) >= 1
    # The whole story is on the decision timeline.
    kinds = Counter(
        e["kind"] for e in mixed.engine.timeline.snapshot()["events"])
    for kind in ("spot-bid", "spot-notice", "spot-drain", "spot-hibernate"):
        assert kinds[kind] >= 1, f"timeline missing {kind}"
