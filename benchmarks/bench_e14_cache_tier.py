"""E14 — staleness-budget cache tier: latency and dollars from declared slack.

The paper's central bet is that *declarative* performance/consistency
tradeoffs let the system exploit slack the application explicitly granted.
The cache tier is the canonical payoff: a spec saying "stale data gone within
10 seconds" makes a seconds-old cached answer exactly as correct as a cluster
read, so entity gets that hit the front tier skip the cluster entirely — and
the provisioning loop, which discounts forecast demand by the measured hit
rate, skips *renting* for that load too.

A Zipf read-heavy workload (the social-network shape: a few celebrities take
most of the reads) drives two identically-seeded systems, cache on vs. off.
The cached system must cut both the p99 read latency and the instance dollars,
while an oracle staleness probe — every read is checked against an externally
maintained write history — observes **zero** reads served beyond the declared
bound.  The cache tier now ships default-on (validated by ``make grid``);
this experiment pins ``cache=False`` on its off arm to keep measuring the
uncached seed behaviour the comparison is against.
"""

from __future__ import annotations

import numpy as np

from repro.cache.tier import CacheConfig
from repro.core.consistency.spec import (
    ConsistencySpec,
    PerformanceSLA,
    ReadConsistency,
)
from repro.core.engine import Scads
from repro.core.schema import EntitySchema, Field
from repro.experiments.harness import SCALED_DOWN_INSTANCE, smoke_mode, smoke_scaled

N_USERS = 200
ZIPF_S = 1.1            # rank-frequency exponent of the celebrity skew
RATE = 300.0            # offered ops/sec
WRITE_FRACTION = 0.05   # read-heavy, per the workload the cache targets
STALENESS_BOUND = 10.0  # the declared slack the cache converts into hits
DURATION = smoke_scaled(900.0, 60.0)
CONTROL_INTERVAL = 30.0


def run_system(cache: bool, seed: int = 5):
    """One closed-loop run; returns (engine, observed staleness violations)."""
    spec = ConsistencySpec(
        performance=PerformanceSLA(percentile=99.0, latency=0.250),
        read=ReadConsistency(staleness_bound=STALENESS_BOUND),
    )
    engine = Scads(
        seed=seed,
        consistency=spec,
        instance_type=SCALED_DOWN_INSTANCE,
        replication_factor=3,
        initial_groups=2,
        min_groups=2,
        autoscale=True,
        predictive_scaling=False,   # isolate the cache-vs-rent economics
        control_interval=CONTROL_INTERVAL,
        max_instances=24,
        # False (not None) on the off arm: None now means "shipped default",
        # which is the cache being on.  Repartitioning is pinned off on both
        # arms so the comparison isolates the cache.
        cache=CacheConfig(capacity=4 * N_USERS) if cache else False,
        repartition=False,
    )
    engine.register_entity(EntitySchema(
        "profiles", key_fields=[Field("user_id")], value_fields=[Field("bio")],
    ))
    users = [f"u{i:03d}" for i in range(N_USERS)]
    sequence = {user: 0 for user in users}
    history = {user: [] for user in users}  # per user: [(seq, commit time)]
    for user in users:
        sequence[user] += 1
        engine.put("profiles", {"user_id": user, "bio": f"seq{sequence[user]:06d}"})
        history[user].append((sequence[user], engine.now))
    engine.settle(5.0)

    ranks = np.arange(1, N_USERS + 1)
    probabilities = 1.0 / ranks ** ZIPF_S
    probabilities /= probabilities.sum()
    rng = engine.sim.random.get("bench-e14")
    violations = []

    def issue() -> None:
        user = users[int(rng.choice(N_USERS, p=probabilities))]
        if rng.random() < WRITE_FRACTION:
            sequence[user] += 1
            outcome = engine.put("profiles", {
                "user_id": user, "bio": f"seq{sequence[user]:06d}",
            })
            if outcome.success:
                history[user].append((sequence[user], engine.now))
        else:
            outcome = engine.get("profiles", (user,))
            # Oracle probe: a read returning sequence s while some s' > s has
            # been committed for longer than the bound violates the spec —
            # regardless of which tier served it.
            if outcome.success and outcome.row is not None:
                seen = int(outcome.row["bio"][3:])
                for seq, committed_at in history[user]:
                    if seq > seen and engine.now - committed_at > STALENESS_BOUND + 1e-6:
                        violations.append((user, seen, seq, engine.now - committed_at))
        engine.sim.schedule(float(rng.exponential(1.0 / RATE)), issue, name="zipf-load")

    engine.start()
    engine.sim.schedule(0.0, issue, name="zipf-load")
    engine.run_for(DURATION)
    return engine, violations


def run_experiment():
    return run_system(cache=True), run_system(cache=False)


def test_e14_cache_tier_cuts_p99_and_dollars_within_the_bound(benchmark, table_printer):
    (cached, cached_violations), (uncached, uncached_violations) = \
        benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for label, engine, violations in (
        ("staleness-budget cache", cached, cached_violations),
        ("cache off (seed behaviour)", uncached, uncached_violations),
    ):
        reads = engine.latencies.all_time("read")
        rows.append((
            label,
            f"{engine.cache_hit_rate():.1%}",
            f"{reads.percentile(50) * 1000:.2f}",
            f"{reads.percentile(99) * 1000:.2f}",
            engine.controller.scale_up_count(),
            engine.cluster.group_count(),
            f"{engine.cost_so_far():.2f}",
            len(violations),
        ))
    table_printer(
        "E14 — Zipf read-heavy: cache tier vs. full-cluster reads "
        f"(declared bound {STALENESS_BOUND:.0f}s)",
        ["system", "hit rate", "p50 ms", "p99 ms", "scale-ups",
         "final groups", "dollars", "staleness violations"],
        rows,
    )
    cached_p99 = cached.latencies.all_time("read").percentile(99)
    uncached_p99 = uncached.latencies.all_time("read").percentile(99)
    print(f"\ncache tier: p99 {uncached_p99 * 1000:.1f}ms -> "
          f"{cached_p99 * 1000:.1f}ms, dollars {uncached.cost_so_far():.2f} -> "
          f"{cached.cost_so_far():.2f} "
          f"at {cached.cache_hit_rate():.0%} hit rate")

    assert cached_violations == [], \
        "no cached read may ever exceed its declared staleness bound"
    if smoke_mode():
        return
    assert cached.cache_hit_rate() > 0.5
    assert cached_p99 < uncached_p99
    assert cached.cost_so_far() < uncached.cost_so_far()
