"""Perf — simulator throughput on the standard closed-loop scenario.

Every experiment in this repository is a closed-loop simulation, so simulator
throughput (simulated operations per wall-clock second) bounds the scenario
scale we can afford: more users, longer traces, more seeds per benchmark.
This harness pins down two numbers and records their trajectory in
``BENCH_PERF.json`` so each future PR can see what it did to them:

* **scenario ops/wall-sec** — a fixed Zipf closed-loop scenario (point reads
  and writes through the full engine stack: router, partitioner, replication,
  SLA accounting, provisioning loop) divided by the wall time it took.
* **event-queue events/wall-sec** — a bare push/pop microbench of the
  discrete-event kernel, isolating ``Event``/``EventQueue`` overhead from the
  request path.

Run it via ``make perf`` (full scenario; sets ``BENCH_PERF_RECORD=1`` to
append to ``BENCH_PERF.json`` and assert the speedup) or as part of
``make bench`` / ``make bench-smoke``, where it only reports (never dirties
the committed trajectory or fails on unrelated hardware).  The committed
baseline entry (``pre-PR4-baseline``) was measured immediately before the
hot-path overhaul landed; the assertion checks the overhaul's >= 3x claim
against it on comparable hardware and can be disabled with
``BENCH_PERF_NO_ASSERT=1`` (e.g. on a much slower machine, where an absolute
comparison against committed numbers is meaningless).
"""

from __future__ import annotations

import json
import os
import time

from repro.experiments.harness import build_engine_and_app, smoke_scaled, smoke_mode
from repro.sim.simulator import Simulator
from repro.workloads.generator import LoadGenerator
from repro.workloads.opmix import CloudStoneMix
from repro.workloads.traces import ConstantTrace

BENCH_PERF_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_PERF.json")

# The standard closed-loop scenario: the repository's own experiment-harness
# path (social-network app, CloudStone mix, trace-driven load generator,
# autoscaling engine) at a flat offered rate.  This is the request loop every
# paper experiment (E1/E5/E6, fig1/fig2) drives; its simulated-ops-per-wall-
# second is what bounds scenario scale.  Parameters are frozen — changing
# them invalidates the trajectory in BENCH_PERF.json.
N_USERS = 300
RATE = 300.0            # offered ops/sec (CloudStone default ~90/10 read mix)
DURATION = smoke_scaled(1200.0, 20.0)
CONTROL_INTERVAL = 30.0
SEED = 11

EVENT_QUEUE_EVENTS = int(smoke_scaled(300_000, 20_000))
SPEEDUP_TARGET = 3.0


def run_scenario() -> dict:
    """One closed-loop run; returns simulated-op and wall-clock counts.

    Setup (graph bulk load) is excluded from the timed section; the clock
    runs only while the simulator processes the ``DURATION`` seconds of
    closed-loop traffic.
    """
    engine, app, graph = build_engine_and_app(
        seed=SEED,
        n_users=N_USERS,
        autoscale=True,
        predictive_scaling=False,
        initial_groups=4,
        control_interval=CONTROL_INTERVAL,
    )
    engine.start()
    mix = CloudStoneMix(graph, engine.sim.random.get("workload-mix"))
    generator = LoadGenerator(engine.sim, ConstantTrace(rate=RATE), mix, app.execute)
    events_before = engine.sim.processed_events
    generator.start()
    start = time.perf_counter()
    engine.run_for(DURATION)
    wall = time.perf_counter() - start
    generator.stop()
    return {
        "ops": generator.stats.operations_issued,
        "events": engine.sim.processed_events - events_before,
        "wall_seconds": round(wall, 3),
        "ops_per_wall_sec": round(generator.stats.operations_issued / wall, 1),
    }


def run_event_queue_microbench() -> dict:
    """Push/pop throughput of the bare discrete-event kernel.

    A self-rescheduling chain of no-op events, the same shape as the load
    generators and periodic loops that dominate the queue in real scenarios.
    """
    sim = Simulator(seed=0)
    remaining = {"n": EVENT_QUEUE_EVENTS}

    def tick() -> None:
        remaining["n"] -= 1
        if remaining["n"] > 0:
            sim.schedule(0.001, tick, name="tick")

    # Four concurrent chains so the heap holds more than one live event.
    for _ in range(4):
        sim.schedule(0.001, tick, name="tick")
    start = time.perf_counter()
    sim.run(max_events=EVENT_QUEUE_EVENTS + 8)
    wall = time.perf_counter() - start
    events = sim.processed_events
    return {
        "events": events,
        "wall_seconds": round(wall, 3),
        "events_per_wall_sec": round(events / wall, 0),
    }


def _load_trajectory() -> list:
    if not os.path.exists(BENCH_PERF_PATH):
        return []
    with open(BENCH_PERF_PATH) as fh:
        return json.load(fh)


def _append_trajectory(entry: dict) -> None:
    trajectory = _load_trajectory()
    trajectory.append(entry)
    with open(BENCH_PERF_PATH, "w") as fh:
        json.dump(trajectory, fh, indent=2)
        fh.write("\n")


def _baseline_entry(trajectory: list) -> dict | None:
    for entry in trajectory:
        if entry.get("label") == "pre-PR4-baseline":
            return entry
    return None


def test_perf_throughput(table_printer):
    scenario = run_scenario()
    event_queue = run_event_queue_microbench()
    table_printer(
        "Perf: simulator throughput",
        ["metric", "count", "wall s", "per wall-sec"],
        [
            ["scenario ops", scenario["ops"], scenario["wall_seconds"],
             scenario["ops_per_wall_sec"]],
            ["event queue", event_queue["events"], event_queue["wall_seconds"],
             int(event_queue["events_per_wall_sec"])],
        ],
    )
    if smoke_mode():
        return  # shortened scenario: numbers are noise; no recording, no assertion
    baseline = _baseline_entry(_load_trajectory())
    if baseline is not None:
        speedup = scenario["ops_per_wall_sec"] / baseline["scenario"]["ops_per_wall_sec"]
        print(f"speedup vs pre-PR4-baseline: {speedup:.2f}x "
              f"(target >= {SPEEDUP_TARGET:.1f}x)")
    # Recording and the speedup assertion are opt-in (`make perf` sets
    # BENCH_PERF_RECORD=1): the bench_*.py glob also pulls this file into
    # `make bench`, which must neither dirty the committed trajectory nor
    # fail on hardware slower than the machine the baseline was recorded on.
    if os.environ.get("BENCH_PERF_RECORD", "") in ("", "0"):
        return
    label = os.environ.get("BENCH_PERF_LABEL", "run")
    _append_trajectory({
        "label": label,
        "scenario": scenario,
        "event_queue": event_queue,
    })
    if (baseline is None or label == "pre-PR4-baseline"
            or os.environ.get("BENCH_PERF_NO_ASSERT", "") not in ("", "0")):
        return
    assert speedup >= SPEEDUP_TARGET, (
        f"hot-path speedup regressed: {speedup:.2f}x vs the pre-PR4 baseline "
        f"(need >= {SPEEDUP_TARGET}x; set BENCH_PERF_NO_ASSERT=1 on "
        "non-comparable hardware)"
    )
