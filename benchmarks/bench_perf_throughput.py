"""Perf — simulator throughput on the standard closed-loop scenario.

Every experiment in this repository is a closed-loop simulation, so simulator
throughput (simulated operations per wall-clock second) bounds the scenario
scale we can afford: more users, longer traces, more seeds per benchmark.
This harness pins down two numbers and records their trajectory in
``BENCH_PERF.json`` so each future PR can see what it did to them:

* **scenario ops/wall-sec** — a fixed Zipf closed-loop scenario (point reads
  and writes through the full engine stack: router, partitioner, replication,
  SLA accounting, provisioning loop) divided by the wall time it took.
* **event-queue events/wall-sec** — a bare push/pop microbench of the
  discrete-event kernel, isolating ``Event``/``EventQueue`` overhead from the
  request path.
* **suite-level sweep wall-clock** — a fixed batch of independent seeded
  runs executed serially vs across a process pool (the parallel experiment
  fabric, ``repro.parallel``), recording the wall-clock of each and
  asserting byte-identical per-run results; the >= 3x speedup assertion
  only arms on machines with 4+ cores.

Run it via ``make perf`` (full scenario; sets ``BENCH_PERF_RECORD=1`` to
append to ``BENCH_PERF.json`` and assert the speedup) or as part of
``make bench`` / ``make bench-smoke``, where it only reports (never dirties
the committed trajectory or fails on unrelated hardware).  The committed
baseline entry (``pre-PR4-baseline``) was measured immediately before the
hot-path overhaul landed; the assertion checks the overhaul's >= 3x claim
against it on comparable hardware and can be disabled with
``BENCH_PERF_NO_ASSERT=1`` (e.g. on a much slower machine, where an absolute
comparison against committed numbers is meaningless).
"""

from __future__ import annotations

import os
import time
from dataclasses import replace

from repro.experiments.harness import build_engine_and_app, smoke_scaled, smoke_mode
from repro.experiments.perf_log import append_entry, load_trajectory
from repro.parallel.scenarios import STANDARD_CLOSED_LOOP, smoke_grid
from repro.parallel.spec import SweepGrid
from repro.parallel.executor import run_sweep
from repro.sim.simulator import Simulator
from repro.workloads.generator import LoadGenerator
from repro.workloads.opmix import CloudStoneMix
from repro.workloads.traces import ConstantTrace

BENCH_PERF_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_PERF.json")

# The standard closed-loop scenario: the repository's own experiment-harness
# path (social-network app, CloudStone mix, trace-driven load generator,
# autoscaling engine) at a flat offered rate.  This is the request loop every
# paper experiment (E1/E5/E6, fig1/fig2) drives; its simulated-ops-per-wall-
# second is what bounds scenario scale.  Parameters are frozen — changing
# them invalidates the trajectory in BENCH_PERF.json.
N_USERS = 300
RATE = 300.0            # offered ops/sec (CloudStone default ~90/10 read mix)
DURATION = smoke_scaled(1200.0, 20.0)
CONTROL_INTERVAL = 30.0
SEED = 11

EVENT_QUEUE_EVENTS = int(smoke_scaled(300_000, 20_000))
SPEEDUP_TARGET = 3.0
# Single-run throughput must not erode between recordings: each recorded run
# is also compared against the most recent prior scenario entry.  The
# tolerance absorbs the documented ±10% run-to-run noise on shared hardware
# (see PERFORMANCE.md) — a real regression larger than that fails the run.
NO_REGRESS_FRACTION = 0.85


def _run_scenario_instrumented(duration: float,
                               engine_kwargs: dict | None = None) -> tuple:
    """One closed-loop run; returns (stats, fingerprint, trace_count).

    The fingerprint captures every deterministic observable of the run —
    op/event counts and the full per-op latency distributions — so two runs
    can be compared for byte-identical simulation behaviour (the
    telemetry-overhead test's determinism gate).
    """
    # The frozen scenario pins the pre-flip engine shape (no cache tier, no
    # rebalancer): BENCH_PERF.json entries recorded before the features
    # became default-on must stay comparable with entries recorded after.
    engine_kwargs = {"cache": False, "repartition": False,
                     **(engine_kwargs or {})}
    engine, app, graph = build_engine_and_app(
        seed=SEED,
        n_users=N_USERS,
        autoscale=True,
        predictive_scaling=False,
        initial_groups=4,
        control_interval=CONTROL_INTERVAL,
        engine_kwargs=engine_kwargs,
    )
    engine.start()
    mix = CloudStoneMix(graph, engine.sim.random.get("workload-mix"))
    generator = LoadGenerator(engine.sim, ConstantTrace(rate=RATE), mix, app.execute)
    events_before = engine.sim.processed_events
    generator.start()
    start = time.perf_counter()
    engine.run_for(duration)
    wall = time.perf_counter() - start
    generator.stop()
    stats = {
        "ops": generator.stats.operations_issued,
        "events": engine.sim.processed_events - events_before,
        "wall_seconds": round(wall, 3),
        "ops_per_wall_sec": round(generator.stats.operations_issued / wall, 1),
    }
    fingerprint = {
        "ops": generator.stats.operations_issued,
        "events": engine.sim.processed_events,
        "latencies": {op: engine.latencies.all_time(op).snapshot()
                      for op in sorted(engine.latencies.op_types())},
    }
    return stats, fingerprint, len(engine.traces())


def run_scenario() -> dict:
    """One closed-loop run; returns simulated-op and wall-clock counts.

    Setup (graph bulk load) is excluded from the timed section; the clock
    runs only while the simulator processes the ``DURATION`` seconds of
    closed-loop traffic.
    """
    stats, _, _ = _run_scenario_instrumented(DURATION)
    return stats


def run_event_queue_microbench() -> dict:
    """Push/pop throughput of the bare discrete-event kernel.

    A self-rescheduling chain of no-op events, the same shape as the load
    generators and periodic loops that dominate the queue in real scenarios.
    """
    sim = Simulator(seed=0)
    remaining = {"n": EVENT_QUEUE_EVENTS}

    def tick() -> None:
        remaining["n"] -= 1
        if remaining["n"] > 0:
            sim.schedule(0.001, tick, name="tick")

    # Four concurrent chains so the heap holds more than one live event.
    for _ in range(4):
        sim.schedule(0.001, tick, name="tick")
    start = time.perf_counter()
    sim.run(max_events=EVENT_QUEUE_EVENTS + 8)
    wall = time.perf_counter() - start
    events = sim.processed_events
    return {
        "events": events,
        "wall_seconds": round(wall, 3),
        "events_per_wall_sec": round(events / wall, 0),
    }


def _load_trajectory() -> list:
    # Schema-validated load: a malformed committed entry fails every bench
    # run immediately instead of silently skewing a later comparison.
    return load_trajectory(BENCH_PERF_PATH)


def _append_trajectory(entry: dict) -> None:
    append_entry(BENCH_PERF_PATH, entry)


def _baseline_entry(trajectory: list) -> dict | None:
    for entry in trajectory:
        if entry.get("label") == "pre-PR4-baseline":
            return entry
    return None


def test_perf_throughput(table_printer):
    scenario = run_scenario()
    event_queue = run_event_queue_microbench()
    table_printer(
        "Perf: simulator throughput",
        ["metric", "count", "wall s", "per wall-sec"],
        [
            ["scenario ops", scenario["ops"], scenario["wall_seconds"],
             scenario["ops_per_wall_sec"]],
            ["event queue", event_queue["events"], event_queue["wall_seconds"],
             int(event_queue["events_per_wall_sec"])],
        ],
    )
    if smoke_mode():
        return  # shortened scenario: numbers are noise; no recording, no assertion
    baseline = _baseline_entry(_load_trajectory())
    if baseline is not None:
        speedup = scenario["ops_per_wall_sec"] / baseline["scenario"]["ops_per_wall_sec"]
        print(f"speedup vs pre-PR4-baseline: {speedup:.2f}x "
              f"(target >= {SPEEDUP_TARGET:.1f}x)")
    # Recording and the speedup assertion are opt-in (`make perf` sets
    # BENCH_PERF_RECORD=1): the bench_*.py glob also pulls this file into
    # `make bench`, which must neither dirty the committed trajectory nor
    # fail on hardware slower than the machine the baseline was recorded on.
    if os.environ.get("BENCH_PERF_RECORD", "") in ("", "0"):
        return
    label = os.environ.get("BENCH_PERF_LABEL", "run")
    previous = [entry for entry in _load_trajectory() if "scenario" in entry]
    # Assertions run BEFORE the entry is recorded: a regressed run must not
    # write itself into the trajectory, where it would become the next run's
    # ratchet baseline and silently lower the bar.
    if not (baseline is None or label == "pre-PR4-baseline"
            or os.environ.get("BENCH_PERF_NO_ASSERT", "") not in ("", "0")):
        assert speedup >= SPEEDUP_TARGET, (
            f"hot-path speedup regressed: {speedup:.2f}x vs the pre-PR4 "
            f"baseline (need >= {SPEEDUP_TARGET}x; set BENCH_PERF_NO_ASSERT=1 "
            "on non-comparable hardware)"
        )
        if previous:
            latest = previous[-1]["scenario"]["ops_per_wall_sec"]
            ratio = scenario["ops_per_wall_sec"] / latest
            assert ratio >= NO_REGRESS_FRACTION, (
                f"single-run throughput regressed to {ratio:.2f}x of the "
                f"latest recording ({previous[-1]['label']}: {latest} "
                f"ops/wall-sec); need >= {NO_REGRESS_FRACTION}x — set "
                "BENCH_PERF_NO_ASSERT=1 on non-comparable hardware"
            )
    _append_trajectory({
        "label": label,
        "scenario": scenario,
        "event_queue": event_queue,
    })


# --------------------------------------------------------------- suite sweep
#
# The parallel experiment fabric's headline number: wall-clock of a fixed
# batch of independent closed-loop runs executed serially (workers=1) vs
# across a process pool.  The batch is SWEEP_RUNS seeded replicates of the
# standard scenario shortened to SWEEP_DURATION simulated seconds —
# shortened because the comparison needs the *batch* shape (N independent
# runs), not the frozen single-run scenario's absolute cost, and it runs
# twice per measurement.  Parameters are frozen like the scenario's.
SWEEP_RUNS = 8
SWEEP_DURATION = smoke_scaled(120.0, 10.0)
SWEEP_BASE_SEED = 11
SWEEP_SPEEDUP_TARGET = 3.0
SWEEP_MIN_CPUS = 4


def _sweep_grid() -> SweepGrid:
    if smoke_mode():
        return smoke_grid(runs=4, base_seed=SWEEP_BASE_SEED,
                          duration=SWEEP_DURATION, rate=30.0)
    # Pin the pre-flip shape (defaults-off engine, PR 5's 4-group fleet) so
    # recorded sweep entries stay comparable as shipped defaults move.
    scenario = replace(STANDARD_CLOSED_LOOP, duration=SWEEP_DURATION,
                       initial_groups=4,
                       engine_knobs={"cache": False, "repartition": False})
    return SweepGrid(scenario=scenario, replicates=SWEEP_RUNS,
                     base_seed=SWEEP_BASE_SEED)


def _results_identical(serial, parallel) -> bool:
    """Byte-identical per-run results between serial and pooled execution.

    Every deterministic field of the portable summary is compared — op
    counts, both SLA reports, the full cost report, scaling/lag aggregates
    (via ``summary()``), hit rate, and both latency distributions — so a
    nondeterminism confined to e.g. the provisioning/cost path cannot slip
    past the gate.  Only wall-clock is exempt.
    """
    def snap(estimator):
        return estimator.snapshot() if estimator is not None else None

    if len(serial.records) != len(parallel.records):
        return False
    for a, b in zip(serial.records, parallel.records):
        if a.ok != b.ok or not a.ok:
            return False
        sa, sb = a.summary, b.summary
        if (sa.operations != sb.operations
                or sa.operation_counts != sb.operation_counts
                or sa.read_report != sb.read_report
                or sa.write_report != sb.write_report
                or sa.cost != sb.cost
                or sa.cache_hit_rate != sb.cache_hit_rate
                or sa.summary() != sb.summary()
                or snap(sa.read_latency) != snap(sb.read_latency)
                or snap(sa.write_latency) != snap(sb.write_latency)):
            return False
    return True


def test_suite_sweep_throughput(table_printer):
    """Serial vs parallel wall-clock for a fixed batch of independent runs."""
    grid = _sweep_grid()
    # At least 2 workers even on a 1-cpu container, so the parallel leg
    # always crosses the process boundary (the determinism assertion should
    # compare pooled execution against inline, not inline against itself).
    workers = max(2, min(os.cpu_count() or 1, grid.run_count()))
    if smoke_mode():
        workers = 2  # tiny grid, two workers: proves the fan-out end to end
    serial = run_sweep(grid, workers=1)
    parallel = run_sweep(grid, workers=workers)
    identical = _results_identical(serial, parallel)
    speedup = serial.wall_seconds / max(parallel.wall_seconds, 1e-9)
    table_printer(
        "Perf: suite-level sweep (serial vs parallel)",
        ["execution", "runs", "workers", "wall s"],
        [
            ["serial", len(serial.records), 1, round(serial.wall_seconds, 2)],
            ["parallel", len(parallel.records), workers,
             round(parallel.wall_seconds, 2)],
        ],
    )
    print(f"sweep speedup: {speedup:.2f}x on {os.cpu_count()} cpus; "
          f"per-run results identical: {identical}")
    # Failures first: a run that fails in both legs would also make the
    # identity check report False, pointing the maintainer at a phantom
    # nondeterminism bug instead of the actual traceback.
    for failure in (*serial.failures, *parallel.failures):
        print(f"--- {failure.run_id} ---\n{failure.traceback}")
    assert not serial.failures and not parallel.failures
    # Determinism is hardware-independent — assert it in every mode.
    assert identical, (
        "parallel sweep produced different per-run results than serial "
        "execution of the same expanded grid"
    )
    if smoke_mode():
        return  # shortened runs: wall-clock is noise; no recording/assertion
    if os.environ.get("BENCH_PERF_RECORD", "") in ("", "0"):
        return
    label = os.environ.get("BENCH_PERF_LABEL", "run")
    entry = {
        "label": f"{label}-sweep",
        "sweep": {
            "runs": grid.run_count(),
            "workers": workers,
            "cpus": os.cpu_count() or 1,
            "per_run_sim_seconds": SWEEP_DURATION,
            "serial_wall_seconds": round(serial.wall_seconds, 3),
            "parallel_wall_seconds": round(parallel.wall_seconds, 3),
            "speedup": round(speedup, 2),
            "results_identical": identical,
        },
    }
    notes = os.environ.get("BENCH_PERF_NOTES", "")
    if notes:
        entry["notes"] = notes
    # Assert before recording (a failing run must not leave its entry in the
    # trajectory).  The >= 3x claim needs cores to spread across; a 1-2 core
    # container can only demonstrate determinism, not speedup.
    if ((os.cpu_count() or 1) >= SWEEP_MIN_CPUS
            and os.environ.get("BENCH_PERF_NO_ASSERT", "") in ("", "0")):
        assert speedup >= SWEEP_SPEEDUP_TARGET, (
            f"suite-level sweep speedup {speedup:.2f}x < "
            f"{SWEEP_SPEEDUP_TARGET}x on {os.cpu_count()} cpus "
            "(set BENCH_PERF_NO_ASSERT=1 on constrained hardware)"
        )
    _append_trajectory(entry)


# ------------------------------------------------------- telemetry overhead
#
# The observability layer's contract has two halves: telemetry **off** is the
# default and must cost nothing (the engine holds a None and every op-path
# check is one `is not None` branch — covered by the main scenario ratchet
# above, which runs with telemetry off), and telemetry **on** must (a) leave
# the simulation byte-identical — sampling is counter-modulo, never an RNG
# draw — and (b) stay within a bounded wall-clock overhead.  The scenario is
# the frozen standard closed loop, shortened: the comparison needs the
# on/off *ratio* on identical work, not the frozen scenario's absolute cost,
# and it runs twice per measurement.
TELEMETRY_DURATION = smoke_scaled(600.0, 20.0)
TELEMETRY_MAX_OVERHEAD = 1.10  # on-wall <= 1.10x off-wall


def test_telemetry_overhead(table_printer):
    off_stats, off_fingerprint, _ = _run_scenario_instrumented(TELEMETRY_DURATION)
    on_stats, on_fingerprint, trace_count = _run_scenario_instrumented(
        TELEMETRY_DURATION, engine_kwargs={"telemetry": True})
    identical = off_fingerprint == on_fingerprint
    ratio = on_stats["wall_seconds"] / max(off_stats["wall_seconds"], 1e-9)
    table_printer(
        "Perf: telemetry overhead (off vs on)",
        ["telemetry", "ops", "wall s", "ops/wall-sec"],
        [
            ["off", off_stats["ops"], off_stats["wall_seconds"],
             off_stats["ops_per_wall_sec"]],
            ["on", on_stats["ops"], on_stats["wall_seconds"],
             on_stats["ops_per_wall_sec"]],
        ],
    )
    print(f"telemetry-on wall ratio: {ratio:.3f}x "
          f"(bound {TELEMETRY_MAX_OVERHEAD:.2f}x); traces sampled: "
          f"{trace_count}; simulation identical: {identical}")
    # Determinism is hardware-independent — assert it in every mode.  The
    # latency fingerprints compare full distributions, so a single diverging
    # RNG draw anywhere in the traced run fails here.
    assert identical, (
        "telemetry=True changed simulation results — tracing must not "
        "consume RNG draws or alter event ordering"
    )
    assert trace_count > 0, "traced run sampled no traces"
    if smoke_mode():
        return  # shortened run: wall-clock ratio is noise; no assertion
    if os.environ.get("BENCH_PERF_RECORD", "") in ("", "0"):
        return
    # Assert before recording, with the usual escape hatch for noisy or
    # non-comparable hardware.
    if os.environ.get("BENCH_PERF_NO_ASSERT", "") in ("", "0"):
        assert ratio <= TELEMETRY_MAX_OVERHEAD, (
            f"telemetry-on overhead {ratio:.3f}x exceeds "
            f"{TELEMETRY_MAX_OVERHEAD}x (set BENCH_PERF_NO_ASSERT=1 on "
            "noisy hardware)"
        )
    label = os.environ.get("BENCH_PERF_LABEL", "run")
    _append_trajectory({
        "label": f"{label}-telemetry",
        "telemetry": {
            "off_wall_seconds": off_stats["wall_seconds"],
            "on_wall_seconds": on_stats["wall_seconds"],
            "on_off_ratio": round(ratio, 3),
            "traces": trace_count,
            "results_identical": identical,
        },
    })
