"""E9 — arbitration under a network partition.

Section 3.3.1's disconnected-datacenter example: when the availability SLA
and the read-consistency bound cannot both be met, the developer's declared
priority ordering decides.  This benchmark partitions the client from every
primary and measures, for both priority orderings, how many reads are served
(possibly stale) vs. failed, and that the decisions are recorded for the
provisioning feedback described in the paper.
"""

from __future__ import annotations

from repro import Scads
from repro.core.consistency.spec import (
    Axis,
    ConsistencySpec,
    ReadConsistency,
    SessionGuarantee,
)
from repro.core.schema import EntitySchema, Field

READS_DURING_PARTITION = 80


def _run(priority, seed=43):
    spec = ConsistencySpec(
        session=SessionGuarantee(read_your_writes=True),
        read=ReadConsistency(staleness_bound=30.0),
        priority=priority,
    )
    engine = Scads(seed=seed, autoscale=False, initial_groups=2, consistency=spec)
    engine.register_entity(EntitySchema(
        "walls", key_fields=[Field("user_id")], value_fields=[Field("post")],
    ))
    engine.start()
    for i in range(20):
        engine.put("walls", {"user_id": f"user{i}", "post": f"post {i}"},
                   session_id=f"user{i}")
    engine.settle()
    primaries = {group.primary for group in engine.cluster.groups.values()}
    engine.cluster.network.partition({"client"}, primaries)
    served = failed = 0
    for i in range(READS_DURING_PARTITION):
        outcome = engine.get("walls", (f"user{i % 20}",), session_id=f"user{i % 20}")
        if outcome.success:
            served += 1
        else:
            failed += 1
    return {
        "served": served,
        "failed": failed,
        "stale_serves_recorded": engine.arbitrator.stale_serves(),
        "failures_recorded": engine.arbitrator.failed_requests(),
    }


def run_experiment():
    availability_first = _run([Axis.AVAILABILITY, Axis.READ_CONSISTENCY, Axis.SESSION])
    consistency_first = _run([Axis.READ_CONSISTENCY, Axis.SESSION, Axis.AVAILABILITY])
    return availability_first, consistency_first


def test_e9_partition_arbitration(benchmark, table_printer):
    availability_first, consistency_first = benchmark.pedantic(run_experiment,
                                                               rounds=1, iterations=1)
    table_printer(
        "E9 — reads during a client/primary partition under each priority ordering",
        ["priority ordering", f"reads served (of {READS_DURING_PARTITION})", "reads failed",
         "stale serves recorded", "failures recorded"],
        [
            ("availability > read consistency", availability_first["served"],
             availability_first["failed"], availability_first["stale_serves_recorded"],
             availability_first["failures_recorded"]),
            ("read consistency > availability", consistency_first["served"],
             consistency_first["failed"], consistency_first["stale_serves_recorded"],
             consistency_first["failures_recorded"]),
        ],
    )
    assert availability_first["served"] == READS_DURING_PARTITION
    assert availability_first["stale_serves_recorded"] > 0
    assert consistency_first["failed"] > 0
    assert consistency_first["failures_recorded"] > 0
