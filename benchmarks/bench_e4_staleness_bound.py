"""E4 — wall-clock staleness bounds and the deadline priority queue.

Section 3.3.2: declared propagation bounds become deadlines in a priority
queue of asynchronous updates; ordering by deadline is what lets the system
honour tight bounds for the data that declared them while relaxed data waits.
This benchmark enqueues a constrained maintenance backlog containing a mix of
tight-bound and relaxed-bound writes and compares deadline-miss rates under
deadline ordering vs. a FIFO ablation, and across declared bounds.
"""

from __future__ import annotations

from repro.core.index.maintenance import EntityWrite
from repro.experiments.harness import build_engine_and_app

TIGHT_BOUND = 5.0
RELAXED_BOUND = 600.0
BACKLOG = 400
DRAIN_SECONDS = 40.0


def _run(fifo: bool):
    engine, app, _ = build_engine_and_app(
        seed=31, n_users=20, friend_cap=10, autoscale=False, initial_groups=1,
        updates_per_second_per_node=3.0, fifo_updates=fifo,
    )
    engine.start()
    # Build a backlog larger than the drain capacity over the horizon: half of
    # the writes declare the tight bound, half the relaxed one.
    for i in range(BACKLOG):
        bound = TIGHT_BOUND if i % 2 == 0 else RELAXED_BOUND
        row = {"f1": f"user{i % 20}", "f2": f"other{i}"}
        engine.updater.enqueue(EntityWrite("friendships", None, row), staleness_bound=bound)
    engine.run_for(DRAIN_SECONDS)
    completed = engine.updater.completed_tasks()
    tight = [t for t in completed if t.deadline - t.enqueue_time <= TIGHT_BOUND + 1e-9]
    tight_misses = sum(1 for t in tight if t.met_deadline is False)
    return {
        "completed": len(completed),
        "tight_completed": len(tight),
        "tight_misses": tight_misses,
        "tight_miss_rate": tight_misses / len(tight) if tight else 1.0,
        "pending": engine.updater.pending_count(),
        "max_lag": engine.updater.stats().max_lag,
    }


def run_experiment():
    return _run(fifo=False), _run(fifo=True)


def test_e4_staleness_bound_priority_queue(benchmark, table_printer):
    deadline_ordered, fifo = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table_printer(
        "E4 — tight-bound (5 s) updates under backlog: deadline queue vs. FIFO",
        ["ordering", "tasks completed", "tight-bound completed", "tight-bound misses",
         "tight miss rate"],
        [
            ("deadline priority queue", deadline_ordered["completed"],
             deadline_ordered["tight_completed"], deadline_ordered["tight_misses"],
             f"{deadline_ordered['tight_miss_rate']:.3f}"),
            ("FIFO (ablation)", fifo["completed"], fifo["tight_completed"],
             fifo["tight_misses"], f"{fifo['tight_miss_rate']:.3f}"),
        ],
    )
    # The priority queue front-loads the urgent updates, so it completes more
    # tight-bound tasks within their deadline than FIFO does.
    assert deadline_ordered["tight_miss_rate"] < fifo["tight_miss_rate"]
    assert deadline_ordered["tight_completed"] >= fifo["tight_completed"]
