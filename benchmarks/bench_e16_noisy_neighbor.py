"""E16 — noisy-neighbor economics: placement-aware vs capacity-only.

The paper's directors assume a violated SLA means the fleet is too small.
Multi-tenant clouds break that assumption: when a co-tenant degrades one
physical host, every colocated node serves inflated *service* times while
cluster utilisation stays low — renting more nodes neither speeds up the
sick host nor drains service-side inflation, it just adds dollars.

Two identically-seeded runs of the grid's ``noisy-neighbor-episode``
scenario (flat load, tenancy-4 host placement, a scripted 4x host
degradation mid-run):

* **placement-aware** — the scenario as shipped: the monitor classifies
  the violated windows as contention-not-capacity (service-dominated,
  worst-host residual high, utilisation low), refuses to train its sizing
  models on the poisoned windows, and the controller live-migrates
  replicas off the noisy host (anti-affinity preserved) instead of
  renting;
* **capacity-only** — the same episode with ``placement_aware`` off: the
  ablation keeps training on contention-poisoned labels, so the planner
  inflates its node target and rents capacity that demonstrably does not
  help (the episode outlives every scale-up it triggers).

The placement-aware arm must re-attain the SLA strictly faster AND land a
strictly smaller bill, serve zero stale reads, lose zero acknowledged
writes, and leave the diagnosis + evacuation visible on the decision
timeline with its evidence.
"""

from __future__ import annotations

import os
from collections import Counter

from repro.experiments.harness import (
    default_spec,
    run_closed_loop,
    smoke_mode,
)
from repro.experiments.perf_log import append_entry
from repro.metrics.sla import COMPLIANCE_WINDOW_SECONDS
from repro.parallel.scenarios import STANDARD_SUITE, smoke_variant

BENCH_PERF_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_PERF.json")

SEED = 42


def _scenario():
    spec = next(s for s in STANDARD_SUITE if s.name == "noisy-neighbor-episode")
    return smoke_variant(spec) if smoke_mode() else spec


def _run(spec, placement_aware: bool):
    knobs = dict(spec.engine_knobs)
    knobs["contention"] = {**knobs["contention"],
                           "placement_aware": placement_aware}
    knobs["telemetry"] = True
    return run_closed_loop(
        trace=spec.trace.build(), duration=spec.duration, seed=SEED,
        n_users=spec.n_users, friend_cap=spec.friend_cap,
        spec=default_spec(latency=spec.sla_latency),
        initial_groups=spec.initial_groups,
        control_interval=spec.control_interval,
        mix_kind=spec.mix, faults=spec.faults, engine_kwargs=knobs,
    )


def _violated_fraction(engine, op: str, spec) -> float:
    windows = [w for w in engine.sla_compliance_windows(op)
               if w.total >= spec.sla_min_window_ops]
    if not windows:
        return 0.0
    violated = sum(1 for w in windows if not w.compliant(spec.sla_percentile))
    return violated / len(windows)


def _recovery_seconds(result, spec) -> float:
    """Seconds from episode onset until the SLA is re-attained for good.

    The episode starts ``fault.at`` seconds after the closed loop starts
    (the run ends at ``start + duration``, so onset is recovered from the
    engine clock); recovery is the end of the last violated qualifying
    read window.  An arm that never recovers scores the full remaining
    run — strictly worse than any arm that does.
    """
    engine = result.engine
    onset = (engine.now - spec.duration) + spec.faults[0].at
    violated = [w for w in engine.sla_compliance_windows("read")
                if w.total >= spec.sla_min_window_ops
                and not w.compliant(spec.sla_percentile)]
    if not violated:
        return 0.0
    last_end = max(w.start for w in violated) + COMPLIANCE_WINDOW_SECONDS
    return max(0.0, last_end - onset)


def run_experiment():
    spec = _scenario()
    placement = _run(spec, placement_aware=True)
    capacity = _run(spec, placement_aware=False)
    return spec, placement, capacity


def test_e16_noisy_neighbor_economics(benchmark, table_printer):
    spec, placement, capacity = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1)
    rows = []
    for label, result in (("placement-aware (diagnose + evacuate)", placement),
                          ("capacity-only ablation", capacity)):
        engine = result.engine
        monitor = engine.monitor
        rows.append((
            label,
            f"{engine.pool.total_cost():.2f}",
            f"{_recovery_seconds(result, spec):.0f}",
            f"{_violated_fraction(engine, 'read', spec):.2f}",
            sum(1 for o in monitor.observations() if o.contention_suspected),
            engine.controller.evacuation_count(),
            engine.controller.scale_up_count(),
            engine.lost_write_count(),
            engine.stale_read_count(),
        ))
    table_printer(
        "E16 — placement-aware vs capacity-only under a noisy neighbor",
        ["controller", "dollars", "recovery s", "read viol",
         "contention wins", "evacuations", "scale ups",
         "lost writes", "stale reads"],
        rows,
    )
    p_cost = placement.engine.pool.total_cost()
    c_cost = capacity.engine.pool.total_cost()
    p_rec = _recovery_seconds(placement, spec)
    c_rec = _recovery_seconds(capacity, spec)
    print(f"\nplacement-aware re-attained the SLA in {p_rec:.0f}s for "
          f"${p_cost:.2f}; capacity-only took {c_rec:.0f}s and "
          f"${c_cost:.2f} ({capacity.engine.controller.scale_up_count()} "
          "scale-ups that never touched the sick host)")
    if smoke_mode():
        return  # too short for a diagnose-evacuate-recover cycle
    # The shipped arm meets the scenario's windowed SLA policy...
    assert _violated_fraction(placement.engine, "read", spec) \
        <= spec.sla_violation_budget
    assert _violated_fraction(placement.engine, "write", spec) \
        <= (spec.sla_write_violation_budget or spec.sla_violation_budget)
    # ... re-attains strictly faster AND strictly cheaper than the ablation.
    assert p_rec < c_rec, (
        f"placement-aware recovery {p_rec:.0f}s not faster than "
        f"capacity-only {c_rec:.0f}s")
    assert p_cost < c_cost, (
        f"placement-aware bill ${p_cost:.2f} not cheaper than "
        f"capacity-only ${c_cost:.2f}")
    # The ablation demonstrably rented nodes that did not help: it bought
    # more capacity than the placement arm ever did, and still spent longer
    # in violation (the episode is service-side, so the extra fleet cannot
    # absorb it).
    assert capacity.engine.controller.scale_up_count() \
        > placement.engine.controller.scale_up_count()
    assert capacity.engine.controller.evacuation_count() == 0
    # Diagnosis and remediation actually fired on the shipped arm...
    assert any(o.contention_suspected
               for o in placement.engine.monitor.observations())
    assert placement.engine.controller.evacuation_count() >= 1
    # ... no degraded node ever dropped a write or leaked a stale read ...
    for result in (placement, capacity):
        assert result.engine.lost_write_count() == 0
        assert result.engine.stale_read_count() == 0
    # ... and the whole story is on the decision timeline, with evidence.
    events = placement.engine.timeline.snapshot()["events"]
    kinds = Counter(e["kind"] for e in events)
    for kind in ("contention-diagnosis", "host-evacuate"):
        assert kinds[kind] >= 1, f"timeline missing {kind}"
    diagnosis = next(e for e in events if e["kind"] == "contention-diagnosis")
    assert "residual" in diagnosis["detail"]
    # Recording is opt-in, like the perf harness: `make bench` must not
    # dirty the committed trajectory.
    if os.environ.get("BENCH_PERF_RECORD", "") in ("", "0"):
        return
    append_entry(BENCH_PERF_PATH, {
        "label": os.environ.get("BENCH_PERF_LABEL", "run"),
        "contention": {
            "placement_dollars": round(p_cost, 3),
            "capacity_dollars": round(c_cost, 3),
            "placement_recovery_seconds": round(p_rec, 1),
            "capacity_recovery_seconds": round(c_rec, 1),
            "contention_windows": sum(
                1 for o in placement.engine.monitor.observations()
                if o.contention_suspected),
            "evacuations": placement.engine.controller.evacuation_count(),
            "capacity_scale_ups": capacity.engine.controller.scale_up_count(),
        },
    })
