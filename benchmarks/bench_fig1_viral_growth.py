"""F1 — Figure 1: Animoto-style viral growth.

The paper's Figure 1 shows Animoto growing from ~50 to 3 400+ servers in
three days.  This benchmark drives the SCADS autoscaler with a load trace
whose start-to-peak ratio matches Figure 1 (compressed in simulated time) and
reports the server-count curve, the growth factor achieved, and SLA
attainment — against a statically provisioned baseline sized for the starting
load, which predictably falls over.
"""

from __future__ import annotations

from repro.experiments.harness import run_closed_loop, smoke_mode, smoke_scaled
from repro.workloads.traces import AnimotoViralTrace

_SCALE = smoke_scaled(1.0, 0.1)  # BENCH_SMOKE compresses the whole timeline
TRACE = AnimotoViralTrace(start_rate=15.0, peak_multiplier=20.0,
                          ramp_start=240.0 * _SCALE, ramp_duration=2100.0 * _SCALE)
DURATION = 3000.0 * _SCALE


def run_experiment():
    autoscaled = run_closed_loop(TRACE, DURATION, seed=3, n_users=150,
                                 autoscale=True, initial_groups=1)
    static = run_closed_loop(TRACE, DURATION, seed=3, n_users=150,
                             autoscale=False, initial_groups=1)
    return autoscaled, static


def test_fig1_viral_growth(benchmark, table_printer):
    autoscaled, static = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    nodes = autoscaled.engine.controller.series().get("nodes")
    rates = autoscaled.engine.controller.series().get("observed_rate")
    samples = []
    for i in range(0, len(nodes), max(len(nodes) // 12, 1)):
        t = nodes.times[i]
        samples.append((f"{t / 60:.0f} min", f"{rates.value_at(t):.0f}", f"{nodes.values[i]:.0f}"))
    table_printer("Figure 1 — servers tracking viral growth (autoscaled)",
                  ["time", "load (ops/s)", "storage nodes"], samples)

    table_printer(
        "Figure 1 — autoscaled vs. statically provisioned for the starting load",
        ["system", "peak nodes", "99th pct read (ms)", "SLA met", "dollars"],
        [
            ("SCADS autoscaled", autoscaled.peak_nodes,
             f"{autoscaled.read_report.observed_percentile_latency * 1000:.1f}",
             autoscaled.read_report.satisfied, f"{autoscaled.cost.dollars:.2f}"),
            ("static (start-sized)", static.peak_nodes,
             f"{static.read_report.observed_percentile_latency * 1000:.1f}",
             static.read_report.satisfied, f"{static.cost.dollars:.2f}"),
        ],
    )

    growth = TRACE.rate_at(DURATION) / TRACE.rate_at(0.0)
    node_growth = autoscaled.peak_nodes / max(nodes.values[0], 1)
    print(f"\nload grew {growth:.0f}x; the autoscaler grew capacity {node_growth:.0f}x "
          f"(paper: 50 -> 3,400+ servers, a 68x growth, same shape).")

    # Shape assertions: the autoscaler follows the growth and wins on latency.
    if smoke_mode():
        return  # smoke sweeps check the loop runs; the growth claims need full time
    assert autoscaled.peak_nodes >= 4 * max(nodes.values[0], 1)
    assert autoscaled.scale_ups >= 2
    assert (autoscaled.read_report.observed_percentile_latency
            < static.read_report.observed_percentile_latency)
