"""E13 — hot-partition repair: split+migrate vs. renting replica groups.

Section 2.1's elasticity argument assumes repartitioning is cheap enough to
do continuously.  This benchmark stresses the complementary claim: when load
is *skewed* rather than merely large, fine-grained repartitioning beats
whole-group scaling on both data movement and dollars.

A Zipf workload concentrates on a contiguous "celebrity block" of users at
the front of one replica group's range (hot partition), while the cluster as
a whole has plenty of headroom.  Two identically-seeded systems respond:

* **split+migrate** — the hot-partition rebalancer splits the hot range at
  its tracked-load median and live-migrates only the hot keys to cold
  groups, renting nothing unless placement alone cannot fix the skew;
* **add-group baseline** — the provisioning loop rents whole replica groups;
  each new group takes half of the busiest group's keyspace (stored-key
  median — load-oblivious), so it must bisect its way to the hot keys.

Both must re-attain the read SLA; the repartitioner must do it with strictly
fewer keys moved and strictly fewer dollars billed.
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import Scads
from repro.core.schema import EntitySchema, Field
from repro.experiments.harness import (
    SCALED_DOWN_INSTANCE,
    default_spec,
    smoke_mode,
    smoke_scaled,
)

N_USERS = 240
ZIPF_S = 1.15           # rank-frequency exponent; rank 1 is ~20% of traffic
RATE = 150.0            # offered ops/sec (90% reads, 10% writes)
WRITE_FRACTION = 0.1
DURATION = smoke_scaled(1200.0, 120.0)
CONTROL_INTERVAL = 30.0
FINAL_WINDOWS = 5       # SLA must hold in a majority of the last windows


def run_system(repartition: bool, seed: int = 7) -> Scads:
    """One closed-loop run; ``repartition`` toggles the rebalancer."""
    engine = Scads(
        seed=seed,
        consistency=default_spec(latency=0.250),
        instance_type=SCALED_DOWN_INSTANCE,
        replication_factor=3,
        initial_groups=4,
        min_groups=4,
        autoscale=True,
        predictive_scaling=False,   # isolate the repartition-vs-rent choice
        control_interval=CONTROL_INTERVAL,
        max_instances=24,
        partitioner_kind="range",
        cache=False,  # isolate repartitioning from the (default-on) cache tier
        repartition=repartition,
        repartition_hot_utilisation=0.3,
        repartition_cold_utilisation=0.2,
    )
    # E13 studies the scale-up economics of skew; scale-down churn (E6's
    # topic) would re-concentrate ranges mid-experiment, so park it, and
    # rent at most one group per window so both systems act incrementally.
    engine.controller.scale_down_patience = 10 ** 6
    engine.controller.max_groups_per_step = 1
    if engine.rebalancer is not None:
        # Calibrated for this scale: a group stays SLA-comfortable up to ~26%
        # mean utilisation (the write path concentrates on primaries).
        engine.rebalancer.receiver_target_utilisation = 0.26

    engine.register_entity(EntitySchema(
        "profiles", key_fields=[Field("user_id")], value_fields=[Field("bio")],
    ))
    tokens = [f"u{i:03d}" for i in range(N_USERS)]
    quarter = N_USERS // 4
    engine.cluster.partitioner.set_splits(
        ["", tokens[quarter], tokens[2 * quarter], tokens[3 * quarter]],
        ["group-0", "group-1", "group-2", "group-3"],
    )
    for token in tokens:
        engine.put("profiles", {"user_id": token, "bio": f"bio of {token}"})
    engine.settle(5.0)

    # Zipf by token order: u000 is the hottest user, u001 the next, ... — a
    # contiguous celebrity block at the front of group-0's range.
    ranks = np.arange(1, N_USERS + 1)
    probabilities = 1.0 / ranks ** ZIPF_S
    probabilities /= probabilities.sum()
    rng = engine.sim.random.get("bench-e13")

    def issue() -> None:
        user = tokens[int(rng.choice(N_USERS, p=probabilities))]
        if rng.random() < WRITE_FRACTION:
            engine.put("profiles", {"user_id": user, "bio": f"update@{engine.now:.0f}"})
        else:
            engine.get("profiles", (user,))
        engine.sim.schedule(float(rng.exponential(1.0 / RATE)), issue, name="zipf-load")

    engine.start()
    engine.sim.schedule(0.0, issue, name="zipf-load")
    engine.run_for(DURATION)
    return engine


def sla_reattained(engine: Scads) -> bool:
    """Read SLA satisfied in a majority of the final closed windows."""
    recent = engine.monitor.observations()[-FINAL_WINDOWS:]
    ok = sum(1 for o in recent if o.sla_reports["read"].satisfied)
    return ok > len(recent) // 2


def run_experiment():
    return run_system(repartition=True), run_system(repartition=False)


def test_e13_split_migrate_beats_add_group(benchmark, table_printer):
    with_rebalancer, add_group_only = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    rows = []
    for label, engine in (("split+migrate (rebalancer)", with_rebalancer),
                          ("add-group baseline", add_group_only)):
        cluster = engine.cluster
        rows.append((
            label,
            cluster.keys_moved_total,
            cluster.splits_total,
            cluster.migrations_total,
            engine.controller.repartition_count(),
            engine.controller.scale_up_count(),
            cluster.group_count(),
            f"{engine.cost_so_far():.2f}",
            sla_reattained(engine),
        ))
    table_printer(
        "E13 — Zipf hotspot: keys moved and dollars to re-attain the read SLA",
        ["system", "keys moved", "splits", "migrations", "repartitions",
         "scale-ups", "final groups", "dollars", "SLA re-attained"],
        rows,
    )
    moved_ratio = (add_group_only.cluster.keys_moved_total
                   / max(with_rebalancer.cluster.keys_moved_total, 1))
    cost_ratio = add_group_only.cost_so_far() / max(with_rebalancer.cost_so_far(), 1e-9)
    print(f"\nsplit+migrate moved {moved_ratio:.1f}x fewer keys and billed "
          f"{cost_ratio:.1f}x fewer dollars than renting groups")

    if smoke_mode():
        return  # smoke sweeps check the loop runs; the economics need full time
    assert with_rebalancer.controller.repartition_count() >= 1
    assert sla_reattained(with_rebalancer)
    assert sla_reattained(add_group_only)
    assert (with_rebalancer.cluster.keys_moved_total
            < add_group_only.cluster.keys_moved_total)
    assert with_rebalancer.cost_so_far() < add_group_only.cost_so_far()
