"""E11 — ablation of the machine-learning forecaster and planner backends.

Section 3.3.2 argues model-driven provisioning can add machines *before*
SLAs are endangered.  This benchmark compares three controllers on the same
viral-growth trace: predictive (ML forecast), reactive (same loop but acting
only on the current observation), and static (no scaling), reporting SLA
attainment, peak capacity, and cost.

A second ablation compares the planner's latency-sizing backends head to
head on the same trace — ``analytical`` (closed-form M/G/k), ``ml``
(learned model, the pre-clamp behaviour), and ``hybrid`` (analytical
backbone + bounded ML residual, the default) — and audits every hybrid
:class:`~repro.core.provisioning.planner.CapacityPlan` against the clamp
band.
"""

from __future__ import annotations

import math

from repro.core.provisioning.backends import PLANNER_BACKENDS
from repro.experiments.harness import run_closed_loop, smoke_mode, smoke_scaled
from repro.workloads.traces import AnimotoViralTrace

_SCALE = smoke_scaled(1.0, 0.1)  # BENCH_SMOKE compresses the whole timeline
TRACE = AnimotoViralTrace(start_rate=15.0, peak_multiplier=14.0,
                          ramp_start=240.0 * _SCALE, ramp_duration=1500.0 * _SCALE)
DURATION = 2100.0 * _SCALE


def run_experiment():
    predictive = run_closed_loop(TRACE, DURATION, seed=29, n_users=150,
                                 autoscale=True, predictive_scaling=True, initial_groups=1)
    reactive = run_closed_loop(TRACE, DURATION, seed=29, n_users=150,
                               autoscale=True, predictive_scaling=False, initial_groups=1)
    static = run_closed_loop(TRACE, DURATION, seed=29, n_users=150,
                             autoscale=False, initial_groups=1)
    return predictive, reactive, static


def test_e11_predictive_vs_reactive_vs_static(benchmark, table_printer):
    predictive, reactive, static = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for label, result in (("predictive (ML forecast)", predictive),
                          ("reactive (no forecast)", reactive),
                          ("static", static)):
        rows.append((
            label, result.peak_nodes,
            f"{result.read_report.observed_percentile_latency * 1000:.1f}",
            f"{result.read_report.observed_fraction_within:.4f}",
            result.read_report.satisfied,
            f"{result.cost.dollars:.2f}",
        ))
    table_printer(
        "E11 — provisioning policy ablation on viral growth",
        ["policy", "peak nodes", "99th pct read (ms)", "fraction within target",
         "SLA met", "dollars"],
        rows,
    )
    # Any scaling beats none; the forecast keeps attainment at least as good
    # as reacting after the fact.
    if smoke_mode():
        return  # smoke sweeps check the loop runs; the ablation needs full time
    assert (predictive.read_report.observed_percentile_latency
            < static.read_report.observed_percentile_latency)
    assert (predictive.read_report.observed_fraction_within
            >= reactive.read_report.observed_fraction_within - 0.01)
    assert predictive.peak_nodes >= reactive.peak_nodes


def run_backend_ablation():
    return {
        backend: run_closed_loop(
            TRACE, DURATION, seed=29, n_users=150,
            autoscale=True, predictive_scaling=True, initial_groups=1,
            engine_kwargs={"planner_backend": backend},
        )
        for backend in PLANNER_BACKENDS
    }


def test_e11_planner_backend_ablation(benchmark, table_printer):
    results = benchmark.pedantic(run_backend_ablation, rounds=1, iterations=1)
    rows = []
    for backend in PLANNER_BACKENDS:
        result = results[backend]
        rows.append((
            backend, result.peak_nodes,
            f"{result.read_report.observed_percentile_latency * 1000:.1f}",
            f"{result.read_report.observed_fraction_within:.4f}",
            result.read_report.satisfied,
            f"{result.cost.dollars:.2f}",
        ))
    table_printer(
        "E11 — planner backend ablation (analytical vs ml vs hybrid)",
        ["backend", "peak nodes", "99th pct read (ms)", "fraction within target",
         "SLA met", "dollars"],
        rows,
    )
    # Structural invariant, checked even in smoke mode: every plan the hybrid
    # controller emitted kept the latency requirement inside the clamp band
    # of the analytical answer (the planner's min_nodes floor aside).
    hybrid = results["hybrid"]
    plans = hybrid.engine.controller.plans()
    assert plans, "hybrid run emitted no capacity plans"
    min_nodes = hybrid.engine.planner.min_nodes
    for plan in plans:
        assert plan.backend == "hybrid"
        assert plan.analytic_nodes is not None
        low = max(int(math.floor(plan.analytic_nodes * (1.0 - plan.clamp_band))), 1)
        high = max(int(math.ceil(plan.analytic_nodes * (1.0 + plan.clamp_band))), 1)
        assert (min(low, min_nodes)
                <= plan.latency_required_nodes
                <= max(high, min_nodes)), plan.describe()
    if smoke_mode():
        return  # smoke sweeps check the loop runs; economics need full time
    # The hybrid backbone must not cost materially more than pure analytical,
    # and the bounded residual keeps it orders of magnitude from the
    # pre-clamp runaway regime (renting toward the pool cap).
    assert results["hybrid"].peak_nodes <= 3 * results["analytical"].peak_nodes
    for backend in PLANNER_BACKENDS:
        assert results[backend].read_report.request_count > 0
