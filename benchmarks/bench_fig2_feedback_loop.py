"""F2 — Figure 2: the provisioning feedback loop.

Figure 2 sketches the closed loop: workload + declared SLAs + learned models
drive partitioning/replication/capacity actions.  This benchmark runs the
same diurnal workload with the loop closed (autoscaling on) and open
(autoscaling off, fixed initial capacity) and reports what the loop buys:
SLA attainment through the daily peak and lower cost through the trough.
"""

from __future__ import annotations

from repro.experiments.harness import run_closed_loop, smoke_mode, smoke_scaled
from repro.workloads.traces import DiurnalTrace

_SCALE = smoke_scaled(1.0, 0.1)  # BENCH_SMOKE compresses the whole timeline
TRACE = DiurnalTrace(base_rate=8.0, peak_rate=90.0, peak_hour=0.4 * _SCALE,
                     period_hours=1.0 * _SCALE)
DURATION = 3600.0 * _SCALE  # one compressed "day" (one-hour period)


def run_experiment():
    closed = run_closed_loop(TRACE, DURATION, seed=5, n_users=150,
                             autoscale=True, initial_groups=1)
    open_loop = run_closed_loop(TRACE, DURATION, seed=5, n_users=150,
                                autoscale=False, initial_groups=1)
    return closed, open_loop


def test_fig2_feedback_loop(benchmark, table_printer):
    closed, open_loop = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for label, result in (("feedback loop closed", closed), ("loop open (fixed capacity)", open_loop)):
        rows.append((
            label,
            result.peak_nodes,
            result.final_nodes,
            f"{result.read_report.observed_percentile_latency * 1000:.1f}",
            result.read_report.satisfied,
            result.scale_ups,
            result.scale_downs,
            f"{result.cost.dollars:.2f}",
        ))
    table_printer(
        "Figure 2 — effect of closing the provisioning feedback loop",
        ["configuration", "peak nodes", "final nodes", "99th pct read (ms)",
         "SLA met", "scale-ups", "scale-downs", "dollars"],
        rows,
    )
    # The loop reacts (scales up for the peak) and the open loop's tail
    # latency is worse because the fixed capacity saturates at the peak.
    if smoke_mode():
        return  # smoke sweeps check the loop runs; the loop claims need full time
    assert closed.scale_ups >= 1
    assert (closed.read_report.observed_percentile_latency
            <= open_loop.read_report.observed_percentile_latency)
