"""F4 — Figure 4: the axes of consistency.

Figure 4 is a table of the five declarative axes and an example of each.
This benchmark exercises every axis end-to-end on the simulated cluster and
reports, per axis, the declared requirement next to the measured behaviour:

* performance       — 99th-percentile read latency vs. the declared target,
* write consistency — outcome of conflicting writes under each policy,
* read consistency  — worst observed replication lag vs. the declared bound,
* session guarantees— stale-own-write anomalies with and without the guarantee,
* durability        — replication factor chosen for each declared probability.
"""

from __future__ import annotations

from repro import Scads
from repro.core.consistency.spec import (
    ConsistencySpec,
    SessionGuarantee,
    WriteConsistency,
    WritePolicy,
)
from repro.core.schema import EntitySchema, Field, FieldType
from repro.experiments.harness import default_spec, run_closed_loop, smoke_mode, smoke_scaled
from repro.storage.durability import DurabilityModel
from repro.workloads.traces import ConstantTrace


def _engine(spec: ConsistencySpec, seed: int = 9) -> Scads:
    engine = Scads(seed=seed, autoscale=False, consistency=spec, initial_groups=2)
    engine.register_entity(EntitySchema(
        name="items", key_fields=[Field("key")], value_fields=[Field("a", FieldType.INT), Field("b", FieldType.INT)],
    ))
    engine.start()
    return engine


def axis_performance():
    spec = default_spec(latency=0.150, percentile=99.0)
    result = run_closed_loop(ConstantTrace(25.0), smoke_scaled(600.0, 60.0), seed=2, n_users=100, spec=spec)
    report = result.read_report
    return ("Performance", "99% of reads < 150 ms",
            f"p99 = {report.observed_percentile_latency * 1000:.1f} ms, met={report.satisfied}",
            report.satisfied)


def axis_write_consistency():
    def merge(current, incoming):
        merged = dict(current)
        merged["a"] = (current.get("a") or 0) + (incoming.get("a") or 0)
        return merged

    lww = _engine(ConsistencySpec(write=WriteConsistency(WritePolicy.LAST_WRITE_WINS)))
    lww.put("items", {"key": "k", "a": 1, "b": 1})
    lww.put("items", {"key": "k", "a": 2, "b": None})
    lww.settle()
    lww_row = lww.get("items", ("k",)).row

    merging = _engine(ConsistencySpec(write=WriteConsistency(WritePolicy.MERGE,
                                                             merge_function=merge)))
    merging.put("items", {"key": "k", "a": 1, "b": 1})
    merging.put("items", {"key": "k", "a": 2, "b": None})
    merging.settle()
    merge_row = merging.get("items", ("k",)).row

    ok = lww_row.get("b") is None and merge_row.get("a") == 3 and merge_row.get("b") == 1
    return ("Write consistency", "serializable / merge / last-write-wins",
            f"LWW kept only the last write (b={lww_row.get('b')}); "
            f"merge combined both (a={merge_row.get('a')}, b={merge_row.get('b')})", ok)


def axis_read_consistency():
    spec = default_spec(staleness_bound=30.0)
    result = run_closed_loop(ConstantTrace(25.0), smoke_scaled(600.0, 60.0), seed=4, n_users=100, spec=spec)
    lag = result.max_replication_lag
    miss = result.deadline_miss_rate
    ok = lag <= 30.0
    return ("Read consistency", "stale data gone within 30 s",
            f"max replication lag {lag:.2f} s, maintenance deadline miss rate {miss:.3f}", ok)


def axis_session_guarantees():
    with_guarantee = _engine(ConsistencySpec(session=SessionGuarantee(read_your_writes=True)),
                             seed=11)
    without = _engine(ConsistencySpec(), seed=11)
    anomalies = {"with": 0, "without": 0}
    for label, engine in (("with", with_guarantee), ("without", without)):
        for i in range(50):
            user = f"user{i}"
            engine.put("items", {"key": user, "a": i, "b": i}, session_id=user)
            row = engine.get("items", (user,), session_id=user).row
            if row is None or row.get("a") != i:
                anomalies[label] += 1
    ok = anomalies["with"] == 0 and anomalies["without"] > 0
    return ("Session guarantees", "I must read my own writes",
            f"own-write anomalies: {anomalies['with']}/50 with the guarantee, "
            f"{anomalies['without']}/50 without", ok)


def axis_durability():
    model = DurabilityModel()
    strict = model.required_replication_factor(0.99999)
    relaxed = model.required_replication_factor(0.99)
    ok = strict >= relaxed
    return ("Durability SLA", "data persists with 99.999% probability",
            f"replication factor {strict} (vs. {relaxed} for a relaxed 99% target; "
            f"achieved durability {model.durability(strict):.7f})", ok)


def run_experiment():
    return [
        axis_performance(),
        axis_write_consistency(),
        axis_read_consistency(),
        axis_session_guarantees(),
        axis_durability(),
    ]


def test_fig4_consistency_axes(benchmark, table_printer):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table_printer(
        "Figure 4 — the axes of consistency, declared vs. measured",
        ["Axis", "Declared (example from the paper)", "Measured behaviour", "holds"],
        [(axis, declared, measured, holds) for axis, declared, measured, holds in rows],
    )
    if smoke_mode():
        return  # smoke sweeps check the loop runs; the axis claims need full time
    for axis, _, measured, holds in rows:
        assert holds, f"axis {axis!r} did not hold: {measured}"
