"""E5 — latency-SLA attainment through a write-heavy event spike.

Section 2.1 singles out event spikes (the post-Halloween photo surge) as
"particularly interesting, and difficult, because they involve a significant
percentage of writes".  This benchmark drives the system with a write-heavy
spike on top of a baseline and compares the declared latency SLA's attainment
and the scaling behaviour for the autoscaled system vs. a static cluster
sized for the baseline.
"""

from __future__ import annotations

from repro.experiments.harness import run_closed_loop, smoke_mode, smoke_scaled
from repro.workloads.traces import HalloweenSpikeTrace

_SCALE = smoke_scaled(1.0, 0.1)  # BENCH_SMOKE compresses the whole timeline
TRACE = HalloweenSpikeTrace(
    base_rate=15.0, spike_multiplier=5.0,
    spike_start=600.0 * _SCALE, rise_duration=180.0 * _SCALE,
    hold_duration=900.0 * _SCALE, decay_duration=600.0 * _SCALE,
)
DURATION = 3000.0 * _SCALE


def run_experiment():
    autoscaled = run_closed_loop(TRACE, DURATION, seed=13, n_users=150,
                                 autoscale=True, write_heavy=True, initial_groups=1)
    static = run_closed_loop(TRACE, DURATION, seed=13, n_users=150,
                             autoscale=False, write_heavy=True, initial_groups=1)
    return autoscaled, static


def test_e5_sla_autoscaling_through_spike(benchmark, table_printer):
    autoscaled, static = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for label, result in (("SCADS autoscaled", autoscaled), ("static baseline", static)):
        summary = result.summary()
        rows.append((
            label, summary["peak_nodes"], summary["read_p_latency_ms"],
            summary["read_sla_met"], summary["write_p_latency_ms"],
            summary["deadline_miss_rate"], summary["dollars"],
        ))
    table_printer(
        "E5 — write-heavy spike: SLA attainment and scaling",
        ["system", "peak nodes", "99th pct read (ms)", "read SLA met",
         "99th pct write (ms)", "maintenance deadline miss rate", "dollars"],
        rows,
    )
    if smoke_mode():
        return  # smoke sweeps check the loop runs; the economics need full time
    assert autoscaled.scale_ups >= 1
    assert (autoscaled.read_report.observed_percentile_latency
            < static.read_report.observed_percentile_latency)
    assert autoscaled.deadline_miss_rate <= static.deadline_miss_rate
