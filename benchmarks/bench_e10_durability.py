"""E10 — durability SLAs choose replication factors.

Figure 4's durability axis: developers declare the probability committed
writes persist; SCADS picks the replication needed given expected failure
rates, and relaxing the target for unimportant data saves replication cost.
This benchmark sweeps durability targets and node failure rates, reports the
chosen replication factors and achieved durability, and validates the
analytic model against a Monte-Carlo failure simulation on the cluster
substrate.
"""

from __future__ import annotations

import numpy as np

from repro.storage.durability import DurabilityModel

TARGETS = [0.99, 0.999, 0.99999, 0.9999999]
MTTF_HOURS = [1000.0, 4380.0, 17520.0]


def _monte_carlo_loss(replication: int, mttf_hours: float, re_replication_hours: float,
                      horizon_hours: float, trials: int = 20_000, seed: int = 7) -> float:
    """Simulate independent replica failures and count data-loss events."""
    rng = np.random.default_rng(seed)
    losses = 0
    for _ in range(trials):
        failure_times = rng.exponential(mttf_hours, size=replication)
        failure_times.sort()
        # Data is lost if all remaining replicas fail within one
        # re-replication window of the first failure, inside the horizon.
        first = failure_times[0]
        if first > horizon_hours:
            continue
        if np.all(failure_times <= first + re_replication_hours):
            losses += 1
    return losses / trials


def run_experiment():
    sweep_rows = []
    for mttf in MTTF_HOURS:
        model = DurabilityModel(node_mttf_hours=mttf, re_replication_hours=1.0)
        for target in TARGETS:
            factor = model.required_replication_factor(target)
            sweep_rows.append((f"{mttf:.0f}", f"{target}", factor,
                               f"{model.durability(factor):.9f}"))
    # Model-vs-simulation validation at the default failure rate.
    model = DurabilityModel()
    validation_rows = []
    for replication in (1, 2, 3):
        analytic = model.loss_probability(replication, horizon_hours=8760.0)
        simulated = _monte_carlo_loss(replication, model.node_mttf_hours,
                                      model.re_replication_hours, 8760.0)
        validation_rows.append((replication, f"{analytic:.6f}", f"{simulated:.6f}"))
    return sweep_rows, validation_rows


def test_e10_durability_sla(benchmark, table_printer):
    sweep_rows, validation_rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table_printer(
        "E10 — replication factor chosen per durability target and node MTTF",
        ["node MTTF (h)", "declared durability", "replication factor", "achieved durability"],
        sweep_rows,
    )
    table_printer(
        "E10 — analytic loss probability vs. Monte-Carlo simulation (1-year horizon)",
        ["replication factor", "analytic", "simulated"],
        validation_rows,
    )
    # Stricter targets never need fewer replicas; relaxed targets save replicas.
    factors = {}
    for mttf, target, factor, _ in sweep_rows:
        factors.setdefault(mttf, []).append(factor)
    for per_mttf in factors.values():
        assert per_mttf == sorted(per_mttf)
        assert per_mttf[0] < per_mttf[-1]
    # The analytic model agrees with simulation within the same order of magnitude.
    for replication, analytic, simulated in validation_rows:
        analytic_value = float(analytic)
        simulated_value = float(simulated)
        if analytic_value > 1e-4:
            assert 0.2 * analytic_value <= max(simulated_value, 1e-12) <= 5.0 * analytic_value
