"""E3 — bounded-work index maintenance (the O(K) claim).

Section 3.2 requires every update function to run in O(K) for an
application-chosen constant K.  This benchmark measures the actual number of
index/lookup operations performed when a user with K friends changes her
birthday (the worst case for the birthday index: every friend's index entry
moves) for several values of K, and checks the work scales with K — and only
with K, not with the total population.
"""

from __future__ import annotations

from repro.core.index.maintenance import EntityWrite
from repro.experiments.harness import build_engine_and_app

FRIEND_COUNTS = [10, 40, 160]


def _maintenance_ops_for_birthday_change(k: int, extra_users: int) -> int:
    engine, app, _ = build_engine_and_app(
        seed=23, n_users=5, friend_cap=k + 5, mean_friends=1.0,
        autoscale=False, initial_groups=2,
    )
    engine.start()
    app.create_user("star", "Star", "06-06")
    for i in range(k):
        app.create_user(f"fan{i}", f"Fan {i}", "01-01")
        app.add_friendship(f"fan{i}", "star")
    # Population padding that must NOT affect per-update work.
    for i in range(extra_users):
        app.create_user(f"bystander{i}", "Bystander", "02-02")
    engine.settle(seconds=5.0)
    result = engine.maintainer.apply(
        EntityWrite(
            entity="profiles",
            old_row={"user_id": "star", "name": "Star", "birthday": "06-06", "hometown": ""},
            new_row={"user_id": "star", "name": "Star", "birthday": "09-09", "hometown": ""},
        )
    )
    return result.total_ops


def run_experiment():
    rows = []
    for k in FRIEND_COUNTS:
        ops = _maintenance_ops_for_birthday_change(k, extra_users=0)
        ops_with_bystanders = _maintenance_ops_for_birthday_change(k, extra_users=200)
        rows.append((k, ops, ops_with_bystanders))
    return rows


def test_e3_bounded_updates(benchmark, table_printer):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table_printer(
        "E3 — maintenance work for one birthday change vs. friend count K",
        ["friends (K)", "ops (base population)", "ops (+200 bystander users)"],
        rows,
    )
    # Work grows with K...
    assert rows[-1][1] > rows[0][1]
    for k, ops, _ in rows:
        # ... linearly: one delete + one insert per friend plus bounded lookups.
        assert ops <= 6 * k + 20, f"update work {ops} is not O(K) for K={k}"
    # ... and is independent of the total population.
    for _, ops, ops_padded in rows:
        assert abs(ops_padded - ops) <= 4
