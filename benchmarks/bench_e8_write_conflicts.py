"""E8 — the write-consistency spectrum under concurrent writers.

Figure 4's write axis offers serializable writes, developer-supplied merge
functions, and last-write-wins.  This benchmark has two "browser sessions"
update the same profile concurrently (each touching a different field) under
each policy and reports what survives plus the write-latency cost of each
policy.
"""

from __future__ import annotations

import numpy as np

from repro import Scads
from repro.core.consistency.spec import ConsistencySpec, WriteConsistency, WritePolicy
from repro.core.schema import EntitySchema, Field

ROUNDS = 60


def _merge_fields(current, incoming):
    merged = dict(current)
    merged.update({k: v for k, v in incoming.items() if v is not None})
    return merged


def _build(policy: WritePolicy) -> Scads:
    write = WriteConsistency(policy, merge_function=_merge_fields) \
        if policy is WritePolicy.MERGE else WriteConsistency(policy)
    engine = Scads(seed=41, autoscale=False, initial_groups=2,
                   consistency=ConsistencySpec(write=write))
    engine.register_entity(EntitySchema(
        "profiles", key_fields=[Field("user_id")],
        value_fields=[Field("hometown"), Field("birthday")],
    ))
    engine.start()
    return engine


def _run_policy(policy: WritePolicy) -> dict:
    engine = _build(policy)
    latencies = []
    both_survive = 0
    for i in range(ROUNDS):
        user = f"user{i}"
        # Session A sets the hometown, session B (concurrently) the birthday;
        # each write carries only the field its session changed.
        a = engine.put("profiles", {"user_id": user, "hometown": f"town{i}"},
                       session_id="session-a")
        b = engine.put("profiles", {"user_id": user, "birthday": "12-25"},
                       session_id="session-b")
        latencies.extend([a.latency, b.latency])
        engine.settle(seconds=1.0)
        row = engine.get("profiles", (user,)).row or {}
        if row.get("hometown") == f"town{i}" and row.get("birthday") == "12-25":
            both_survive += 1
    return {
        "policy": policy.value,
        "both_updates_survive": both_survive,
        "mean_write_ms": float(np.mean(latencies)) * 1000.0,
        "write_quorum": engine.resolver.write_quorum(),
    }


def run_experiment():
    return [_run_policy(policy) for policy in
            (WritePolicy.LAST_WRITE_WINS, WritePolicy.MERGE, WritePolicy.SERIALIZABLE)]


def test_e8_write_conflict_handling(benchmark, table_printer):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table_printer(
        "E8 — concurrent writers touching different fields of the same row",
        ["write policy", f"rounds where both updates survive (of {ROUNDS})",
         "mean write latency (ms)", "sync write quorum"],
        [(r["policy"], r["both_updates_survive"], f"{r['mean_write_ms']:.2f}",
          r["write_quorum"]) for r in results],
    )
    by_policy = {r["policy"]: r for r in results}
    # Last-write-wins loses the first writer's field; merge keeps both.
    assert by_policy["last_write_wins"]["both_updates_survive"] == 0
    assert by_policy["merge"]["both_updates_survive"] == ROUNDS
    # Serializable read-modify-write also composes both, at a higher latency.
    assert by_policy["serializable"]["both_updates_survive"] == ROUNDS
    assert (by_policy["serializable"]["mean_write_ms"]
            > by_policy["last_write_wins"]["mean_write_ms"])
