"""E6 — the economics of scaling down.

Section 1/2.1: with per-machine-hour billing, "keeping idle servers active
during non-peak times is a waste of money"; scaling is defined as keeping
cost per user roughly constant.  This benchmark runs two compressed diurnal
cycles and compares dollars and cost per million requests for the autoscaled
system against a static cluster provisioned for the peak.

Both arms rent a per-minute-billed instance (``billing_increment=60``): under
ceil-hour billing a compressed 1.4 h "day" bills every lease the same 1-2
started hours whether it ran 10 minutes or the full cycle, which erases the
very trough savings the experiment measures.  Per-minute increments make the
bill track the fleet-size integral, exactly the paper's utility-computing
premise.

The static arm holds the fleet the capacity planner itself demands at peak
(the autoscaled run's observed ``peak_nodes``), not a hand-derived
``peak_rate / capacity`` seat count.  "Provisioning for peak" means asking
your own sizing model what the peak needs and keeping that fleet all day;
sizing the static arm with a *different, more aggressive* model would credit
the delta to elasticity when it is really a disagreement between two
planners.  The comparison therefore isolates the one variable the experiment
is about: the same planner's fleet, held flat vs scaled with demand.
"""

from __future__ import annotations

import math
from dataclasses import replace

from repro.experiments.harness import (
    SCALED_DOWN_INSTANCE,
    run_closed_loop,
    smoke_mode,
    smoke_scaled,
)
from repro.workloads.traces import DiurnalTrace

_SCALE = smoke_scaled(1.0, 0.05)  # BENCH_SMOKE compresses the whole timeline
TRACE = DiurnalTrace(base_rate=6.0, peak_rate=240.0, peak_hour=0.35 * _SCALE,
                     period_hours=0.7 * _SCALE)
DURATION = 2 * 0.7 * _SCALE * 3600.0  # two compressed "days"

PER_MINUTE_INSTANCE = replace(
    SCALED_DOWN_INSTANCE, name=f"{SCALED_DOWN_INSTANCE.name}.minutely",
    billing_increment=60.0)


def run_experiment():
    autoscaled = run_closed_loop(TRACE, DURATION, seed=19, n_users=120,
                                 autoscale=True, initial_groups=1,
                                 control_interval=30.0,
                                 instance_type=PER_MINUTE_INSTANCE)
    # Static baseline provisioned for the peak: hold the fleet the planner
    # itself reached at the top of the cycle (see module docstring).
    peak_groups = max(math.ceil(autoscaled.peak_nodes / 3), 1)
    static_peak = run_closed_loop(TRACE, DURATION, seed=19, n_users=120,
                                  autoscale=False, initial_groups=peak_groups,
                                  instance_type=PER_MINUTE_INSTANCE)
    return autoscaled, static_peak


def test_e6_scale_down_economics(benchmark, table_printer):
    autoscaled, static_peak = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for label, result in (("SCADS (scales up and down)", autoscaled),
                          ("static, provisioned for peak", static_peak)):
        rows.append((
            label,
            result.peak_nodes,
            result.final_nodes,
            f"{result.cost.machine_hours:.1f}",
            f"{result.cost.dollars:.2f}",
            f"{result.cost.cost_per_million_requests():.2f}",
            result.read_report.satisfied,
        ))
    table_printer(
        "E6 — two diurnal cycles: machine-hours and cost per million requests",
        ["system", "peak nodes", "final nodes", "machine-hours", "dollars",
         "$ / M requests", "read SLA met"],
        rows,
    )
    savings = 1.0 - autoscaled.cost.dollars / static_peak.cost.dollars
    print(f"\nautoscaling saved {savings * 100:.0f}% of the static-peak bill "
          f"while still scaling down {autoscaled.scale_downs} time(s)")
    if smoke_mode():
        return  # smoke sweeps check the loop runs; the economics need full time
    assert autoscaled.scale_downs >= 1
    assert autoscaled.cost.dollars < static_peak.cost.dollars
