"""E7 — session guarantees over lazy replication.

Figure 4's session axis: "I must read my own writes."  This benchmark
measures the own-write anomaly rate (a user immediately re-reading data they
just wrote and not seeing it) and the monotonic-read anomaly rate, with and
without the corresponding guarantee declared, plus the latency price paid for
the primary fallbacks the guarantee forces.
"""

from __future__ import annotations

import numpy as np

from repro import Scads
from repro.core.consistency.spec import ConsistencySpec, SessionGuarantee
from repro.core.schema import EntitySchema, Field

PROBES = 150


def _build(guarantee: SessionGuarantee, seed: int = 37) -> Scads:
    engine = Scads(seed=seed, autoscale=False, initial_groups=2,
                   consistency=ConsistencySpec(session=guarantee))
    engine.register_entity(EntitySchema(
        "walls", key_fields=[Field("user_id")], value_fields=[Field("post")],
    ))
    engine.start()
    return engine


def _probe(engine: Scads) -> dict:
    own_write_anomalies = 0
    monotonic_anomalies = 0
    read_latencies = []
    for i in range(PROBES):
        user = f"user{i % 25}"
        engine.put("walls", {"user_id": user, "post": f"post {i}"}, session_id=user)
        outcome = engine.get("walls", (user,), session_id=user)
        read_latencies.append(outcome.latency)
        if outcome.success and (outcome.row is None or outcome.row.get("post") != f"post {i}"):
            own_write_anomalies += 1
        # A second read must not go backwards relative to the first.
        second = engine.get("walls", (user,), session_id=user)
        if (outcome.row is not None and second.success
                and (second.row is None or second.row.get("post") < outcome.row.get("post"))):
            monotonic_anomalies += 1
        engine.run_for(0.2)
    return {
        "own_write_anomalies": own_write_anomalies,
        "monotonic_anomalies": monotonic_anomalies,
        "mean_read_ms": float(np.mean(read_latencies)) * 1000.0,
    }


def run_experiment():
    without = _probe(_build(SessionGuarantee()))
    with_guarantees = _probe(_build(SessionGuarantee(read_your_writes=True,
                                                     monotonic_reads=True)))
    return without, with_guarantees


def test_e7_session_guarantees(benchmark, table_printer):
    without, with_guarantees = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table_printer(
        "E7 — session guarantees: anomalies prevented and latency paid",
        ["configuration", f"own-write anomalies (of {PROBES})",
         f"monotonic anomalies (of {PROBES})", "mean read latency (ms)"],
        [
            ("no session guarantees", without["own_write_anomalies"],
             without["monotonic_anomalies"], f"{without['mean_read_ms']:.2f}"),
            ("read-your-writes + monotonic reads", with_guarantees["own_write_anomalies"],
             with_guarantees["monotonic_anomalies"], f"{with_guarantees['mean_read_ms']:.2f}"),
        ],
    )
    assert with_guarantees["own_write_anomalies"] == 0
    assert with_guarantees["monotonic_anomalies"] == 0
    assert without["own_write_anomalies"] > 0
