"""E1 — scale independence of queries.

The paper's central claim: with pre-computed indexes and bounded per-user
fan-out, per-query cost does not grow with the total user population, whereas
a scan-based store's does.  This benchmark runs the paper's friend-birthday
query against SCADS and against the naive single-node RDBMS baseline at
increasing population sizes and reports the per-query latency of each.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.naive_rdbms import NaiveRdbms
from repro.experiments.harness import build_engine_and_app, smoke_mode

POPULATIONS = [60, 120, 240] if smoke_mode() else [150, 600, 2400]
FRIENDS_PER_USER = 8
QUERIES_PER_POINT = 25


def _scads_latency(n_users: int) -> float:
    engine, app, graph = build_engine_and_app(
        seed=17, n_users=n_users, friend_cap=FRIENDS_PER_USER + 2,
        mean_friends=float(FRIENDS_PER_USER), autoscale=False, initial_groups=2,
    )
    engine.start()
    engine.settle()
    # Let the bulk-load's load spike decay before measuring steady-state
    # query latency (the load model is intentionally load-sensitive).
    for _ in range(10):
        engine.run_for(10.0)
        engine.cluster.decay_load()
    rng = np.random.default_rng(17)
    users = graph.users()
    latencies = []
    for _ in range(QUERIES_PER_POINT):
        user = users[int(rng.integers(0, len(users)))]
        latencies.append(app.birthdays_page(user).latency)
        engine.run_for(1.0)
    return float(np.mean(latencies))


def _naive_latency(n_users: int) -> float:
    db = NaiveRdbms()
    rng = np.random.default_rng(17)
    for i in range(n_users):
        user = f"u{i}"
        db.insert("profiles", (user,),
                  {"user_id": user, "name": user, "birthday": f"{(i % 12) + 1:02d}-15"})
        for j in range(FRIENDS_PER_USER):
            other = f"u{(i + j + 1) % n_users}"
            db.insert("friendships", (user, other), {"f1": user, "f2": other})
    latencies = []
    for _ in range(QUERIES_PER_POINT):
        user = f"u{int(rng.integers(0, n_users))}"
        latencies.append(db.friend_birthdays(user, limit=10).latency)
    return float(np.mean(latencies))


def run_experiment():
    rows = []
    for n_users in POPULATIONS:
        rows.append((n_users, _scads_latency(n_users), _naive_latency(n_users)))
    return rows


def test_e1_scale_independence(benchmark, table_printer):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table_printer(
        "E1 — friend-birthday query latency vs. user population",
        ["users", "SCADS mean latency (ms)", "naive scan store (ms)"],
        [(n, f"{scads * 1000:.2f}", f"{naive * 1000:.2f}") for n, scads, naive in rows],
    )
    smallest, largest = rows[0], rows[-1]
    scads_growth = largest[1] / smallest[1]
    naive_growth = largest[2] / smallest[2]
    population_growth = largest[0] / smallest[0]
    print(f"\npopulation grew {population_growth:.0f}x; SCADS latency grew {scads_growth:.2f}x, "
          f"the scan baseline grew {naive_growth:.2f}x")
    # Scale independence: SCADS latency stays roughly flat (well under 2x)
    # while the scan baseline grows substantially with the population.
    if smoke_mode():
        return  # smoke sweeps check the loop runs; growth ratios need full scale
    assert scads_growth < 2.0
    assert naive_growth > 4.0
    assert naive_growth > 3.0 * scads_growth
