"""Benchmark-suite configuration.

Makes the ``src`` layout importable without installation and provides a
shared helper for printing the tables each benchmark reproduces, so the
output of ``pytest benchmarks/ --benchmark-only`` reads like the paper's
evaluation section.
"""

from __future__ import annotations

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(__file__), "..", "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.experiments.reporting import print_table  # noqa: E402


@pytest.fixture()
def table_printer():
    """Fixture handing benchmarks the shared table printer."""
    return print_table
