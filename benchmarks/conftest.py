"""Benchmark-suite configuration.

Makes the ``src`` layout importable without installation and provides a
shared helper for printing the tables each benchmark reproduces, so the
output of ``pytest benchmarks/ --benchmark-only`` reads like the paper's
evaluation section.
"""

from __future__ import annotations

import os
import sys
from typing import Iterable, List, Sequence

import pytest

_SRC = os.path.join(os.path.dirname(__file__), "..", "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def print_table(title: str, header: Sequence[str], rows: Iterable[Sequence[object]]) -> None:
    """Print one experiment's result table in a fixed-width layout."""
    rows = [list(map(str, row)) for row in rows]
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(header))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))


@pytest.fixture()
def table_printer():
    """Fixture handing benchmarks the shared table printer."""
    return print_table
