"""Unit and integration tests for partitioning, replication, routing, the
cluster manager, durability, and failure injection."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.simulator import Simulator
from repro.storage.cluster import Cluster
from repro.storage.durability import DurabilityModel
from repro.storage.failure import FailureInjector
from repro.storage.partitioner import (
    ConsistentHashPartitioner,
    PartitionerError,
    RangePartitioner,
)
from repro.storage.records import KeyRange, prefix_range
from repro.storage.router import Router

pytestmark = pytest.mark.tier1


def make_cluster(groups=2, replication=3, seed=0, **kwargs):
    sim = Simulator(seed=seed)
    return Cluster(simulator=sim, replication_factor=replication,
                   initial_groups=groups, **kwargs)


# ------------------------------------------------------------------ partitioner


class TestConsistentHashPartitioner:
    def test_routes_all_tokens_to_registered_groups(self):
        partitioner = ConsistentHashPartitioner(["g1", "g2", "g3"])
        for i in range(200):
            assert partitioner.group_for_key("ns", (f"user{i}",)) in {"g1", "g2", "g3"}

    def test_distribution_is_roughly_even(self):
        partitioner = ConsistentHashPartitioner(["g1", "g2", "g3", "g4"], virtual_nodes=128)
        counts = {g: 0 for g in partitioner.groups()}
        for i in range(4000):
            counts[partitioner.group_for_key("ns", (f"user{i}",))] += 1
        assert min(counts.values()) > 500

    def test_adding_group_moves_only_some_keys(self):
        partitioner = ConsistentHashPartitioner(["g1", "g2", "g3"])
        before = {f"u{i}": partitioner.group_for_key("ns", (f"u{i}",)) for i in range(1000)}
        partitioner.add_group("g4")
        moved = sum(
            1 for key, group in before.items()
            if partitioner.group_for_key("ns", (key,)) != group
        )
        # Consistent hashing should move roughly 1/4 of the keys, not most of them.
        assert 0 < moved < 500

    def test_duplicate_group_rejected(self):
        partitioner = ConsistentHashPartitioner(["g1"])
        with pytest.raises(PartitionerError):
            partitioner.add_group("g1")

    def test_cannot_remove_last_group(self):
        partitioner = ConsistentHashPartitioner(["g1"])
        with pytest.raises(PartitionerError):
            partitioner.remove_group("g1")

    def test_prefix_range_routes_to_single_group(self):
        partitioner = ConsistentHashPartitioner(["g1", "g2", "g3"])
        key_range = prefix_range("ns", ("user42",))
        assert len(partitioner.groups_for_range(key_range)) == 1

    def test_unbounded_range_routes_everywhere(self):
        partitioner = ConsistentHashPartitioner(["g1", "g2"])
        assert set(partitioner.groups_for_range(KeyRange("ns"))) == {"g1", "g2"}

    def test_same_key_same_group_deterministic(self):
        a = ConsistentHashPartitioner(["g1", "g2", "g3"])
        b = ConsistentHashPartitioner(["g1", "g2", "g3"])
        for i in range(100):
            key = (f"user{i}",)
            assert a.group_for_key("ns", key) == b.group_for_key("ns", key)


class TestRangePartitioner:
    def test_single_group_owns_everything(self):
        partitioner = RangePartitioner(["g1"])
        assert partitioner.group_for_key("ns", ("anything",)) == "g1"

    def test_explicit_splits(self):
        partitioner = RangePartitioner(["g1", "g2"])
        partitioner.set_splits(["", "m"], ["g1", "g2"])
        assert partitioner.group_for_key("ns", ("alice",)) == "g1"
        assert partitioner.group_for_key("ns", ("zoe",)) == "g2"

    def test_splits_must_be_sorted_and_start_empty(self):
        partitioner = RangePartitioner(["g1", "g2"])
        with pytest.raises(PartitionerError):
            partitioner.set_splits(["m", ""], ["g1", "g2"])
        with pytest.raises(PartitionerError):
            partitioner.set_splits(["a", "m"], ["g1", "g2"])

    def test_rebalance_evenly_with_samples(self):
        partitioner = RangePartitioner(["g1", "g2"])
        partitioner.rebalance_evenly([f"u{i:03d}" for i in range(100)])
        owners = {partitioner.group_for_key("ns", (f"u{i:03d}",)) for i in range(100)}
        assert owners == {"g1", "g2"}

    def test_range_spanning_splits_contacts_both_groups(self):
        partitioner = RangePartitioner(["g1", "g2"])
        partitioner.set_splits(["", "m"], ["g1", "g2"])
        key_range = KeyRange("ns", start=("a",), end=("z",))
        assert set(partitioner.groups_for_range(key_range)) == {"g1", "g2"}


# -------------------------------------------------------------------- cluster


class TestCluster:
    def test_initial_topology(self):
        cluster = make_cluster(groups=2, replication=3)
        assert cluster.group_count() == 2
        assert cluster.node_count() == 6
        for group in cluster.groups.values():
            assert group.replication_factor == 3

    def test_add_replica_group_grows_cluster(self):
        cluster = make_cluster(groups=2, replication=3)
        cluster.add_replica_group()
        assert cluster.group_count() == 3
        assert cluster.node_count() == 9

    def test_remove_replica_group_shrinks_cluster(self):
        cluster = make_cluster(groups=3, replication=2)
        victim = list(cluster.groups)[-1]
        cluster.remove_replica_group(victim)
        assert cluster.group_count() == 2
        assert victim not in cluster.groups

    def test_cannot_remove_last_group(self):
        cluster = make_cluster(groups=1)
        with pytest.raises(ValueError):
            cluster.remove_replica_group(list(cluster.groups)[0])

    def test_data_survives_scale_up(self):
        cluster = make_cluster(groups=1, replication=2)
        router = Router(cluster)
        keys = [(f"user{i}",) for i in range(200)]
        for key in keys:
            router.write("ns", key, {"v": key[0]})
        cluster.add_replica_group()
        cluster.add_replica_group()
        for key in keys:
            result = router.read("ns", key, from_primary=True)
            assert result.success and result.value is not None, key

    def test_data_survives_scale_down(self):
        cluster = make_cluster(groups=3, replication=2)
        router = Router(cluster)
        keys = [(f"user{i}",) for i in range(200)]
        for key in keys:
            router.write("ns", key, {"v": key[0]})
        cluster.sim.run_until(cluster.sim.now + 5.0)  # let replication apply
        victim = list(cluster.groups)[-1]
        cluster.remove_replica_group(victim)
        for key in keys:
            result = router.read("ns", key, from_primary=True)
            assert result.success and result.value is not None, key

    def test_rebalance_moves_bounded_fraction(self):
        cluster = make_cluster(groups=2, replication=1)
        router = Router(cluster)
        for i in range(300):
            router.write("ns", (f"user{i}",), {"v": i})
        moved_before = cluster.keys_moved_total
        cluster.add_replica_group()
        moved = cluster.keys_moved_total - moved_before
        # Consistent hashing: roughly 1/3 of 300 keys move, certainly not all.
        assert 0 < moved < 250

    def test_remove_down_to_last_group_keeps_all_data(self):
        cluster = make_cluster(groups=3, replication=2)
        router = Router(cluster)
        keys = [(f"user{i}",) for i in range(120)]
        for key in keys:
            router.write("ns", key, {"v": key[0]})
        cluster.sim.run_until(cluster.sim.now + 5.0)
        while cluster.group_count() > 1:
            cluster.remove_replica_group(list(cluster.groups)[-1])
        with pytest.raises(ValueError):
            cluster.remove_replica_group(list(cluster.groups)[0])
        for key in keys:
            result = router.read("ns", key, from_primary=True)
            assert result.success and result.value is not None, key

    def test_remove_group_with_outstanding_quorum_write_and_replication(self):
        cluster = make_cluster(groups=2, replication=3)
        router = Router(cluster)
        victim_id = list(cluster.groups)[-1]
        victim = cluster.groups[victim_id]
        # Find keys owned by the victim and write them with a quorum; the
        # remaining (lazy) propagations to the victim's replicas are still
        # outstanding when the group is decommissioned.
        owned = [(f"user{i}",) for i in range(200)
                 if cluster.partitioner.group_for_key("ns", (f"user{i}",)) == victim_id]
        assert owned, "expected the victim group to own some keys"
        for key in owned:
            result = router.write("ns", key, {"v": key[0]}, write_quorum=2)
            assert result.success
        assert cluster.replication.pending_count() > 0
        cluster.remove_replica_group(victim_id)
        assert all(node_id not in cluster.nodes for node_id in victim.node_ids)
        # Outstanding propagations to deleted nodes must drain without error.
        cluster.sim.run_until(cluster.sim.now + 150.0)
        for key in owned:
            result = router.read("ns", key, from_primary=True)
            assert result.success and result.value is not None, key

    def test_remove_group_keys_moved_accounting_is_exact(self):
        cluster = make_cluster(groups=2, replication=2)
        router = Router(cluster)
        for i in range(150):
            router.write("ns", (f"user{i}",), {"v": i})
        cluster.sim.run_until(cluster.sim.now + 5.0)
        victim_id = list(cluster.groups)[-1]
        victim_primary_keys = cluster.nodes[cluster.groups[victim_id].primary].key_count()
        moved_before = cluster.keys_moved_total
        cluster.remove_replica_group(victim_id)
        assert cluster.keys_moved_total - moved_before == victim_primary_keys
        # Accounting is cumulative across scale events.
        moved_before = cluster.keys_moved_total
        cluster.add_replica_group()
        assert cluster.keys_moved_total >= moved_before

    def test_remove_migration_source_mid_flight_does_not_crash_completion(self):
        sim = Simulator(seed=0)
        cluster = Cluster(simulator=sim, replication_factor=2, initial_groups=3,
                          partitioner_kind="range",
                          movement_rate_keys_per_sec=10.0)
        router = Router(cluster)
        for i in range(60):
            router.write("ns", (f"u{i:03d}",), {"v": i})
        sim.run_until(sim.now + 5.0)
        cluster.split_partition("u030")
        record = cluster.migrate_partition("u030", "group-1")
        assert record is not None and not record.completed
        cluster.remove_replica_group("group-0")  # the migration source
        sim.run_until(record.end_time + 150.0)
        assert record.completed
        for i in range(60):
            result = router.read("ns", (f"u{i:03d}",), from_primary=True)
            assert result.success and result.value is not None, i

    def test_stats_reflect_capacity(self):
        cluster = make_cluster(groups=2, replication=2, node_capacity_ops=500.0)
        stats = cluster.stats()
        assert stats.node_count == 4
        assert stats.total_capacity_ops == pytest.approx(2000.0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            make_cluster(groups=0)
        with pytest.raises(ValueError):
            make_cluster(replication=0)


# --------------------------------------------------------------------- router


class TestRouter:
    def _setup(self, **kwargs):
        cluster = make_cluster(**kwargs)
        return cluster, Router(cluster)

    def test_write_then_primary_read(self):
        _, router = self._setup()
        write = router.write("ns", ("k",), {"a": 1})
        assert write.success
        read = router.read("ns", ("k",), from_primary=True)
        assert read.success and read.value.value == {"a": 1}

    def test_versions_increment_on_overwrite(self):
        _, router = self._setup()
        first = router.write("ns", ("k",), {"a": 1})
        second = router.write("ns", ("k",), {"a": 2})
        assert second.value.version == first.value.version + 1

    def test_replica_read_catches_up_after_replication(self):
        cluster, router = self._setup(groups=1, replication=3)
        router.write("ns", ("k",), {"a": 1})
        cluster.sim.run_until(5.0)
        # After replication has applied, any replica should serve the value.
        for _ in range(10):
            result = router.read("ns", ("k",))
            assert result.success and result.value is not None

    def test_delete_is_visible(self):
        cluster, router = self._setup()
        router.write("ns", ("k",), {"a": 1})
        router.delete("ns", ("k",))
        result = router.read("ns", ("k",), from_primary=True)
        assert result.success and result.value is None

    def test_delete_then_recreate_at_same_timestamp_converges_everywhere(self):
        # A delete and a re-create issued at the same simulated time must not
        # tie under last-write-wins: the re-create's version advances past the
        # tombstone's, so every replica converges to the live row no matter
        # which propagation arrives last.
        cluster, router = self._setup(groups=1, replication=3)
        router.write("ns", ("k",), {"a": 1})
        router.delete("ns", ("k",))
        recreated = router.write("ns", ("k",), {"a": 2})
        assert recreated.value.version > 1
        cluster.sim.run_until(cluster.sim.now + 5.0)
        for node in cluster.nodes.values():
            value = node.peek("ns", ("k",))
            assert value is not None and value.value == {"a": 2}, node.node_id

    def test_quorum_write_fails_when_replicas_unreachable(self):
        cluster, router = self._setup(groups=1, replication=3)
        group = list(cluster.groups.values())[0]
        for node_id in group.replicas:
            cluster.nodes[node_id].crash()
        result = router.write("ns", ("k",), {"a": 1}, write_quorum=3)
        assert not result.success

    def test_quorum_read_returns_newest(self):
        cluster, router = self._setup(groups=1, replication=3)
        router.write("ns", ("k",), {"a": 1})
        router.write("ns", ("k",), {"a": 2})
        cluster.sim.run_until(5.0)
        result = router.read("ns", ("k",), read_quorum=2)
        assert result.success and result.value.value == {"a": 2}

    def test_read_fails_when_all_replicas_down(self):
        cluster, router = self._setup(groups=1, replication=2)
        router.write("ns", ("k",), {"a": 1})
        for node in cluster.nodes.values():
            node.crash()
        result = router.read("ns", ("k",))
        assert not result.success

    def test_range_read_collects_prefix(self):
        cluster, router = self._setup(groups=2, replication=2)
        for i in range(5):
            router.write("idx", ("alice", f"0{i}"), {"i": i})
        cluster.sim.run_until(5.0)
        result = router.read_range(prefix_range("idx", ("alice",)))
        assert result.success
        assert len(result.rows) == 5

    def test_range_read_reverse_with_limit(self):
        cluster, router = self._setup(groups=1, replication=1)
        for i in range(5):
            router.write("idx", ("alice", i), {"i": i})
        result = router.read_range(prefix_range("idx", ("alice",)), limit=2, reverse=True)
        assert [key[1] for key, _ in result.rows] == [4, 3]

    def test_op_counts_track_operations(self):
        _, router = self._setup()
        router.write("ns", ("k",), {"a": 1})
        router.read("ns", ("k",))
        counts = router.op_counts()
        assert counts["write"] == 1
        assert counts["read"] == 1


# ----------------------------------------------------------------- replication


class TestReplication:
    def test_lag_is_recorded_after_propagation(self):
        cluster = make_cluster(groups=1, replication=3)
        router = Router(cluster)
        router.write("ns", ("k",), {"a": 1})
        cluster.sim.run_until(5.0)
        lags = cluster.replication.completed_lags()
        assert len(lags) == 2  # two replicas
        assert all(lag > 0 for lag in lags)
        assert cluster.replication.pending_count() == 0

    def test_pending_count_before_time_advances(self):
        cluster = make_cluster(groups=1, replication=3)
        router = Router(cluster)
        router.write("ns", ("k",), {"a": 1})
        assert cluster.replication.pending_count() == 2

    def test_propagation_retries_after_partition_heals(self):
        cluster = make_cluster(groups=1, replication=2)
        router = Router(cluster)
        group = list(cluster.groups.values())[0]
        replica = group.replicas[0]
        partition = cluster.network.partition({group.primary}, {replica})
        router.write("ns", ("k",), {"a": 1})
        cluster.sim.run_until(2.0)
        assert cluster.nodes[replica].peek("ns", ("k",)) is None
        cluster.network.heal(partition)
        cluster.sim.run_until(10.0)
        assert cluster.nodes[replica].peek("ns", ("k",)) is not None

    def test_lag_listener_invoked(self):
        cluster = make_cluster(groups=1, replication=2)
        router = Router(cluster)
        seen = []
        cluster.replication.add_lag_listener(lambda record: seen.append(record.lag))
        router.write("ns", ("k",), {"a": 1})
        cluster.sim.run_until(5.0)
        assert len(seen) == 1


# ------------------------------------------------------------------ durability


class TestDurabilityModel:
    def test_more_replicas_more_durable(self):
        model = DurabilityModel()
        assert model.durability(3) > model.durability(2) > model.durability(1)

    def test_required_replication_factor_meets_target(self):
        model = DurabilityModel()
        factor = model.required_replication_factor(0.99999)
        assert model.durability(factor) >= 0.99999
        if factor > 1:
            assert model.durability(factor - 1) < 0.99999

    def test_relaxed_durability_saves_replicas(self):
        model = DurabilityModel()
        strict = model.required_replication_factor(0.9999999)
        relaxed = model.required_replication_factor(0.99)
        assert relaxed <= strict

    def test_unreachable_target_raises(self):
        model = DurabilityModel(node_mttf_hours=1.0, re_replication_hours=10.0)
        with pytest.raises(ValueError):
            model.required_replication_factor(0.9999999999, max_factor=3)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DurabilityModel(node_mttf_hours=0)
        with pytest.raises(ValueError):
            DurabilityModel().loss_probability(0)
        with pytest.raises(ValueError):
            DurabilityModel().required_replication_factor(1.5)

    @pytest.mark.property
    @given(factor=st.integers(min_value=1, max_value=6))
    @settings(max_examples=20, deadline=None)
    def test_loss_probability_in_unit_interval(self, factor):
        probability = DurabilityModel().loss_probability(factor)
        assert 0.0 <= probability <= 1.0


# -------------------------------------------------------------------- failures


class TestFailureInjector:
    def test_crash_and_recover(self):
        cluster = make_cluster(groups=1, replication=2)
        injector = FailureInjector(cluster)
        node_id = list(cluster.nodes)[0]
        injector.crash_node(node_id, at=10.0, duration=20.0)
        cluster.sim.run_until(15.0)
        assert not cluster.nodes[node_id].alive
        cluster.sim.run_until(40.0)
        assert cluster.nodes[node_id].alive

    def test_crash_unknown_node_raises(self):
        cluster = make_cluster()
        with pytest.raises(KeyError):
            FailureInjector(cluster).crash_node("nope", at=1.0)

    def test_crash_random_nodes_clamped_to_alive_at_fire_time(self):
        # Over-asking is not an error: the fault crashes whatever is alive
        # when it fires (an outage cannot kill machines that do not exist).
        cluster = make_cluster(groups=1, replication=2)
        injector = FailureInjector(cluster)
        injector.crash_random_nodes(10, at=1.0, duration=5.0)
        cluster.sim.run_until(2.0)
        assert all(not node.alive for node in cluster.nodes.values())
        cluster.sim.run_until(10.0)
        assert all(node.alive for node in cluster.nodes.values())

    def test_crash_random_nodes_picks_victims_at_fire_time(self):
        # Regression: victims are resolved when the fault *fires*, so a node
        # rented between scheduling and firing is eligible too.
        cluster = make_cluster(groups=1, replication=2)
        injector = FailureInjector(cluster)
        injector.crash_random_nodes(10, at=5.0, duration=5.0)
        late_ids = []
        group_id = next(iter(cluster.groups))
        cluster.sim.schedule_at(
            2.0, lambda: late_ids.append(cluster.add_surge_replica(group_id)))
        cluster.sim.run_until(6.0)
        assert late_ids and not cluster.nodes[late_ids[0]].alive

    def test_partition_groups_blocks_replication(self):
        cluster = make_cluster(groups=2, replication=1)
        injector = FailureInjector(cluster)
        groups = list(cluster.groups)
        injector.partition_groups({groups[0]}, {groups[1]}, at=5.0, duration=10.0,
                                  isolate_clients_from="b")
        cluster.sim.run_until(6.0)
        node_a = cluster.groups[groups[0]].primary
        node_b = cluster.groups[groups[1]].primary
        assert not cluster.network.is_reachable(node_a, node_b)
        assert not cluster.network.is_reachable("client", node_b)
        cluster.sim.run_until(20.0)
        assert cluster.network.is_reachable(node_a, node_b)

    def test_congestion_fault_applies_and_clears(self):
        cluster = make_cluster(groups=1, replication=2)
        injector = FailureInjector(cluster)
        injector.congest_link("client", "node-0@group-0", factor=50.0, at=1.0, duration=5.0)
        cluster.sim.run_until(2.0)
        congested = np.mean([cluster.network.delay("client", "node-0@group-0") for _ in range(100)])
        cluster.sim.run_until(10.0)
        cleared = np.mean([cluster.network.delay("client", "node-0@group-0") for _ in range(100)])
        assert congested > 5.0 * cleared

    def test_fault_records_kept(self):
        cluster = make_cluster(groups=1, replication=2)
        injector = FailureInjector(cluster)
        injector.crash_node(list(cluster.nodes)[0], at=1.0, duration=2.0)
        assert len(injector.faults()) == 1
