"""Tests for targeted migration, dual-routing, and the hot-partition rebalancer.

Covers the live-migration mechanics (split/merge/migrate with in-flight
windows and deferred reclamation), the router's dual-routing guarantees while
a migration is in flight — including under node failures injected
mid-migration — session guarantees executed *during* a migration, and the
rebalancer's detection/decision logic plus its REPARTITION wiring into the
provisioning controller.
"""

from __future__ import annotations

import pytest

from repro.core.consistency.spec import SessionGuarantee
from repro.core.engine import Scads
from repro.core.provisioning.monitor import WindowObservation
from repro.core.provisioning.planner import CapacityPlan
from repro.core.schema import EntitySchema, Field
from repro.metrics.sla import SLAReport
from repro.ml.features import WorkloadFeatures
from repro.sim.simulator import Simulator
from repro.storage.cluster import Cluster
from repro.storage.rebalancer import PartitionLoadTracker, RebalanceAction, Rebalancer
from repro.storage.router import Router

pytestmark = pytest.mark.tier1


def make_range_cluster(groups=2, replication=2, seed=0, rate=100.0,
                       node_capacity_ops=1000.0):
    sim = Simulator(seed=seed)
    cluster = Cluster(simulator=sim, replication_factor=replication,
                      initial_groups=groups, partitioner_kind="range",
                      movement_rate_keys_per_sec=rate,
                      node_capacity_ops=node_capacity_ops)
    return cluster, Router(cluster)


def load_keys(router, count=100, namespace="ns"):
    keys = [(f"u{i:03d}",) for i in range(count)]
    for key in keys:
        router.write(namespace, key, {"v": key[0]})
    return keys


# ------------------------------------------------------------- migration core


class TestTargetedMigration:
    def test_split_is_free_and_migrate_moves_only_the_range(self):
        cluster, router = make_range_cluster()
        load_keys(router, 100)
        cluster.sim.run_until(cluster.sim.now + 5.0)
        moved_before = cluster.keys_moved_total
        cluster.split_partition("u050")
        assert cluster.keys_moved_total == moved_before, "splits must move nothing"
        record = cluster.migrate_partition("u050", "group-1")
        assert record is not None
        assert record.keys_moved == 50
        assert cluster.keys_moved_total == moved_before + 50
        assert record.duration > 0

    def test_source_copies_reclaimed_only_at_completion(self):
        cluster, router = make_range_cluster(rate=10.0)  # long in-flight window
        load_keys(router, 40)
        cluster.sim.run_until(cluster.sim.now + 5.0)
        cluster.split_partition("u020")
        record = cluster.migrate_partition("u020", "group-1")
        source_primary = cluster.nodes[cluster.groups["group-0"].primary]
        assert source_primary.key_count() == 40, "source keeps copies in flight"
        assert cluster.active_migrations() == [record]
        cluster.sim.run_until(record.end_time + 1.0)
        assert record.completed
        assert not cluster.active_migrations()
        assert source_primary.key_count() == 20, "source reclaimed at completion"

    def test_reads_and_writes_during_migration_are_never_dropped(self):
        cluster, router = make_range_cluster(rate=10.0)
        load_keys(router, 40)
        cluster.sim.run_until(cluster.sim.now + 5.0)
        cluster.split_partition("u020")
        cluster.migrate_partition("u020", "group-1")
        read = router.read("ns", ("u030",), from_primary=True)
        assert read.success and read.value.value == {"v": "u030"}
        write = router.write("ns", ("u030",), {"v": "new"})
        assert write.success
        cluster.sim.run_until(cluster.sim.now + 30.0)
        after = router.read("ns", ("u030",), from_primary=True)
        assert after.success and after.value.value == {"v": "new"}

    def test_reads_fall_back_to_source_when_target_group_fails_mid_migration(self):
        cluster, router = make_range_cluster(rate=10.0)
        load_keys(router, 40)
        cluster.sim.run_until(cluster.sim.now + 5.0)
        cluster.split_partition("u020")
        cluster.migrate_partition("u020", "group-1")
        for node_id in cluster.groups["group-1"].node_ids:
            cluster.nodes[node_id].crash()
        read = router.read("ns", ("u030",))
        assert read.success, "dual-routing must serve from the source group"
        assert read.node_id.endswith("group-0")

    def test_writes_fall_back_to_source_when_target_primary_is_down(self):
        cluster, router = make_range_cluster(rate=10.0)
        load_keys(router, 40)
        cluster.sim.run_until(cluster.sim.now + 5.0)
        cluster.split_partition("u020")
        record = cluster.migrate_partition("u020", "group-1")
        cluster.nodes[cluster.groups["group-1"].primary].crash()
        write = router.write("ns", ("u030",), {"v": "fallback"})
        assert write.success
        assert write.node_id.endswith("group-0")
        cluster.nodes[cluster.groups["group-1"].primary].recover()
        cluster.sim.run_until(record.end_time + 10.0)
        read = router.read("ns", ("u030",), from_primary=True)
        assert read.success and read.value.value == {"v": "fallback"}, \
            "a fallback write must survive source reclamation"

    def test_range_reads_fall_back_to_source_for_in_flight_partition(self):
        cluster, router = make_range_cluster(rate=10.0)
        for i in range(5):
            router.write("ns", ("u001", i), {"i": i})
        cluster.sim.run_until(cluster.sim.now + 5.0)
        cluster.split_partition("u001")
        cluster.migrate_partition("u001", "group-1")
        for node_id in cluster.groups["group-1"].node_ids:
            cluster.nodes[node_id].crash()
        from repro.storage.records import prefix_range
        result = router.read_range(prefix_range("ns", ("u001",)))
        assert result.success and len(result.rows) == 5

    def test_source_crash_mid_migration_leaves_data_correct(self):
        cluster, router = make_range_cluster(rate=10.0)
        load_keys(router, 40)
        cluster.sim.run_until(cluster.sim.now + 5.0)
        cluster.split_partition("u020")
        record = cluster.migrate_partition("u020", "group-1")
        for node_id in cluster.groups["group-0"].node_ids:
            cluster.nodes[node_id].crash()
        cluster.sim.run_until(record.end_time + 1.0)  # completion skips dead source
        assert record.completed
        for i in range(20, 40):
            read = router.read("ns", (f"u{i:03d}",), from_primary=True)
            assert read.success and read.value is not None

    def test_ping_pong_migration_never_loses_keys(self):
        # A partition migrated away and back while the first transfer is
        # still in flight: the first completion must not reclaim keys the
        # source meanwhile re-owns.
        cluster, router = make_range_cluster(rate=10.0)
        load_keys(router, 40)
        cluster.sim.run_until(cluster.sim.now + 5.0)
        cluster.split_partition("u020")
        away = cluster.migrate_partition("u020", "group-1")
        back = cluster.migrate_partition("u020", "group-0")
        assert back is not None and not away.completed
        cluster.sim.run_until(max(away.end_time, back.end_time) + 30.0)
        for i in range(20, 40):
            read = router.read("ns", (f"u{i:03d}",), from_primary=True)
            assert read.success and read.value is not None, i

    def test_fallback_write_preserves_version_order(self):
        cluster, router = make_range_cluster(rate=10.0)
        for _ in range(3):
            last = router.write("ns", ("u030",), {"v": "x"})
        assert last.value.version == 3
        cluster.sim.run_until(cluster.sim.now + 5.0)
        cluster.split_partition("u020")
        cluster.migrate_partition("u020", "group-1")
        cluster.nodes[cluster.groups["group-1"].primary].crash()
        fallback = router.write("ns", ("u030",), {"v": "fallback"})
        assert fallback.success
        assert fallback.value.version == 4, \
            "a fallback write must continue the version sequence, not reset it"

    def test_chained_migrations_dual_route_to_every_source(self):
        sim = Simulator(seed=2)
        cluster = Cluster(simulator=sim, replication_factor=2, initial_groups=3,
                          partitioner_kind="range", movement_rate_keys_per_sec=1.0)
        router = Router(cluster)
        load_keys(router, 30)
        sim.run_until(sim.now + 5.0)
        cluster.split_partition("u010")
        first = cluster.migrate_partition("u010", "group-1")
        second = cluster.migrate_partition("u010", "group-2")
        assert first is not None and second is not None
        assert not first.completed and not second.completed
        # The newest owner (group-2) fails entirely: reads must fall back
        # through the chain of sources that still hold copies.
        for node_id in cluster.groups["group-2"].node_ids:
            cluster.nodes[node_id].crash()
        read = router.read("ns", ("u015",))
        assert read.success and read.value is not None
        write = router.write("ns", ("u016",), {"v": "chained"})
        assert write.success
        for node_id in cluster.groups["group-2"].node_ids:
            cluster.nodes[node_id].recover()
        sim.run_until(max(first.end_time, second.end_time) + 120.0)
        final = router.read("ns", ("u016",), from_primary=True)
        assert final.success and final.value.value == {"v": "chained"}

    def test_target_outage_longer_than_retry_budget_loses_nothing(self):
        # The catch-up deliveries to a downed target retry for ~100 simulated
        # seconds and then give up; reclamation must wait for the target to
        # come back (and refresh its copies) rather than delete the last ones.
        cluster, router = make_range_cluster(rate=10.0)
        load_keys(router, 40)
        cluster.sim.run_until(cluster.sim.now + 5.0)
        cluster.split_partition("u020")
        record = cluster.migrate_partition("u020", "group-1")
        for node_id in cluster.groups["group-1"].node_ids:
            cluster.nodes[node_id].crash()
        cluster.sim.run_until(record.end_time + 200.0)  # outage outlives retries
        assert not record.completed, "completion must wait for the target"
        for node_id in cluster.groups["group-1"].node_ids:
            cluster.nodes[node_id].recover()
        cluster.sim.run_until(cluster.sim.now + 30.0)
        assert record.completed
        for i in range(20, 40):
            key = (f"u{i:03d}",)
            read = router.read("ns", key, from_primary=True)
            assert read.success and read.value is not None, key
            for node_id in cluster.groups["group-1"].node_ids:
                assert cluster.nodes[node_id].peek("ns", key) is not None, \
                    (node_id, key)

    def test_migrate_with_dead_source_primary_is_refused(self):
        # Reassigning ownership when no data can move would make the range
        # unreachable; the migration must be refused instead.
        cluster, router = make_range_cluster()
        load_keys(router, 40)
        cluster.sim.run_until(cluster.sim.now + 5.0)
        cluster.split_partition("u020")
        cluster.nodes[cluster.groups["group-0"].primary].crash()
        assert cluster.migrate_partition("u020", "group-1") is None
        assert cluster.partitioner.partition_for_token("u020").owner == "group-0"
        read = router.read("ns", ("u030",))
        assert read.success and read.value is not None, \
            "the surviving replica must keep serving the un-migrated range"

    def test_shift_weight_conserves_total_ring_weight(self):
        sim = Simulator(seed=4)
        cluster = Cluster(simulator=sim, replication_factor=2, initial_groups=3,
                          partitioner_kind="hash")
        for _ in range(5):
            cluster.shift_weight("group-0", "group-1", step=0.25)
        partitioner = cluster.partitioner
        total = sum(partitioner.weight_of(g) for g in partitioner.groups())
        assert total == pytest.approx(3.0), "weight must be conserved"
        assert partitioner.weight_of("group-0") == pytest.approx(0.25)
        assert partitioner.weight_of("group-2") == pytest.approx(1.0), \
            "an uninvolved group must not lose ring share"
        # A donor at the floor makes further shifts a no-op.
        assert cluster.shift_weight("group-0", "group-1", step=0.25) == []

    def test_merge_requires_migration_only_across_owners(self):
        cluster, router = make_range_cluster()
        load_keys(router, 60)
        cluster.sim.run_until(cluster.sim.now + 5.0)
        cluster.split_partition("u020")
        cluster.split_partition("u040")
        # Merging ['', 'u020') with its right neighbour ['u020', 'u040').
        assert cluster.merge_partitions("u000") == 0, "same-owner merge is free"
        record = cluster.migrate_partition("u040", "group-1")
        cluster.sim.run_until(record.end_time + 1.0)
        moved = cluster.merge_partitions("u000")
        assert moved == 20, "cross-owner merge must move the right-hand keys"
        cluster.sim.run_until(cluster.sim.now + 30.0)
        assert len(cluster.partitioner.partitions()) == 1

    def test_shift_weight_moves_bounded_incremental_subset(self):
        sim = Simulator(seed=1)
        cluster = Cluster(simulator=sim, replication_factor=2, initial_groups=3,
                          partitioner_kind="hash")
        router = Router(cluster)
        load_keys(router, 200)
        sim.run_until(sim.now + 5.0)
        total = cluster.total_keys()
        moved_before = cluster.keys_moved_total
        records = cluster.shift_weight("group-0", "group-1", step=0.5)
        moved = cluster.keys_moved_total - moved_before
        assert 0 < moved < total / 2, "weight shift must move a bounded subset"
        for record in records:
            cluster.sim.run_until(record.end_time + 1.0)
        for i in range(200):
            read = router.read("ns", (f"u{i:03d}",), from_primary=True)
            assert read.success and read.value is not None


# -------------------------------------------- session guarantees under chaos


def build_session_engine():
    engine = Scads(seed=11, autoscale=False, initial_groups=2,
                   partitioner_kind="range", replication_factor=2)
    engine.register_entity(EntitySchema(
        "profiles", key_fields=[Field("user_id")], value_fields=[Field("bio")],
    ))
    tokens = [f"u{i:03d}" for i in range(40)]
    engine.cluster.partitioner.set_splits(["", tokens[20]], ["group-0", "group-1"])
    for token in tokens:
        engine.put("profiles", {"user_id": token, "bio": "original"})
    engine.settle(2.0)
    engine.cluster.movement_rate_keys_per_sec = 1.0  # long in-flight windows
    return engine


class TestSessionGuaranteesDuringMigration:
    def test_read_your_writes_holds_during_in_flight_migration(self):
        engine = build_session_engine()
        engine.open_session("alice", SessionGuarantee(read_your_writes=True))
        engine.cluster.split_partition("u010")
        record = engine.cluster.migrate_partition("u010", "group-1")
        assert record is not None and not record.completed
        write = engine.put("profiles", {"user_id": "u012", "bio": "mid-flight"},
                           session_id="alice")
        assert write.success
        read = engine.get("profiles", ("u012",), session_id="alice")
        assert read.success and read.row["bio"] == "mid-flight"

    def test_monotonic_reads_hold_during_in_flight_migration(self):
        engine = build_session_engine()
        engine.open_session(
            "bob", SessionGuarantee(read_your_writes=True, monotonic_reads=True))
        engine.put("profiles", {"user_id": "u015", "bio": "v2"}, session_id="bob")
        first = engine.get("profiles", ("u015",), session_id="bob")
        assert first.success and first.row["bio"] == "v2"
        engine.cluster.split_partition("u010")
        engine.cluster.migrate_partition("u010", "group-1")
        again = engine.get("profiles", ("u015",), session_id="bob")
        assert again.success and again.row["bio"] == "v2", \
            "a session must never observe an older version across a migration"

    def test_session_reads_survive_failure_injected_mid_migration(self):
        engine = build_session_engine()
        engine.open_session("carol", SessionGuarantee(read_your_writes=True))
        engine.put("profiles", {"user_id": "u005", "bio": "pre-chaos"},
                   session_id="carol")
        engine.settle(2.0)
        engine.cluster.split_partition("u010")
        record = engine.cluster.migrate_partition("u010", "group-1")
        assert record is not None and not record.completed
        # Kill a target replica mid-flight; the primary and the source group
        # both still hold the data, so the session read must succeed.
        target = engine.cluster.groups["group-1"]
        engine.cluster.nodes[target.node_ids[-1]].crash()
        read = engine.get("profiles", ("u005",), session_id="carol")
        assert read.success and read.row["bio"] == "pre-chaos"
        engine.cluster.nodes[target.node_ids[-1]].recover()
        engine.run_for(record.end_time - engine.now + 5.0)
        after = engine.get("profiles", ("u005",), session_id="carol")
        assert after.success and after.row["bio"] == "pre-chaos"


# ------------------------------------------------------ load tracker & rebalancer


class TestPartitionLoadTracker:
    def test_counts_decay_with_half_life(self):
        tracker = PartitionLoadTracker(half_life=10.0)
        for _ in range(100):
            tracker.note("hot", False, now=0.0)
        assert tracker.counts()["hot"] == pytest.approx(100.0)
        tracker.note("hot", False, now=10.0)
        assert tracker.counts()["hot"] == pytest.approx(51.0, rel=0.05)

    def test_sketch_size_stays_bounded(self):
        tracker = PartitionLoadTracker(max_tokens=64, half_life=1e9)
        for i in range(1000):
            tracker.note(f"t{i:04d}", False, now=0.0)
        assert len(tracker.counts()) <= 64

    def test_split_point_halves_tracked_load(self):
        tracker = PartitionLoadTracker(half_life=1e9)
        for token, count in (("a", 10), ("b", 40), ("c", 40), ("d", 10)):
            for _ in range(count):
                tracker.note(token, False, now=0.0)
        split = tracker.split_point("", None)
        assert split == "c"
        left = tracker.load_between("", split)
        right = tracker.load_between(split, None)
        assert left == 50 and right == 50

    def test_split_point_needs_two_tracked_tokens(self):
        tracker = PartitionLoadTracker()
        tracker.note("only", False, now=0.0)
        assert tracker.split_point("", None) is None

    def test_rate_estimate_matches_offered_rate(self):
        tracker = PartitionLoadTracker(half_life=20.0)
        now = 0.0
        while now < 200.0:  # 50 ops/sec for 200 seconds
            tracker.note(f"t{int(now) % 7}", False, now=now)
            now += 0.02
        assert tracker.rate_estimate() == pytest.approx(50.0, rel=0.15)


def skewed_cluster():
    """Two groups, all keys and all tracked load on group-0."""
    cluster, router = make_range_cluster(groups=2, replication=2, seed=3,
                                         node_capacity_ops=30.0)
    load_keys(router, 40)
    cluster.sim.run_until(cluster.sim.now + 5.0)
    rebalancer = Rebalancer(cluster, hot_utilisation=0.5, cold_utilisation=0.3,
                            receiver_target_utilisation=0.5,
                            merge_load_fraction=0.1)
    tracker = rebalancer.tracker
    # Synthesise a sustained skewed load profile: u005 very hot, the rest of
    # group-0's range warm, group-1 idle.
    now = cluster.sim.now
    for _ in range(3000):
        tracker.note("u005", False, now)
    for i in range(40):
        for _ in range(25):
            tracker.note(f"u{i:03d}", False, now)
    for node_id in cluster.groups["group-0"].node_ids:
        node = cluster.nodes[node_id]
        node._ewma_interarrival = 1.0 / 60.0  # looks busy
        node._last_arrival = now
        node._latency.set_utilisation(1.0)
    return cluster, rebalancer


class TestRebalancer:
    def test_find_imbalance_spots_hot_and_cold_groups(self):
        cluster, rebalancer = skewed_cluster()
        assert rebalancer.find_imbalance() == ("group-0", "group-1")

    def test_rebalance_once_splits_at_load_median_and_migrates(self):
        cluster, rebalancer = skewed_cluster()
        action = rebalancer.rebalance_once()
        assert action is not None
        assert action.kind in ("split_migrate", "migrate")
        assert 0 < action.keys_moved < 40, "must move a strict subset of keys"
        owners = {p.owner for p in cluster.partitioner.partitions()}
        assert owners == {"group-0", "group-1"}

    def test_cooldown_blocks_immediate_reaction(self):
        cluster, rebalancer = skewed_cluster()
        rebalancer.cooldown = 120.0
        assert rebalancer.rebalance_once() is not None
        assert rebalancer.in_cooldown()
        assert rebalancer.rebalance_once() is None

    def test_merge_cold_partitions_reclaims_quiet_splits(self):
        cluster, rebalancer = skewed_cluster()
        cluster.split_partition("u030")
        cluster.split_partition("u035")
        # Tokens past u030 carry no tracked load relative to the hot head, so
        # the same-owner pair (u030..u035, u035..) is merge-eligible.
        action = rebalancer.merge_cold_partitions()
        assert action is not None and action.kind == "merge"
        assert action.keys_moved == 0


# ------------------------------------------------- controller REPARTITION branch


def observation(violated: bool) -> WindowObservation:
    report = SLAReport(op_type="read", target_percentile=99.0, target_latency=0.15,
                       observed_fraction_within=0.5 if violated else 1.0,
                       observed_percentile_latency=1.0 if violated else 0.01,
                       request_count=100, satisfied=not violated)
    features = WorkloadFeatures(request_rate=100.0, write_fraction=0.1,
                                node_count=4.0, per_node_rate=25.0,
                                mean_utilisation=0.2, max_utilisation=0.9,
                                pending_updates=0.0)
    return WindowObservation(time=0.0, duration=30.0, request_rate=100.0,
                             write_fraction=0.1, features=features,
                             sla_reports={"read": report})


def plan(candidate: bool, target_nodes: int = 4) -> CapacityPlan:
    return CapacityPlan(target_nodes=target_nodes, forecast_rate=100.0,
                        latency_required_nodes=target_nodes,
                        utilisation_required_nodes=2, staleness_pressure=False,
                        reason="test", repartition_candidate=candidate)


class TestControllerRepartitionBranch:
    def make_engine(self):
        engine = Scads(seed=5, autoscale=False, initial_groups=2,
                       partitioner_kind="range", repartition=True,
                       replication_factor=2)
        return engine

    def test_hotspot_violation_prefers_repartition_over_renting(self):
        engine = self.make_engine()
        engine.rebalancer.find_imbalance = lambda: ("group-0", "group-1")
        engine.rebalancer.rebalance_once = lambda: RebalanceAction(
            time=0.0, kind="split_migrate", detail="stub", keys_moved=3)
        action = engine.controller._act(plan(candidate=True), observation(True))
        assert action.kind == "repartition"
        assert engine.pool.active_count() == engine.cluster.node_count(), \
            "no instances may be rented for a repartition"

    def test_settling_migration_holds_instead_of_renting(self):
        engine = self.make_engine()
        engine.rebalancer.find_imbalance = lambda: ("group-0", "group-1")
        engine.rebalancer.in_cooldown = lambda: True
        action = engine.controller._act(plan(candidate=True), observation(True))
        assert action.kind == "hold"
        assert "settle" in action.reason

    def test_unresolvable_hotspot_rents_a_single_group(self):
        engine = self.make_engine()
        engine.rebalancer.find_imbalance = lambda: ("group-0", "group-1")
        engine.rebalancer.rebalance_once = lambda: None
        before = engine.pool.active_count() + engine.pool.booting_count()
        action = engine.controller._act(plan(candidate=True), observation(True))
        assert action.kind == "scale_up"
        assert "unresolved" in action.reason
        after = engine.pool.active_count() + engine.pool.booting_count()
        assert after - before == engine.cluster.replication_factor

    def test_satisfied_sla_never_triggers_repartition(self):
        engine = self.make_engine()
        engine.rebalancer.rebalance_once = lambda: RebalanceAction(
            time=0.0, kind="migrate", detail="stub")
        action = engine.controller._act(plan(candidate=True, target_nodes=4),
                                        observation(False))
        assert action.kind != "repartition"

    def test_planner_flags_hotspot_windows(self):
        engine = self.make_engine()
        result = engine.planner.plan(
            forecast_rate=50.0, write_fraction=0.1, slas=engine.slas,
            spec=engine.spec, mean_utilisation=0.2, max_utilisation=0.9)
        assert result.repartition_candidate
        result = engine.planner.plan(
            forecast_rate=50.0, write_fraction=0.1, slas=engine.slas,
            spec=engine.spec, mean_utilisation=0.7, max_utilisation=0.9)
        assert not result.repartition_candidate, \
            "uniformly hot clusters need capacity, not repartitioning"


# ---------------------------------------------- migration-aware key accounting


class TestMigrationAwareAccounting:
    def test_total_keys_does_not_double_count_in_flight_copies(self):
        cluster, router = make_range_cluster(rate=10.0)  # long in-flight window
        load_keys(router, 40)
        cluster.sim.run_until(cluster.sim.now + 5.0)
        assert cluster.total_keys() == 40
        cluster.split_partition("u020")
        record = cluster.migrate_partition("u020", "group-1")
        assert cluster.active_migrations() == [record]
        # Source and target primaries both hold the 20 moved keys, but each
        # logical key must be billed exactly once.
        source_primary = cluster.nodes[cluster.groups["group-0"].primary]
        target_primary = cluster.nodes[cluster.groups["group-1"].primary]
        assert source_primary.key_count() + target_primary.key_count() == 60
        assert cluster.total_keys() == 40
        cluster.sim.run_until(record.end_time + 1.0)
        assert record.completed
        assert cluster.total_keys() == 40

    def test_total_keys_counts_writes_during_the_in_flight_window_once(self):
        cluster, router = make_range_cluster(rate=10.0)
        load_keys(router, 40)
        cluster.sim.run_until(cluster.sim.now + 5.0)
        cluster.split_partition("u020")
        cluster.migrate_partition("u020", "group-1")
        # A brand-new key written mid-migration lands at the new owner and is
        # mirrored to the source (dual-routing); still one logical key.
        assert router.write("ns", ("u025x",), {"v": "new"}).success
        assert cluster.total_keys() == 41


# ------------------------------------------------- post-recovery reconciliation


class TestRecoveryReconciliation:
    def test_recovered_migration_source_reclaims_stale_copies(self):
        from repro.storage.failure import FailureInjector

        cluster, router = make_range_cluster(rate=10.0)
        injector = FailureInjector(cluster)
        load_keys(router, 40)
        cluster.sim.run_until(cluster.sim.now + 5.0)
        cluster.split_partition("u020")
        record = cluster.migrate_partition("u020", "group-1")
        # Crash the whole source group mid-flight; recover it well after the
        # transfer completes, so completion-time reclamation skipped it.
        recovery_at = record.end_time + 20.0
        for node_id in cluster.groups["group-0"].node_ids:
            injector.crash_node(node_id, at=cluster.sim.now + 0.1,
                                duration=recovery_at - cluster.sim.now)
        cluster.sim.run_until(cluster.sim.now + 1.0)
        assert not record.completed
        assert cluster.total_keys() == 40, \
            "in-flight accounting must hold even with the source primary down"
        cluster.sim.run_until(record.end_time + 5.0)
        assert record.completed
        source_primary = cluster.nodes[cluster.groups["group-0"].primary]
        assert source_primary.key_count() == 40, \
            "a crashed source keeps its stale copies at completion"
        cluster.sim.run_until(recovery_at + 5.0)
        assert source_primary.alive
        assert source_primary.key_count() == 20, \
            "recovery reconciliation reclaims the stale copies"
        assert cluster.reconciled_keys_total >= 20
        assert cluster.total_keys() == 40
        # The moved keys are still served by the new owner.
        read = router.read("ns", ("u030",), from_primary=True)
        assert read.success and read.value.value == {"v": "u030"}

    def test_reconciliation_spares_in_flight_sources_and_owned_keys(self):
        from repro.storage.failure import FailureInjector

        cluster, router = make_range_cluster(rate=1.0)  # very long transfer
        load_keys(router, 40)
        cluster.sim.run_until(cluster.sim.now + 5.0)
        cluster.split_partition("u020")
        record = cluster.migrate_partition("u020", "group-1")
        assert not record.completed
        source_primary = cluster.nodes[cluster.groups["group-0"].primary]
        # Reconciling mid-flight must not touch the dual-routed source copies.
        assert cluster.reconcile_node(source_primary.node_id) == 0
        assert source_primary.key_count() == 40
        # A recovery while the migration is still in flight is equally safe.
        injector = FailureInjector(cluster)
        injector.crash_node(source_primary.node_id, at=cluster.sim.now + 0.1,
                            duration=1.0)
        cluster.sim.run_until(cluster.sim.now + 3.0)
        assert source_primary.alive
        assert source_primary.key_count() == 40


# ------------------------------------------- tracker-fed SLAMonitor feature


class TestTrackerFedMonitorFeature:
    def test_mean_utilisation_feature_uses_decayed_count_inversion(self):
        engine = Scads(seed=2, autoscale=False, partitioner_kind="range",
                       repartition=True, initial_groups=2)
        engine.register_entity(EntitySchema(
            "profiles", key_fields=[Field("user_id")], value_fields=[Field("bio")],
        ))
        engine.start()
        engine.put("profiles", {"user_id": "u1", "bio": "x"})
        engine.settle(1.0)
        tracker = engine.rebalancer.tracker
        for _ in range(200):
            tracker.note("u1", False, engine.now)
        observation = engine.monitor.close_window(engine.now + 30.0)
        expected = (tracker.rate_estimate()
                    / engine.cluster.stats().total_capacity_ops)
        assert observation.features.mean_utilisation == pytest.approx(expected, rel=0.05)

    def test_without_rebalancer_the_ewma_mean_is_kept(self):
        engine = Scads(seed=2, autoscale=False, initial_groups=2,
                       repartition=False)
        engine.register_entity(EntitySchema(
            "profiles", key_fields=[Field("user_id")], value_fields=[Field("bio")],
        ))
        engine.start()
        engine.put("profiles", {"user_id": "u1", "bio": "x"})
        engine.settle(1.0)
        observation = engine.monitor.close_window(engine.now + 30.0)
        assert observation.features.mean_utilisation == pytest.approx(
            engine.cluster.stats().mean_utilisation, rel=0.2)
