"""Unit tests for the discrete-event simulation kernel (repro.sim)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.clock import ClockError, VirtualClock
from repro.sim.events import EventQueue
from repro.sim.latency import (
    ConstantLatency,
    EmpiricalLatency,
    ExponentialLatency,
    LogNormalLatency,
    ParetoLatency,
    QueueingLatency,
    percentile_of,
)
from repro.sim.network import NetworkModel, NetworkPartitionError
from repro.sim.randomness import (
    RandomStreams,
    ZipfGenerator,
    exponential_sample,
    lognormal_sample,
    pareto_sample,
    weighted_choice,
)
from repro.sim.simulator import Simulator

pytestmark = pytest.mark.tier1


# ---------------------------------------------------------------------- clock


class TestVirtualClock:
    def test_starts_at_zero_by_default(self):
        assert VirtualClock().now == 0.0

    def test_starts_at_given_time(self):
        assert VirtualClock(start=5.5).now == 5.5

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            VirtualClock(start=-1.0)

    def test_advance_to_moves_forward(self):
        clock = VirtualClock()
        clock.advance_to(3.0)
        assert clock.now == 3.0

    def test_advance_to_same_time_is_noop(self):
        clock = VirtualClock(start=2.0)
        clock.advance_to(2.0)
        assert clock.now == 2.0

    def test_advance_to_rejects_backwards(self):
        clock = VirtualClock(start=2.0)
        with pytest.raises(ClockError):
            clock.advance_to(1.0)

    def test_advance_by_accumulates(self):
        clock = VirtualClock()
        clock.advance_by(1.5)
        clock.advance_by(2.5)
        assert clock.now == 4.0

    def test_advance_by_rejects_negative(self):
        with pytest.raises(ClockError):
            VirtualClock().advance_by(-0.1)


# ---------------------------------------------------------------- event queue


class TestEventQueue:
    def test_pop_returns_events_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.push(3.0, lambda: fired.append("c"))
        queue.push(1.0, lambda: fired.append("a"))
        queue.push(2.0, lambda: fired.append("b"))
        while queue:
            queue.pop().fire()
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_fire_in_insertion_order(self):
        queue = EventQueue()
        fired = []
        queue.push(1.0, lambda: fired.append("first"))
        queue.push(1.0, lambda: fired.append("second"))
        while queue:
            queue.pop().fire()
        assert fired == ["first", "second"]

    def test_priority_breaks_ties(self):
        queue = EventQueue()
        fired = []
        queue.push(1.0, lambda: fired.append("low"), priority=5)
        queue.push(1.0, lambda: fired.append("high"), priority=0)
        while queue:
            queue.pop().fire()
        assert fired == ["high", "low"]

    def test_len_counts_live_events(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert len(queue) == 2
        queue.cancel(event)
        assert len(queue) == 1

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        fired = []
        event = queue.push(1.0, lambda: fired.append("cancelled"))
        queue.push(2.0, lambda: fired.append("kept"))
        queue.cancel(event)
        while queue:
            queue.pop().fire()
        assert fired == ["kept"]

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(5.0, lambda: None)
        queue.cancel(event)
        assert queue.peek_time() == 5.0

    def test_clear_empties_queue(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        queue.clear()
        assert not queue


# ------------------------------------------------------------------ simulator


class TestSimulator:
    def test_schedule_and_run_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append(sim.now))
        sim.run_until(10.0)
        assert fired == [5.0]
        assert sim.now == 10.0

    def test_run_until_leaves_clock_at_end_time_with_empty_queue(self):
        sim = Simulator()
        sim.run_until(42.0)
        assert sim.now == 42.0

    def test_events_beyond_end_time_do_not_fire(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append("early"))
        sim.schedule(50.0, lambda: fired.append("late"))
        sim.run_until(10.0)
        assert fired == ["early"]

    def test_schedule_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_at_rejects_past(self):
        sim = Simulator()
        sim.run_until(10.0)
        with pytest.raises(ValueError):
            sim.schedule_at(5.0, lambda: None)

    def test_periodic_fires_repeatedly(self):
        sim = Simulator()
        fired = []
        sim.schedule_periodic(10.0, lambda: fired.append(sim.now))
        sim.run_until(35.0)
        assert fired == [10.0, 20.0, 30.0]

    def test_periodic_cancel_stops_firing(self):
        sim = Simulator()
        fired = []
        cancel = sim.schedule_periodic(10.0, lambda: fired.append(sim.now))
        sim.run_until(25.0)
        cancel()
        sim.run_until(100.0)
        assert fired == [10.0, 20.0]

    def test_nested_scheduling_from_events(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append("first")
            sim.schedule(1.0, lambda: fired.append("second"))

        sim.schedule(1.0, first)
        sim.run_until(5.0)
        assert fired == ["first", "second"]

    def test_processed_events_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i + 1), lambda: None)
        sim.run_until(10.0)
        assert sim.processed_events == 5

    def test_run_drains_queue(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert not sim.queue


# ----------------------------------------------------------------- randomness


class TestRandomStreams:
    def test_same_seed_same_stream(self):
        a = RandomStreams(42).get("x").random(5)
        b = RandomStreams(42).get("x").random(5)
        assert np.allclose(a, b)

    def test_different_names_are_independent(self):
        streams = RandomStreams(42)
        a = streams.get("a").random(5)
        b = streams.get("b").random(5)
        assert not np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = RandomStreams(1).get("x").random(5)
        b = RandomStreams(2).get("x").random(5)
        assert not np.allclose(a, b)

    def test_same_stream_is_cached(self):
        streams = RandomStreams(0)
        assert streams.get("x") is streams.get("x")


class TestDistributions:
    def test_zipf_draws_in_range(self):
        rng = np.random.default_rng(0)
        zipf = ZipfGenerator(100, 0.9, rng)
        draws = zipf.draw_many(1000)
        assert draws.min() >= 0
        assert draws.max() < 100

    def test_zipf_is_skewed_toward_low_ranks(self):
        rng = np.random.default_rng(0)
        zipf = ZipfGenerator(1000, 0.9, rng)
        draws = zipf.draw_many(5000)
        top_ten_share = np.mean(draws < 10)
        assert top_ten_share > 0.15  # heavily skewed vs. the uniform 1%

    def test_zipf_theta_zero_is_roughly_uniform(self):
        rng = np.random.default_rng(0)
        zipf = ZipfGenerator(10, 0.0, rng)
        draws = zipf.draw_many(10_000)
        counts = np.bincount(draws, minlength=10)
        assert counts.min() > 700

    def test_zipf_rejects_bad_parameters(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            ZipfGenerator(0, 0.5, rng)
        with pytest.raises(ValueError):
            ZipfGenerator(10, 1.5, rng)

    def test_pareto_and_lognormal_are_positive(self):
        rng = np.random.default_rng(0)
        assert pareto_sample(rng, 2.0, 1.0) >= 1.0
        assert lognormal_sample(rng, 0.01, 0.5) > 0
        assert exponential_sample(rng, 2.0) > 0

    def test_weighted_choice_respects_zero_weights(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            assert weighted_choice(rng, {"a": 0.0, "b": 1.0}) == "b"

    def test_weighted_choice_rejects_empty_and_negative(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            weighted_choice(rng, {})
        with pytest.raises(ValueError):
            weighted_choice(rng, {"a": -1.0})


# -------------------------------------------------------------------- latency


class TestLatencyModels:
    def test_constant(self):
        rng = np.random.default_rng(0)
        model = ConstantLatency(0.005)
        assert model.sample(rng) == 0.005
        assert model.mean() == 0.005

    def test_lognormal_mean_close_to_analytic(self):
        rng = np.random.default_rng(0)
        model = LogNormalLatency(0.004, 0.5)
        samples = [model.sample(rng) for _ in range(20_000)]
        assert np.mean(samples) == pytest.approx(model.mean(), rel=0.05)

    def test_exponential_mean(self):
        rng = np.random.default_rng(0)
        model = ExponentialLatency(0.01)
        samples = [model.sample(rng) for _ in range(20_000)]
        assert np.mean(samples) == pytest.approx(0.01, rel=0.05)

    def test_pareto_requires_finite_mean(self):
        with pytest.raises(ValueError):
            ParetoLatency(0.001, shape=1.0)

    def test_empirical_resamples_from_given_values(self):
        rng = np.random.default_rng(0)
        model = EmpiricalLatency([0.001, 0.002, 0.003])
        for _ in range(20):
            assert model.sample(rng) in (0.001, 0.002, 0.003)

    def test_empirical_rejects_empty(self):
        with pytest.raises(ValueError):
            EmpiricalLatency([])

    def test_queueing_latency_grows_with_utilisation(self):
        rng = np.random.default_rng(0)
        model = QueueingLatency(ConstantLatency(0.004))
        model.set_utilisation(0.0)
        low = model.sample(rng)
        model.set_utilisation(0.9)
        high = model.sample(rng)
        assert high == pytest.approx(low / 0.1)

    def test_queueing_latency_clamps_overload(self):
        model = QueueingLatency(ConstantLatency(0.004))
        model.set_utilisation(5.0)
        assert model.utilisation == QueueingLatency.MAX_UTILISATION

    def test_percentile_of_orders_percentiles(self):
        rng = np.random.default_rng(0)
        model = LogNormalLatency(0.004, 0.5)
        p50 = percentile_of(model, rng, 50)
        p99 = percentile_of(model, rng, 99)
        assert p99 > p50


# -------------------------------------------------------------------- network


class TestNetworkModel:
    def _network(self):
        return NetworkModel(np.random.default_rng(0))

    def test_self_delay_is_zero(self):
        assert self._network().delay("a", "a") == 0.0

    def test_default_delay_is_positive(self):
        assert self._network().delay("a", "b") > 0.0

    def test_partition_blocks_traffic(self):
        network = self._network()
        network.partition({"a"}, {"b"})
        with pytest.raises(NetworkPartitionError):
            network.delay("a", "b")

    def test_partition_is_symmetric(self):
        network = self._network()
        network.partition({"a"}, {"b"})
        with pytest.raises(NetworkPartitionError):
            network.delay("b", "a")

    def test_partition_does_not_block_same_side(self):
        network = self._network()
        network.partition({"a", "c"}, {"b"})
        assert network.delay("a", "c") >= 0.0

    def test_heal_restores_traffic(self):
        network = self._network()
        partition = network.partition({"a"}, {"b"})
        network.heal(partition)
        assert network.delay("a", "b") > 0.0

    def test_heal_all(self):
        network = self._network()
        network.partition({"a"}, {"b"})
        network.partition({"c"}, {"d"})
        network.heal_all()
        assert network.is_reachable("a", "b")
        assert network.is_reachable("c", "d")

    def test_overlapping_partition_groups_rejected(self):
        network = self._network()
        with pytest.raises(ValueError):
            network.partition({"a"}, {"a", "b"})

    def test_congestion_inflates_delay(self):
        network = self._network()
        baseline = np.mean([network.delay("a", "b") for _ in range(200)])
        network.set_congestion("a", "b", 10.0)
        congested = np.mean([network.delay("a", "b") for _ in range(200)])
        assert congested > 5.0 * baseline

    def test_congestion_factor_below_one_rejected(self):
        with pytest.raises(ValueError):
            self._network().set_congestion("a", "b", 0.5)


# ------------------------------------------------------------ property tests


class TestSimulatorProperties:
    @given(delays=st.lists(st.floats(min_value=0.0, max_value=1000.0), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_clock_is_monotonic_over_any_schedule(self, delays):
        sim = Simulator()
        observed = []
        for delay in delays:
            sim.schedule(delay, lambda: observed.append(sim.now))
        sim.run()
        assert observed == sorted(observed)

    @given(
        times=st.lists(
            st.tuples(st.floats(min_value=0, max_value=100), st.integers(min_value=0, max_value=3)),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_event_queue_pops_in_nondecreasing_time_order(self, times):
        queue = EventQueue()
        for time, priority in times:
            queue.push(time, lambda: None, priority=priority)
        popped = []
        while queue:
            popped.append(queue.pop().time)
        assert popped == sorted(popped)
