"""Unit tests for the ML substrate (repro.ml)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.ensemble import EnsembleModel
from repro.ml.features import FeatureExtractor, WorkloadFeatures
from repro.ml.forecaster import WorkloadForecaster
from repro.ml.knn import KNNRegressor
from repro.ml.performance_model import LatencyPercentileModel, PropagationLagModel
from repro.ml.regression import (
    LinearRegressionModel,
    NotFittedError,
    QuantileRegressionModel,
    RidgeRegressionModel,
)

pytestmark = pytest.mark.tier1


class TestFeatures:
    def test_extractor_derives_per_node_rate(self):
        features = FeatureExtractor().extract(
            request_rate=1000.0, write_fraction=0.1, node_count=4,
            mean_utilisation=0.3, max_utilisation=0.5,
        )
        assert features.per_node_rate == pytest.approx(250.0)

    def test_vector_matches_field_names(self):
        features = FeatureExtractor().extract(
            request_rate=10.0, write_fraction=0.5, node_count=2,
            mean_utilisation=0.1, max_utilisation=0.2, pending_updates=7,
        )
        vector = features.as_vector()
        names = WorkloadFeatures.feature_names()
        assert len(vector) == len(names)
        assert vector[names.index("pending_updates")] == 7.0

    def test_invalid_inputs_rejected(self):
        extractor = FeatureExtractor()
        with pytest.raises(ValueError):
            extractor.extract(10.0, 0.1, 0, 0.1, 0.1)
        with pytest.raises(ValueError):
            extractor.extract(-1.0, 0.1, 1, 0.1, 0.1)
        with pytest.raises(ValueError):
            extractor.extract(10.0, 1.5, 1, 0.1, 0.1)


class TestLinearRegression:
    def test_recovers_linear_function(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 10, size=(200, 2))
        y = 3.0 * x[:, 0] - 2.0 * x[:, 1] + 5.0
        model = LinearRegressionModel().fit(x, y)
        assert model.predict_one([1.0, 1.0]) == pytest.approx(6.0, abs=1e-6)
        assert model.coefficients[0] == pytest.approx(3.0, abs=1e-6)

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            LinearRegressionModel().predict_one([1.0])

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            LinearRegressionModel().fit([[1.0], [2.0]], [1.0])

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            LinearRegressionModel().fit([], [])

    def test_ridge_shrinks_coefficients(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 1, size=(30, 3))
        y = 10.0 * x[:, 0] + rng.normal(0, 0.1, 30)
        plain = LinearRegressionModel().fit(x, y)
        ridge = RidgeRegressionModel(alpha=50.0).fit(x, y)
        assert abs(ridge.coefficients[0]) < abs(plain.coefficients[0])

    def test_ridge_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            RidgeRegressionModel(alpha=-1.0)


class TestQuantileRegression:
    def test_high_quantile_sits_above_the_mean(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(1, 10, size=(400, 1))
        noise = rng.exponential(2.0, size=400)  # asymmetric noise
        y = 2.0 * x[:, 0] + noise
        mean_model = LinearRegressionModel().fit(x, y)
        q90 = QuantileRegressionModel(quantile=0.9, iterations=300).fit(x, y)
        probe = [[5.0]]
        assert q90.predict(probe)[0] > mean_model.predict(probe)[0]

    def test_pinball_loss_is_finite_and_nonnegative(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(0, 1, size=(100, 2))
        y = x[:, 0] + x[:, 1]
        model = QuantileRegressionModel(quantile=0.95).fit(x, y)
        loss = model.pinball_loss(x, y)
        assert np.isfinite(loss) and loss >= 0

    def test_invalid_quantile_rejected(self):
        with pytest.raises(ValueError):
            QuantileRegressionModel(quantile=1.5)

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            QuantileRegressionModel().predict([[1.0]])


class TestKNN:
    def test_predicts_nearest_neighbour_value(self):
        model = KNNRegressor(k=1).fit([[0.0], [10.0]], [1.0, 100.0])
        assert model.predict_one([1.0]) == pytest.approx(1.0)
        assert model.predict_one([9.0]) == pytest.approx(100.0)

    def test_k_larger_than_dataset_is_fine(self):
        model = KNNRegressor(k=10).fit([[0.0], [1.0]], [0.0, 1.0])
        assert 0.0 <= model.predict_one([0.5]) <= 1.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KNNRegressor(k=0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            KNNRegressor().predict_one([1.0])


class TestEnsemble:
    def _dataset(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 10, size=(120, 2))
        y = x[:, 0] * 2 + x[:, 1] + rng.normal(0, 0.5, 120)
        return x, y

    def test_ensemble_prediction_is_reasonable(self):
        x, y = self._dataset()
        ensemble = EnsembleModel([LinearRegressionModel(), KNNRegressor(k=3)]).fit(x, y)
        prediction = ensemble.predict_one([5.0, 5.0])
        assert prediction == pytest.approx(15.0, rel=0.2)

    def test_weights_sum_to_one(self):
        x, y = self._dataset()
        ensemble = EnsembleModel([LinearRegressionModel(), KNNRegressor(k=3)]).fit(x, y)
        assert sum(ensemble.member_weights) == pytest.approx(1.0)

    def test_better_member_gets_more_weight(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 10, size=(200, 1))
        y = 3.0 * x[:, 0]  # exactly linear: the linear member should dominate
        ensemble = EnsembleModel([LinearRegressionModel(), KNNRegressor(k=5)]).fit(x, y)
        weights = ensemble.member_weights
        assert weights[0] > weights[1]

    def test_empty_members_rejected(self):
        with pytest.raises(ValueError):
            EnsembleModel([])

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            EnsembleModel([LinearRegressionModel()]).predict_one([1.0])


class TestForecaster:
    def test_returns_latest_rate_with_little_history(self):
        forecaster = WorkloadForecaster()
        forecaster.observe(0.0, 100.0)
        assert forecaster.forecast(60.0) == 100.0

    def test_linear_growth_is_extrapolated(self):
        forecaster = WorkloadForecaster()
        for i in range(20):
            forecaster.observe(i * 60.0, 100.0 + 10.0 * i)
        forecast = forecaster.forecast(600.0)  # ten steps ahead
        assert forecast == pytest.approx(100.0 + 10.0 * 29, rel=0.1)

    def test_exponential_growth_beats_linear_extrapolation(self):
        forecaster = WorkloadForecaster(window=40)
        for i in range(30):
            forecaster.observe(i * 600.0, 100.0 * (1.2 ** i))
        last = forecaster.latest_rate()
        forecast = forecaster.forecast(3 * 600.0)
        # Exponential continuation of the trend: about last * 1.2^3 = 1.73x.
        assert forecast > 1.4 * last

    def test_forecast_never_negative(self):
        forecaster = WorkloadForecaster()
        for i in range(20):
            forecaster.observe(i * 60.0, max(1000.0 - 100.0 * i, 0.0))
        assert forecaster.forecast(3600.0) >= 0.0

    def test_growth_rate_positive_for_growth(self):
        forecaster = WorkloadForecaster()
        for i in range(10):
            forecaster.observe(i * 60.0, 100.0 * (i + 1))
        assert forecaster.growth_rate() > 0

    def test_out_of_order_observations_rejected(self):
        forecaster = WorkloadForecaster()
        forecaster.observe(10.0, 5.0)
        with pytest.raises(ValueError):
            forecaster.observe(5.0, 5.0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            WorkloadForecaster().observe(0.0, -1.0)


class TestLatencyPercentileModel:
    def _features(self, rate, nodes):
        return WorkloadFeatures(
            request_rate=rate, write_fraction=0.1, node_count=float(nodes),
            per_node_rate=rate / nodes, mean_utilisation=min(rate / (nodes * 1000.0), 0.99),
            max_utilisation=min(rate / (nodes * 1000.0), 0.99),
        )

    def test_prior_latency_grows_with_load(self):
        model = LatencyPercentileModel(node_capacity_ops=1000.0)
        assert model.prior_prediction(900.0) > model.prior_prediction(100.0)

    def test_required_nodes_increase_with_rate(self):
        model = LatencyPercentileModel(node_capacity_ops=1000.0)
        low = model.required_nodes(1000.0, 0.1, target_latency=0.1)
        high = model.required_nodes(20_000.0, 0.1, target_latency=0.1)
        assert high > low

    def test_required_nodes_increase_with_stricter_sla(self):
        model = LatencyPercentileModel(node_capacity_ops=1000.0)
        loose = model.required_nodes(10_000.0, 0.1, target_latency=0.5)
        strict = model.required_nodes(10_000.0, 0.1, target_latency=0.02)
        assert strict >= loose

    def test_training_switches_to_learned_model(self):
        model = LatencyPercentileModel(min_training_windows=8, retrain_every=1)
        for i in range(12):
            rate = 100.0 * (i + 1)
            features = self._features(rate, nodes=4)
            observed = 0.01 + features.per_node_rate / 1000.0 * 0.05
            model.observe(features, observed)
        assert model.is_trained
        prediction = model.predict(self._features(2000.0, nodes=4))
        assert prediction > model.base_service_time

    def test_infinite_observations_are_ignored(self):
        model = LatencyPercentileModel()
        model.observe(self._features(100.0, 2), float("inf"))
        assert model.training_size() == 0

    def test_zero_rate_needs_one_node(self):
        model = LatencyPercentileModel()
        assert model.required_nodes(0.0, 0.0, target_latency=0.1) == 1


class TestPropagationLagModel:
    def test_prior_scales_with_queue_depth(self):
        model = PropagationLagModel()
        assert model.predict(1000, 100.0) > model.predict(10, 100.0)

    def test_training_fits_observed_relationship(self):
        model = PropagationLagModel(min_training_windows=5)
        for pending in range(0, 100, 10):
            model.observe(pending, per_node_rate=100.0, observed_lag=0.1 * pending)
        assert model.is_trained
        assert model.predict(50, 100.0) == pytest.approx(5.0, rel=0.3)

    def test_danger_flag_near_bound(self):
        model = PropagationLagModel(min_training_windows=5)
        for pending in range(0, 100, 10):
            model.observe(pending, per_node_rate=100.0, observed_lag=0.5 * pending)
        assert model.danger(100, 100.0, staleness_bound=10.0)
        assert not model.danger(1, 100.0, staleness_bound=10.0)

    def test_negative_lag_rejected(self):
        with pytest.raises(ValueError):
            PropagationLagModel().observe(1, 1.0, -0.1)

    def test_danger_requires_positive_bound(self):
        with pytest.raises(ValueError):
            PropagationLagModel().danger(1, 1.0, 0.0)
