"""Sweep-fabric observability: traces and telemetry merge across workers.

The observability payloads (telemetry registry, trace list, decision
timeline) ride back from sweep workers inside the picklable
``ClosedLoopSummary`` and are merged per grid cell in run-index order —
so the merged result must be identical no matter how many processes
executed the runs.  These runs are seconds long: the point is the merge
machinery, not the scenario.
"""

from __future__ import annotations

import pickle

import pytest

from repro.parallel.executor import run_sweep
from repro.parallel.results import (
    merge_telemetry,
    merge_timelines,
    merge_traces,
)
from repro.parallel.spec import ScenarioSpec, SweepGrid, TraceSpec

pytestmark = pytest.mark.tier1


def traced_grid(replicates: int = 2, base_seed: int = 11) -> SweepGrid:
    scenario = ScenarioSpec(
        name="traced-smoke",
        trace=TraceSpec("constant", {"rate": 30.0}),
        duration=20.0,
        n_users=40,
        friend_cap=10,
        initial_groups=2,
        control_interval=10.0,
        engine_knobs={"telemetry": True},
    )
    return SweepGrid(scenario=scenario, replicates=replicates,
                     base_seed=base_seed)


def trace_keys(traces):
    return [(t.trace_id, t.op, round(t.start, 9), t.latency, t.success,
             len(t.spans)) for t in traces]


class TestSweepObservability:
    def test_summaries_carry_observability_payloads(self):
        result = run_sweep(traced_grid(replicates=1), workers=1)
        assert not result.failures
        summary = result.successes[0].summary
        assert summary.telemetry is not None
        assert summary.traces and all(t.reconciles() for t in summary.traces)
        assert summary.decision_timeline is not None
        # The whole summary (payloads included) survives a pickle cycle, as
        # it must to cross the worker process boundary.
        restored = pickle.loads(pickle.dumps(summary))
        assert restored.telemetry.snapshot() == summary.telemetry.snapshot()
        assert trace_keys(restored.traces) == trace_keys(summary.traces)

    def test_merged_cell_identical_across_worker_counts(self):
        serial = run_sweep(traced_grid(), workers=1)
        pooled = run_sweep(traced_grid(), workers=4)
        assert not serial.failures and not pooled.failures
        a = serial.cell_reports()[0]
        b = pooled.cell_reports()[0]
        assert a.telemetry.snapshot() == b.telemetry.snapshot()
        assert trace_keys(a.traces) == trace_keys(b.traces)
        assert a.decision_timeline.snapshot() == b.decision_timeline.snapshot()
        # The merged report itself remains picklable (for result archives).
        restored = pickle.loads(pickle.dumps(a))
        assert restored.telemetry.snapshot() == a.telemetry.snapshot()

    def test_merged_telemetry_equals_per_run_sums(self):
        result = run_sweep(traced_grid(), workers=1)
        summaries = [record.summary for record in result.successes]
        merged = merge_telemetry([s.telemetry for s in summaries])
        for name in ("engine.read.ops", "engine.write.ops", "router.read"):
            assert merged.counters[name] == sum(
                s.telemetry.counters[name] for s in summaries)
        # Histograms union exactly: merged count is the sum of run counts.
        assert len(merged.histogram("engine.read.latency")) == sum(
            len(s.telemetry.histogram("engine.read.latency"))
            for s in summaries)
        traces = merge_traces([s.traces for s in summaries])
        assert len(traces) == sum(len(s.traces) for s in summaries)
        timeline = merge_timelines([s.decision_timeline for s in summaries])
        assert len(timeline.decisions) == sum(
            len(s.decision_timeline.decisions) for s in summaries)

    def test_merge_helpers_absent_payloads(self):
        assert merge_telemetry([None, None]) is None
        assert merge_traces([None]) is None
        assert merge_timelines([]) is None

    def test_untraced_sweep_merges_to_none(self):
        grid = traced_grid(replicates=1)
        grid.scenario.engine_knobs = {}
        result = run_sweep(grid, workers=1)
        assert not result.failures
        report = result.cell_reports()[0]
        assert report.telemetry is None
        assert report.traces is None
        assert report.decision_timeline is None
