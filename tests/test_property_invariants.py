"""Property-based end-to-end invariants on core data structures.

These check that after arbitrary operation sequences the maintained indexes
agree exactly with a ground-truth model computed independently — the strongest
correctness statement about the index-maintenance machinery.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Scads
from repro.core.schema import EntitySchema, Field

pytestmark = [pytest.mark.tier1, pytest.mark.property]

USERS = [f"u{i}" for i in range(6)]
BIRTHDAYS = ["01-05", "03-14", "07-04", "11-30"]


def build_engine() -> Scads:
    engine = Scads(seed=13, autoscale=False, initial_groups=1)
    engine.register_entity(EntitySchema(
        "profiles", key_fields=[Field("user_id")],
        value_fields=[Field("name"), Field("birthday")],
    ))
    engine.register_entity(EntitySchema(
        "friendships", key_fields=[Field("f1"), Field("f2")],
        max_per_partition=50, column_bounds={"f2": 50},
    ))
    engine.register_query("friends", "SELECT * FROM friendships WHERE f1 = <u> LIMIT 50")
    engine.register_query(
        "friend_birthdays",
        "SELECT p.* FROM friendships f JOIN profiles p ON f.f2 = p.user_id "
        "WHERE f.f1 = <u> ORDER BY p.birthday LIMIT 50",
    )
    engine.start()
    return engine


operation_strategy = st.one_of(
    st.tuples(st.just("set_birthday"), st.sampled_from(USERS), st.sampled_from(BIRTHDAYS)),
    st.tuples(st.just("add_friend"), st.sampled_from(USERS), st.sampled_from(USERS)),
    st.tuples(st.just("remove_friend"), st.sampled_from(USERS), st.sampled_from(USERS)),
)


class GroundTruth:
    """An independent, obviously-correct model of the application state."""

    def __init__(self) -> None:
        self.birthdays: Dict[str, str] = {}
        self.edges: Set[Tuple[str, str]] = set()

    def apply(self, operation) -> None:
        kind = operation[0]
        if kind == "set_birthday":
            _, user, birthday = operation
            self.birthdays[user] = birthday
        elif kind == "add_friend":
            _, a, b = operation
            if a != b:
                self.edges.add((a, b))
        else:
            _, a, b = operation
            self.edges.discard((a, b))

    def friends_of(self, user: str) -> List[str]:
        return sorted(b for a, b in self.edges if a == user)

    def friend_birthdays(self, user: str) -> List[Tuple[str, str]]:
        rows = []
        for friend in self.friends_of(user):
            if friend in self.birthdays:
                rows.append((self.birthdays[friend], friend))
        return sorted(rows)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
@given(operations=st.lists(operation_strategy, min_size=1, max_size=25))
def test_maintained_indexes_match_ground_truth(operations):
    engine = build_engine()
    truth = GroundTruth()
    for operation in operations:
        kind = operation[0]
        if kind == "set_birthday":
            _, user, birthday = operation
            engine.put("profiles", {"user_id": user, "name": user, "birthday": birthday})
        elif kind == "add_friend":
            _, a, b = operation
            if a != b:
                engine.put("friendships", {"f1": a, "f2": b})
        else:
            _, a, b = operation
            engine.delete("friendships", (a, b))
        truth.apply(operation)
    engine.settle(seconds=5.0)

    for user in USERS:
        friend_rows = engine.query("friends", {"u": user}).rows
        assert sorted(row["f2"] for row in friend_rows) == truth.friends_of(user)

        birthday_rows = engine.query("friend_birthdays", {"u": user}).rows
        observed = sorted((row["birthday"], row["user_id"]) for row in birthday_rows)
        assert observed == truth.friend_birthdays(user)


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    writes=st.lists(
        st.tuples(st.sampled_from(USERS), st.integers(min_value=0, max_value=100)),
        min_size=1, max_size=30,
    )
)
def test_last_write_wins_converges_to_final_value_per_key(writes):
    engine = Scads(seed=17, autoscale=False, initial_groups=1)
    engine.register_entity(EntitySchema(
        "counters", key_fields=[Field("user_id")], value_fields=[Field("value")],
    ))
    engine.start()
    final: Dict[str, int] = {}
    for user, value in writes:
        engine.put("counters", {"user_id": user, "value": str(value)})
        final[user] = value
    engine.settle(seconds=5.0)
    for user, value in final.items():
        row = engine.get("counters", (user,)).row
        assert row is not None and row["value"] == str(value)
