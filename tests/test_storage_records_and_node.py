"""Unit tests for storage records, key ranges, and the simulated node."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.node import NodeDownError, StorageNode
from repro.storage.records import (
    KeyRange,
    VersionedValue,
    key_part_successor,
    prefix_range,
    validate_key,
)

pytestmark = pytest.mark.tier1


def make_node(node_id="n1", capacity=1000.0, seed=0):
    return StorageNode(node_id, np.random.default_rng(seed), capacity_ops_per_sec=capacity)


def vv(value, timestamp=0.0, version=1, writer="w", tombstone=False):
    return VersionedValue(value=value, timestamp=timestamp, version=version,
                         writer=writer, tombstone=tombstone)


# ----------------------------------------------------------------------- keys


class TestKeys:
    def test_validate_key_accepts_mixed_primitives(self):
        assert validate_key(("a", 1, 2.5)) == ("a", 1, 2.5)

    def test_validate_key_rejects_non_tuple(self):
        with pytest.raises(TypeError):
            validate_key(["a"])

    def test_validate_key_rejects_empty(self):
        with pytest.raises(ValueError):
            validate_key(())

    def test_validate_key_rejects_bool_and_none(self):
        with pytest.raises(TypeError):
            validate_key((True,))
        with pytest.raises(TypeError):
            validate_key((None,))

    def test_key_part_successor_string_excludes_longer_strings(self):
        assert "abc" < key_part_successor("abc") < "abcd"

    def test_key_part_successor_int(self):
        assert key_part_successor(5) == 6

    def test_key_part_successor_float(self):
        assert key_part_successor(1.0) > 1.0


class TestVersionedValue:
    def test_newer_timestamp_wins(self):
        old = vv("a", timestamp=1.0)
        new = vv("b", timestamp=2.0)
        assert new.wins_over(old)
        assert not old.wins_over(new)

    def test_anything_wins_over_none(self):
        assert vv("a").wins_over(None)

    def test_version_breaks_timestamp_ties(self):
        a = vv("a", timestamp=1.0, version=1)
        b = vv("b", timestamp=1.0, version=2)
        assert b.wins_over(a)


class TestKeyRange:
    def test_contains_half_open(self):
        key_range = KeyRange("ns", start=("a",), end=("c",))
        assert key_range.contains(("a",))
        assert key_range.contains(("b",))
        assert not key_range.contains(("c",))

    def test_unbounded_contains_everything(self):
        key_range = KeyRange("ns")
        assert key_range.contains(("zzz", 99))
        assert key_range.is_unbounded()

    def test_overlaps_requires_same_namespace(self):
        a = KeyRange("ns1", start=("a",), end=("c",))
        b = KeyRange("ns2", start=("a",), end=("c",))
        assert not a.overlaps(b)

    def test_overlaps_detects_intersection(self):
        a = KeyRange("ns", start=("a",), end=("c",))
        b = KeyRange("ns", start=("b",), end=("d",))
        c = KeyRange("ns", start=("c",), end=("e",))
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_prefix_range_matches_exact_component_only(self):
        key_range = prefix_range("ns", ("user1",))
        assert key_range.contains(("user1",))
        assert key_range.contains(("user1", "02-14", "friend9"))
        assert not key_range.contains(("user10",))
        assert not key_range.contains(("user0",))

    def test_prefix_range_multi_component(self):
        key_range = prefix_range("ns", ("u1", 5))
        assert key_range.contains(("u1", 5, "x"))
        assert not key_range.contains(("u1", 6))

    @given(
        prefix=st.text(alphabet="abcdef", min_size=1, max_size=5),
        other=st.text(alphabet="abcdef", min_size=1, max_size=8),
    )
    @settings(max_examples=100, deadline=None)
    def test_prefix_range_property(self, prefix, other):
        key_range = prefix_range("ns", (prefix,))
        inside = key_range.contains((other,)) or key_range.contains((other, "x"))
        assert inside == (other == prefix)


# ----------------------------------------------------------------------- node


class TestStorageNodeBasics:
    def test_put_then_get(self):
        node = make_node()
        node.put("ns", ("k",), vv({"a": 1}), now=0.0)
        value, latency = node.get("ns", ("k",), now=1.0)
        assert value is not None and value.value == {"a": 1}
        assert latency > 0

    def test_get_missing_returns_none(self):
        node = make_node()
        value, _ = node.get("ns", ("missing",), now=0.0)
        assert value is None

    def test_tombstone_hides_value(self):
        node = make_node()
        node.put("ns", ("k",), vv({"a": 1}), now=0.0)
        node.delete("ns", ("k",), vv(None, timestamp=1.0, version=2, tombstone=True), now=1.0)
        value, _ = node.get("ns", ("k",), now=2.0)
        assert value is None

    def test_peek_does_not_touch_load_model(self):
        node = make_node()
        node.put("ns", ("k",), vv({"a": 1}), now=0.0)
        before = node.stats.reads
        assert node.peek("ns", ("k",)).value == {"a": 1}
        assert node.stats.reads == before

    def test_key_count_tracks_new_keys(self):
        node = make_node()
        node.put("ns", ("a",), vv(1), now=0.0)
        node.put("ns", ("b",), vv(2), now=0.0)
        node.put("ns", ("a",), vv(3), now=0.0)  # overwrite, not a new key
        assert node.key_count("ns") == 2

    def test_namespaces_listed(self):
        node = make_node()
        node.put("ns2", ("a",), vv(1), now=0.0)
        node.put("ns1", ("a",), vv(1), now=0.0)
        assert node.namespaces() == ["ns1", "ns2"]

    def test_crash_blocks_operations(self):
        node = make_node()
        node.crash()
        with pytest.raises(NodeDownError):
            node.get("ns", ("k",), now=0.0)
        with pytest.raises(NodeDownError):
            node.put("ns", ("k",), vv(1), now=0.0)

    def test_recover_restores_data(self):
        node = make_node()
        node.put("ns", ("k",), vv(1), now=0.0)
        node.crash()
        node.recover()
        value, _ = node.get("ns", ("k",), now=1.0)
        assert value is not None

    def test_wipe_drops_data(self):
        node = make_node()
        node.put("ns", ("k",), vv(1), now=0.0)
        node.wipe()
        assert node.key_count() == 0

    def test_apply_replica_write_respects_lww(self):
        node = make_node()
        newer = vv("new", timestamp=5.0, version=2)
        older = vv("old", timestamp=1.0, version=1)
        assert node.apply_replica_write("ns", ("k",), newer)
        assert not node.apply_replica_write("ns", ("k",), older)
        assert node.peek("ns", ("k",)).value == "new"

    def test_invalid_key_rejected(self):
        node = make_node()
        with pytest.raises(TypeError):
            node.put("ns", ["not-a-tuple"], vv(1), now=0.0)


class TestStorageNodeRanges:
    def _loaded_node(self):
        node = make_node()
        for user in ("u1", "u2"):
            for day in ("01-05", "03-10", "07-20"):
                node.put("idx", (user, day), vv(day), now=0.0)
        return node

    def test_range_is_contiguous_and_sorted(self):
        node = self._loaded_node()
        rows, _ = node.get_range(prefix_range("idx", ("u1",)), now=1.0)
        keys = [key for key, _ in rows]
        assert keys == sorted(keys)
        assert all(key[0] == "u1" for key in keys)
        assert len(keys) == 3

    def test_range_with_limit(self):
        node = self._loaded_node()
        rows, _ = node.get_range(prefix_range("idx", ("u1",)), now=1.0, limit=2)
        assert len(rows) == 2

    def test_range_reverse_returns_descending(self):
        node = self._loaded_node()
        rows, _ = node.get_range(prefix_range("idx", ("u1",)), now=1.0, limit=2, reverse=True)
        days = [key[1] for key, _ in rows]
        assert days == ["07-20", "03-10"]

    def test_range_excludes_tombstones(self):
        node = self._loaded_node()
        node.delete("idx", ("u1", "01-05"),
                    vv(None, timestamp=2.0, version=2, tombstone=True), now=2.0)
        rows, _ = node.get_range(prefix_range("idx", ("u1",)), now=3.0)
        assert len(rows) == 2

    def test_range_latency_grows_with_rows(self):
        node = make_node()
        for i in range(500):
            node.put("idx", ("u", i), vv(i), now=0.0)
        small, small_latency = node.get_range(prefix_range("idx", ("u",)), now=1.0, limit=5)
        node2 = make_node(seed=0)
        for i in range(500):
            node2.put("idx", ("u", i), vv(i), now=0.0)
        large, large_latency = node2.get_range(prefix_range("idx", ("u",)), now=1.0)
        assert len(large) == 500
        assert large_latency > small_latency


class TestStorageNodeLoadModel:
    def test_utilisation_rises_under_load(self):
        node = make_node(capacity=100.0)
        for i in range(200):
            node.put("ns", ("k", i), vv(i), now=i * 0.001)  # 1000 ops/sec against 100 capacity
        assert node.utilisation() > 0.8

    def test_latency_increases_with_load(self):
        calm = make_node(capacity=1000.0, seed=1)
        for i in range(100):
            calm.put("ns", ("k", i), vv(i), now=i * 1.0)  # 1 op/sec
        calm_latency = np.mean([calm.get("ns", ("k", 0), now=200.0 + i)[1] for i in range(50)])

        busy = make_node(capacity=1000.0, seed=1)
        for i in range(2000):
            busy.put("ns", ("k", i), vv(i), now=i * 0.0002)  # 5000 ops/sec
        busy_latency = np.mean([busy.get("ns", ("k", 0), now=0.4 + i * 0.0002)[1] for i in range(50)])
        assert busy_latency > 2.0 * calm_latency

    def test_decay_load_reduces_utilisation_when_idle(self):
        node = make_node(capacity=100.0)
        for i in range(200):
            node.put("ns", ("k", i), vv(i), now=i * 0.001)
        busy = node.utilisation()
        for step in range(20):
            node.decay_load(now=10.0 + step * 10.0)
        assert node.utilisation() < busy

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            make_node(capacity=0.0)
