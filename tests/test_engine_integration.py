"""Integration tests of the SCADS engine: consistency-aware reads and writes,
query execution over maintained indexes, arbitration under partitions, and
durability-driven replication."""

from __future__ import annotations

import pytest

from repro import Scads
from repro.core.consistency.spec import (
    Axis,
    ConsistencySpec,
    DurabilitySLA,
    ReadConsistency,
    SessionGuarantee,
    WriteConsistency,
    WritePolicy,
)
from repro.core.query.analyzer import QueryRejected
from repro.core.schema import EntitySchema, Field
from repro.storage.failure import FailureInjector

pytestmark = pytest.mark.tier1


def simple_engine(**kwargs) -> Scads:
    defaults = dict(seed=3, initial_groups=2, autoscale=False)
    defaults.update(kwargs)
    engine = Scads(**defaults)
    engine.register_entity(EntitySchema(
        name="profiles",
        key_fields=[Field("user_id")],
        value_fields=[Field("name"), Field("birthday")],
    ))
    engine.register_entity(EntitySchema(
        name="friendships",
        key_fields=[Field("f1"), Field("f2")],
        max_per_partition=100,
        column_bounds={"f2": 100},
    ))
    engine.start()
    return engine


class TestEngineCrud:
    def test_put_and_get_round_trip(self):
        engine = simple_engine()
        put = engine.put("profiles", {"user_id": "alice", "name": "Alice", "birthday": "03-14"})
        assert put.success and put.latency > 0
        got = engine.get("profiles", ("alice",))
        assert got.success and got.row["name"] == "Alice"

    def test_get_missing_returns_success_with_no_row(self):
        engine = simple_engine()
        outcome = engine.get("profiles", ("ghost",))
        assert outcome.success and outcome.row is None

    def test_delete_removes_row(self):
        engine = simple_engine()
        engine.put("profiles", {"user_id": "alice", "name": "A", "birthday": "01-01"})
        engine.delete("profiles", ("alice",))
        engine.settle()
        assert engine.get("profiles", ("alice",)).row is None

    def test_schema_validation_enforced_on_put(self):
        engine = simple_engine()
        with pytest.raises(Exception):
            engine.put("profiles", {"user_id": "alice", "unknown_field": 1})

    def test_op_counters_and_sla_trackers_update(self):
        engine = simple_engine()
        engine.put("profiles", {"user_id": "a", "name": "A", "birthday": "01-01"})
        engine.get("profiles", ("a",))
        counts = engine.cumulative_operation_counts()
        assert counts["write"] == 1 and counts["read"] == 1
        assert engine.sla_report("read").request_count == 1

    def test_replication_factor_derived_from_durability_sla(self):
        relaxed = Scads(seed=1, autoscale=False,
                        consistency=ConsistencySpec(durability=DurabilitySLA(probability=0.99)))
        strict = Scads(seed=1, autoscale=False,
                       consistency=ConsistencySpec(durability=DurabilitySLA(probability=0.9999999)))
        assert strict.replication_factor >= relaxed.replication_factor

    def test_rejected_query_raises_with_reason(self):
        engine = simple_engine()
        with pytest.raises(QueryRejected):
            engine.register_query("bad", "SELECT * FROM profiles WHERE name = <n>")


class TestEngineQueries:
    def test_query_over_maintained_index(self):
        engine = simple_engine()
        engine.register_query(
            "friend_birthdays",
            "SELECT p.* FROM friendships f JOIN profiles p ON f.f2 = p.user_id "
            "WHERE f.f1 = <user_id> ORDER BY p.birthday LIMIT 10",
        )
        engine.put("profiles", {"user_id": "bob", "name": "Bob", "birthday": "07-04"})
        engine.put("profiles", {"user_id": "carol", "name": "Carol", "birthday": "01-02"})
        engine.put("friendships", {"f1": "alice", "f2": "bob"})
        engine.put("friendships", {"f1": "alice", "f2": "carol"})
        engine.settle()
        result = engine.query("friend_birthdays", {"user_id": "alice"})
        assert [row["name"] for row in result.rows] == ["Carol", "Bob"]
        assert result.latency > 0

    def test_query_unknown_name_raises(self):
        engine = simple_engine()
        with pytest.raises(KeyError):
            engine.query("nope", {})

    def test_query_latency_counts_toward_read_sla(self):
        engine = simple_engine()
        engine.register_query("friends",
                              "SELECT * FROM friendships WHERE f1 = <u> LIMIT 50")
        engine.put("friendships", {"f1": "a", "f2": "b"})
        engine.settle()
        before = engine.sla_report("read").request_count
        engine.query("friends", {"u": "a"})
        assert engine.sla_report("read").request_count == before + 1

    def test_maintenance_table_lists_rules_for_all_queries(self):
        engine = simple_engine()
        engine.register_query("friends", "SELECT * FROM friendships WHERE f1 = <u> LIMIT 50")
        engine.register_query(
            "friend_birthdays",
            "SELECT p.* FROM friendships f JOIN profiles p ON f.f2 = p.user_id "
            "WHERE f.f1 = <user_id> ORDER BY p.birthday LIMIT 10",
        )
        table = engine.maintenance_table()
        indexes = {rule.index_name for rule in table}
        # Both query indexes plus the auxiliary reverse index the birthday
        # index needs for bounded reverse traversal.
        assert indexes == {"idx_friends", "idx_friend_birthdays", "friendships_by_f2"}


class TestSessionGuaranteesEndToEnd:
    def test_read_your_writes_served_from_primary_when_replicas_lag(self):
        spec = ConsistencySpec(session=SessionGuarantee(read_your_writes=True))
        engine = simple_engine(consistency=spec, seed=5)
        engine.open_session("alice")
        engine.put("profiles", {"user_id": "alice", "name": "Alice", "birthday": "03-14"},
                   session_id="alice")
        # No time passes, so replicas have not applied the write yet; the
        # session guarantee must still see it.
        for _ in range(10):
            outcome = engine.get("profiles", ("alice",), session_id="alice")
            assert outcome.success and outcome.row is not None

    def test_without_guarantee_stale_reads_are_possible(self):
        engine = simple_engine(seed=5)
        engine.put("profiles", {"user_id": "alice", "name": "Alice", "birthday": "03-14"})
        missing = 0
        for _ in range(20):
            outcome = engine.get("profiles", ("alice",))
            if outcome.row is None:
                missing += 1
        assert missing > 0  # eventual consistency: some replicas lag


class TestWriteConsistencyEndToEnd:
    def test_merge_policy_combines_concurrent_field_updates(self):
        def merge(current, incoming):
            merged = dict(current)
            merged.update({k: v for k, v in incoming.items() if v is not None})
            return merged

        spec = ConsistencySpec(write=WriteConsistency(WritePolicy.MERGE, merge_function=merge))
        engine = simple_engine(consistency=spec, seed=6)
        engine.put("profiles", {"user_id": "a", "name": "Alice", "birthday": "03-14"})
        engine.put("profiles", {"user_id": "a", "name": None, "birthday": "12-25"})
        engine.settle()
        row = engine.get("profiles", ("a",)).row
        assert row["name"] == "Alice"  # preserved by the merge
        assert row["birthday"] == "12-25"

    def test_serializable_writes_have_higher_latency_than_lww(self):
        lww = simple_engine(seed=7)
        ser = simple_engine(
            seed=7,
            consistency=ConsistencySpec(write=WriteConsistency(WritePolicy.SERIALIZABLE)),
        )
        lww_latency = []
        ser_latency = []
        for i in range(30):
            lww_latency.append(
                lww.put("profiles", {"user_id": f"u{i}", "name": "x", "birthday": "01-01"}).latency
            )
            lww.run_for(1.0)
            ser_latency.append(
                ser.put("profiles", {"user_id": f"u{i}", "name": "x", "birthday": "01-01"}).latency
            )
            ser.run_for(1.0)
        assert sum(ser_latency) > sum(lww_latency)


class TestArbitrationUnderPartition:
    def _partitioned_engine(self, priority):
        spec = ConsistencySpec(
            session=SessionGuarantee(read_your_writes=True),
            read=ReadConsistency(staleness_bound=30.0),
            priority=priority,
        )
        engine = simple_engine(consistency=spec, seed=8, initial_groups=2)
        engine.put("profiles", {"user_id": "alice", "name": "Alice", "birthday": "03-14"},
                   session_id="alice")
        engine.settle()
        # Partition the client away from every primary so consistency checks
        # cannot be satisfied.
        primaries = {group.primary for group in engine.cluster.groups.values()}
        engine.cluster.network.partition({"client"}, primaries)
        return engine

    def test_availability_first_serves_possibly_stale_data(self):
        engine = self._partitioned_engine([Axis.AVAILABILITY, Axis.READ_CONSISTENCY, Axis.SESSION])
        outcomes = [engine.get("profiles", ("alice",), session_id="alice") for _ in range(10)]
        successes = [o for o in outcomes if o.success]
        assert successes, "availability-first should keep serving"
        assert engine.arbitrator.stale_serves() > 0

    def test_consistency_first_fails_requests(self):
        engine = self._partitioned_engine([Axis.READ_CONSISTENCY, Axis.SESSION, Axis.AVAILABILITY])
        outcomes = [engine.get("profiles", ("alice",), session_id="alice") for _ in range(10)]
        failures = [o for o in outcomes if not o.success]
        assert failures, "consistency-first should reject unverifiable reads"
        assert engine.arbitrator.failed_requests() > 0


class TestFaultTolerance:
    def test_reads_survive_single_replica_crash(self):
        engine = simple_engine(seed=9, initial_groups=1)
        engine.put("profiles", {"user_id": "alice", "name": "Alice", "birthday": "03-14"})
        engine.settle()
        group = list(engine.cluster.groups.values())[0]
        engine.cluster.nodes[group.replicas[0]].crash()
        successes = sum(engine.get("profiles", ("alice",)).success for _ in range(20))
        assert successes == 20

    def test_failure_injector_crash_recovery_end_to_end(self):
        engine = simple_engine(seed=10, initial_groups=1)
        injector = FailureInjector(engine.cluster)
        engine.put("profiles", {"user_id": "alice", "name": "Alice", "birthday": "03-14"})
        engine.settle()
        group = list(engine.cluster.groups.values())[0]
        injector.crash_node(group.primary, at=engine.now + 1.0, duration=30.0)
        engine.run_for(5.0)
        read_during = engine.get("profiles", ("alice",))
        assert read_during.success  # served by a replica
        engine.run_for(60.0)
        assert engine.cluster.nodes[group.primary].alive
