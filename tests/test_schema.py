"""Unit tests for entity schemas and the schema registry."""

from __future__ import annotations

import pytest

from repro.core.schema import (
    EntitySchema,
    Field,
    FieldType,
    Relationship,
    SchemaError,
    SchemaRegistry,
)

pytestmark = pytest.mark.tier1


def profiles_schema():
    return EntitySchema(
        name="profiles",
        key_fields=[Field("user_id", FieldType.STRING)],
        value_fields=[Field("name"), Field("birthday"), Field("age", FieldType.INT)],
    )


def friendships_schema(cap=5000):
    return EntitySchema(
        name="friendships",
        key_fields=[Field("f1"), Field("f2")],
        max_per_partition=cap,
        column_bounds={"f2": cap},
    )


class TestField:
    def test_string_field_accepts_strings(self):
        Field("name", FieldType.STRING).validate("alice")

    def test_int_field_rejects_strings(self):
        with pytest.raises(SchemaError):
            Field("age", FieldType.INT).validate("old")

    def test_float_field_accepts_ints(self):
        Field("score", FieldType.FLOAT).validate(3)

    def test_bool_is_rejected_everywhere(self):
        with pytest.raises(SchemaError):
            Field("age", FieldType.INT).validate(True)

    def test_none_is_allowed(self):
        Field("name").validate(None)


class TestEntitySchema:
    def test_field_accessors(self):
        schema = profiles_schema()
        assert schema.key_field_names == ["user_id"]
        assert "birthday" in schema.value_field_names
        assert schema.has_field("name")
        assert not schema.has_field("nope")
        assert schema.is_key_field("user_id")
        assert schema.key_position("user_id") == 0

    def test_storage_key_extracts_key_tuple(self):
        schema = friendships_schema()
        assert schema.storage_key({"f1": "a", "f2": "b"}) == ("a", "b")

    def test_storage_key_missing_field_raises(self):
        with pytest.raises(SchemaError):
            friendships_schema().storage_key({"f1": "a"})

    def test_validate_row_rejects_unknown_fields(self):
        with pytest.raises(SchemaError):
            profiles_schema().validate_row({"user_id": "u1", "unknown": 1})

    def test_validate_row_rejects_bad_types(self):
        with pytest.raises(SchemaError):
            profiles_schema().validate_row({"user_id": "u1", "age": "young"})

    def test_value_dict_fills_missing_with_none(self):
        values = profiles_schema().value_dict({"user_id": "u1", "name": "Alice"})
        assert values == {"name": "Alice", "birthday": None, "age": None}

    def test_duplicate_field_names_rejected(self):
        with pytest.raises(SchemaError):
            EntitySchema("bad", key_fields=[Field("a")], value_fields=[Field("a")])

    def test_empty_key_rejected(self):
        with pytest.raises(SchemaError):
            EntitySchema("bad", key_fields=[])

    def test_column_bounds_must_reference_known_fields(self):
        with pytest.raises(SchemaError):
            EntitySchema("bad", key_fields=[Field("a")], column_bounds={"zzz": 5})

    def test_rows_per_value_bound_for_single_field_key(self):
        assert profiles_schema().rows_per_value_bound("user_id") == 1

    def test_rows_per_value_bound_for_partition_key(self):
        assert friendships_schema(cap=100).rows_per_value_bound("f1") == 100

    def test_rows_per_value_bound_for_declared_column(self):
        assert friendships_schema(cap=100).rows_per_value_bound("f2") == 100

    def test_rows_per_value_bound_unbounded_returns_none(self):
        schema = EntitySchema("followers", key_fields=[Field("f1"), Field("f2")])
        assert schema.rows_per_value_bound("f1") is None

    def test_rows_per_value_bound_unknown_field_raises(self):
        with pytest.raises(SchemaError):
            profiles_schema().rows_per_value_bound("nope")


class TestSchemaRegistry:
    def test_register_and_lookup(self):
        registry = SchemaRegistry()
        registry.register_entity(profiles_schema())
        assert registry.has_entity("profiles")
        assert registry.entity("profiles").name == "profiles"
        assert len(registry.entities()) == 1

    def test_duplicate_entity_rejected(self):
        registry = SchemaRegistry()
        registry.register_entity(profiles_schema())
        with pytest.raises(SchemaError):
            registry.register_entity(profiles_schema())

    def test_unknown_entity_raises(self):
        with pytest.raises(SchemaError):
            SchemaRegistry().entity("missing")

    def test_relationship_requires_registered_entities(self):
        registry = SchemaRegistry()
        registry.register_entity(profiles_schema())
        with pytest.raises(SchemaError):
            registry.register_relationship(
                Relationship("friends", "profiles", "missing", 100)
            )

    def test_relationship_round_trip(self):
        registry = SchemaRegistry()
        registry.register_entity(profiles_schema())
        registry.register_relationship(Relationship("knows", "profiles", "profiles", 50))
        assert registry.relationship("knows").max_cardinality == 50
        assert registry.relationship("knows").is_bounded
        assert len(registry.relationships()) == 1

    def test_unbounded_relationship_flagged(self):
        registry = SchemaRegistry()
        registry.register_entity(profiles_schema())
        registry.register_relationship(Relationship("follows", "profiles", "profiles", None))
        assert not registry.relationship("follows").is_bounded

    def test_cardinality_bound_passthrough(self):
        registry = SchemaRegistry()
        registry.register_entity(friendships_schema(cap=123))
        assert registry.cardinality_bound("friendships") == 123
