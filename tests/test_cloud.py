"""Unit tests for the utility-computing substrate (repro.cloud)."""

from __future__ import annotations

import pytest

from repro.cloud.billing import BillingMeter
from repro.cloud.instances import INSTANCE_TYPES, Instance, InstanceState, InstanceType
from repro.cloud.pool import InstancePool
from repro.sim.simulator import Simulator

pytestmark = pytest.mark.tier1


class TestInstanceType:
    def test_catalog_contains_small_instances(self):
        assert "m1.small" in INSTANCE_TYPES
        small = INSTANCE_TYPES["m1.small"]
        assert small.hourly_cost == pytest.approx(0.10)
        assert small.boot_delay > 0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            InstanceType("bad", hourly_cost=-1.0, boot_delay=10.0, capacity_ops_per_sec=100)
        with pytest.raises(ValueError):
            InstanceType("bad", hourly_cost=0.1, boot_delay=-1.0, capacity_ops_per_sec=100)
        with pytest.raises(ValueError):
            InstanceType("bad", hourly_cost=0.1, boot_delay=1.0, capacity_ops_per_sec=0)


class TestInstanceLifecycle:
    def test_boot_then_terminate(self):
        instance = Instance("i-1", INSTANCE_TYPES["m1.small"], launch_time=0.0)
        assert instance.state is InstanceState.BOOTING
        assert not instance.is_usable()
        instance.mark_running(120.0)
        assert instance.is_usable()
        instance.terminate(300.0)
        assert instance.state is InstanceState.TERMINATED

    def test_lease_hours_round_up_to_billing_increment(self):
        # The lease is the single source of billing truth (instances carry
        # no cost logic): on-demand bills per started hour.
        meter = BillingMeter()
        lease = meter.open_lease("i-1", INSTANCE_TYPES["m1.small"], now=0.0)
        assert lease.machine_hours(now=1.0) == 1.0
        assert lease.machine_hours(now=3599.0) == 1.0
        assert lease.machine_hours(now=3601.0) == 2.0

    def test_sub_hour_increment_bills_per_started_minute(self):
        per_minute = InstanceType(
            "m1.small.minutely", hourly_cost=0.10, boot_delay=120.0,
            capacity_ops_per_sec=1000, billing_increment=60.0)
        meter = BillingMeter()
        lease = meter.open_lease("i-1", per_minute, now=0.0)
        assert lease.machine_hours(now=1.0) == pytest.approx(60.0 / 3600.0)
        assert lease.machine_hours(now=61.0) == pytest.approx(120.0 / 3600.0)
        meter.close_lease("i-1", now=90.0)
        # The started increment is still charged after close.
        assert lease.cost(now=10_000.0) == pytest.approx(0.10 * 120.0 / 3600.0)

    def test_terminated_instance_cannot_restart(self):
        instance = Instance("i-1", INSTANCE_TYPES["m1.small"], launch_time=0.0)
        instance.terminate(10.0)
        with pytest.raises(ValueError):
            instance.mark_running(20.0)

    def test_double_terminate_is_idempotent(self):
        instance = Instance("i-1", INSTANCE_TYPES["m1.small"], launch_time=0.0)
        instance.terminate(10.0)
        instance.terminate(50.0)
        assert instance.termination_time == 10.0


class TestBillingMeter:
    def test_open_and_close_lease(self):
        meter = BillingMeter()
        meter.open_lease("i-1", INSTANCE_TYPES["m1.small"], now=0.0)
        meter.close_lease("i-1", now=7200.0)
        assert meter.total_machine_hours(now=10_000.0) == pytest.approx(2.0)
        assert meter.total_cost(now=10_000.0) == pytest.approx(0.20)

    def test_open_lease_billed_up_to_now(self):
        meter = BillingMeter()
        meter.open_lease("i-1", INSTANCE_TYPES["m1.small"], now=0.0)
        assert meter.total_machine_hours(now=1800.0) == pytest.approx(1.0)
        assert meter.open_lease_count() == 1

    def test_duplicate_open_lease_rejected(self):
        meter = BillingMeter()
        meter.open_lease("i-1", INSTANCE_TYPES["m1.small"], now=0.0)
        with pytest.raises(ValueError):
            meter.open_lease("i-1", INSTANCE_TYPES["m1.small"], now=10.0)

    def test_close_unknown_lease_rejected(self):
        with pytest.raises(KeyError):
            BillingMeter().close_lease("nope", now=1.0)


class TestInstancePool:
    def _pool(self, max_instances=100):
        sim = Simulator(seed=0)
        return sim, InstancePool(sim, max_instances=max_instances)

    def test_launch_becomes_active_after_boot_delay(self):
        sim, pool = self._pool()
        pool.launch(2)
        assert pool.active_count() == 0
        assert pool.booting_count() == 2
        sim.run_until(INSTANCE_TYPES["m1.small"].boot_delay + 1)
        assert pool.active_count() == 2
        assert pool.booting_count() == 0

    def test_on_ready_callback_runs(self):
        sim, pool = self._pool()
        ready = []
        pool.launch(1, on_ready=lambda instance: ready.append(instance.instance_id))
        sim.run_until(500.0)
        assert len(ready) == 1

    def test_boot_delay_override_zero_is_immediately_active(self):
        _, pool = self._pool()
        pool.launch(3, boot_delay_override=0.0)
        assert pool.active_count() == 3

    def test_terminate_stops_instance(self):
        sim, pool = self._pool()
        instances = pool.launch(1, boot_delay_override=0.0)
        pool.terminate(instances[0].instance_id)
        assert pool.active_count() == 0

    def test_terminate_unknown_raises(self):
        _, pool = self._pool()
        with pytest.raises(KeyError):
            pool.terminate("i-999")

    def test_terminated_while_booting_never_activates(self):
        sim, pool = self._pool()
        instances = pool.launch(1)
        pool.terminate(instances[0].instance_id)
        sim.run_until(1000.0)
        assert pool.active_count() == 0

    def test_pool_cap_enforced(self):
        _, pool = self._pool(max_instances=2)
        pool.launch(2)
        with pytest.raises(ValueError):
            pool.launch(1)

    def test_count_series_records_scaling(self):
        sim, pool = self._pool()
        pool.launch(2, boot_delay_override=0.0)
        sim.run_until(3600.0)
        instances = pool.launch(1, boot_delay_override=0.0)
        sim.run_until(7200.0)
        pool.terminate(instances[0].instance_id)
        series = pool.count_series()
        assert series.max() == 3
        assert series.values[-1] == 2

    def test_cost_accumulates_with_time(self):
        sim, pool = self._pool()
        pool.launch(2, boot_delay_override=0.0)
        sim.run_until(3.5 * 3600)
        # 2 instances x 4 started hours x $0.10.
        assert pool.total_cost() == pytest.approx(0.80)
        assert pool.total_machine_hours() == pytest.approx(8.0)

    def test_scale_down_costs_less_than_keeping_instances(self):
        sim_a, pool_a = self._pool()
        kept = pool_a.launch(4, boot_delay_override=0.0)
        sim_a.run_until(10 * 3600)

        sim_b, pool_b = self._pool()
        released = pool_b.launch(4, boot_delay_override=0.0)
        sim_b.run_until(2 * 3600)
        for instance in released[2:]:
            pool_b.terminate(instance.instance_id)
        sim_b.run_until(10 * 3600)

        assert pool_b.total_cost() < pool_a.total_cost()
