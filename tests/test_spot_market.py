"""Spot market, market-rate billing, and the surge fleet's graceful drain.

Covers the interruptible-capacity layer end to end at unit scale: the
deterministic price/drought trace, purchase options and per-minute market
billing on the pool, the SpotFleetManager's notice -> drain -> hibernate ->
resume state machine (including the hypothesis property that a drain always
completes or cleanly aborts strictly before its revocation deadline), and
the sweep fabric's byte-identity over the interruption-storm scenario.
"""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.instances import ON_DEMAND, SPOT, InstanceState, InstanceType
from repro.cloud.market import NOTICE_SECONDS, SPOT_BILLING_INCREMENT, SpotMarket
from repro.cloud.pool import InstancePool, SpotUnavailableError
from repro.core.provisioning.spotfleet import SpotFleetManager
from repro.parallel.executor import run_sweep
from repro.parallel.scenarios import STANDARD_SUITE, smoke_variant
from repro.parallel.spec import SweepGrid
from repro.sim.simulator import Simulator
from repro.storage.cluster import Cluster

pytestmark = pytest.mark.tier1

FAST_TYPE = InstanceType("t.fast", hourly_cost=0.10, boot_delay=5.0,
                         capacity_ops_per_sec=100)


def make_market(seed=0, instance_type=FAST_TYPE):
    sim = Simulator(seed=seed)
    market = SpotMarket(sim, instance_types=[instance_type])
    return sim, market


def make_fleet(seed=0, groups=1, replication=2, **fleet_kwargs):
    sim = Simulator(seed=seed)
    cluster = Cluster(simulator=sim, replication_factor=replication,
                      initial_groups=groups)
    pool = InstancePool(sim, instance_type=FAST_TYPE,
                        market=SpotMarket(sim))
    fleet = SpotFleetManager(sim, cluster, pool, **fleet_kwargs)
    return sim, cluster, pool, fleet


# ------------------------------------------------------------------- market


class TestSpotMarket:
    def test_price_trace_is_deterministic_per_seed(self):
        _, a = make_market(seed=7)
        _, b = make_market(seed=7)
        _, c = make_market(seed=8)
        trace_a = [a.price(FAST_TYPE.name, at=t * 60.0) for t in range(200)]
        trace_b = [b.price(FAST_TYPE.name, at=t * 60.0) for t in range(200)]
        trace_c = [c.price(FAST_TYPE.name, at=t * 60.0) for t in range(200)]
        assert trace_a == trace_b
        assert trace_a != trace_c

    def test_trace_independent_of_query_order(self):
        # Lazily extending the trace draws fixed variates per step, so the
        # price at step k never depends on which steps were asked first.
        _, a = make_market(seed=3)
        _, b = make_market(seed=3)
        far_first = a.price(FAST_TYPE.name, at=9000.0)
        for t in range(0, 9060, 60):
            b.price(FAST_TYPE.name, at=float(t))
        assert far_first == b.price(FAST_TYPE.name, at=9000.0)

    def test_spot_trades_at_a_discount_on_average(self):
        _, market = make_market(seed=11)
        prices = [market.price(FAST_TYPE.name, at=t * 60.0) for t in range(500)]
        mean = sum(prices) / len(prices)
        assert mean < FAST_TYPE.hourly_cost

    def test_storm_forces_unavailability(self):
        # seed 1: no random drought in the first few steps, so any
        # unavailability below is the storm's doing.
        sim, market = make_market(seed=1)
        assert not market.in_drought(FAST_TYPE.name, at=120.0)  # calm trace
        market.interruption_storm(at=100.0, duration=50.0)
        assert market.in_drought(FAST_TYPE.name, at=120.0)
        sim.run_until(120.0)
        assert not market.available(FAST_TYPE.name)
        assert not market.in_drought(FAST_TYPE.name, at=160.0)  # storm passed

    def test_storm_notifies_registered_instances(self):
        sim, market = make_market()
        seen = []
        market.register("i-0", FAST_TYPE.name,
                        lambda iid, deadline, reason: seen.append((iid, deadline, reason)))
        market.interruption_storm(at=30.0, duration=60.0)
        sim.run_until(31.0)
        assert seen == [("i-0", 30.0 + NOTICE_SECONDS, "storm")]

    def test_deadline_revokes_undrained_instance(self):
        sim, market = make_market()
        revoked = []
        market.set_revoke_hook(revoked.append)
        market.register("i-0", FAST_TYPE.name, lambda *a: None)
        market.interruption_storm(at=10.0, duration=30.0)
        sim.run_until(10.0 + NOTICE_SECONDS + 1.0)
        assert revoked == ["i-0"]
        assert market.notices()[0].revoked

    def test_deregistering_before_deadline_avoids_revocation(self):
        sim, market = make_market()
        revoked = []
        market.set_revoke_hook(revoked.append)
        market.register("i-0", FAST_TYPE.name, lambda *a: None)
        market.interruption_storm(at=10.0, duration=30.0)
        sim.run_until(20.0)
        market.unregister("i-0")  # drained in time
        sim.run_until(10.0 + NOTICE_SECONDS + 1.0)
        assert revoked == []
        assert not market.notices()[0].revoked


# ------------------------------------------------------------ pool + billing


class TestPoolPurchaseOptions:
    def test_spot_launch_requires_market(self):
        pool = InstancePool(Simulator(seed=0), instance_type=FAST_TYPE)
        with pytest.raises(SpotUnavailableError):
            pool.launch(purchase_option=SPOT)

    def test_spot_refused_during_storm_falls_to_caller(self):
        sim = Simulator(seed=0)
        pool = InstancePool(sim, instance_type=FAST_TYPE, market=SpotMarket(sim))
        pool.market.interruption_storm(at=0.0, duration=100.0)
        sim.run_until(10.0)
        assert not pool.spot_available()
        with pytest.raises(SpotUnavailableError):
            pool.launch(purchase_option=SPOT)
        # On-demand is always sellable.
        assert pool.launch(purchase_option=ON_DEMAND)

    def test_spot_lease_bills_per_started_minute_at_market_rate(self):
        sim = Simulator(seed=0)
        market = SpotMarket(sim)
        pool = InstancePool(sim, instance_type=FAST_TYPE, market=market)
        instance = pool.launch(purchase_option=SPOT)[0]
        sim.run_until(150.0)  # 3 started minutes
        pool.terminate(instance.instance_id)
        lease = pool.billing.leases()[0]
        assert lease.machine_hours(sim.now) == pytest.approx(
            3 * SPOT_BILLING_INCREMENT / 3600.0)
        expected = sum(
            market.price(FAST_TYPE.name, at=t) * SPOT_BILLING_INCREMENT / 3600.0
            for t in (0.0, 60.0, 120.0))
        assert lease.cost(sim.now) == pytest.approx(expected)
        split = pool.cost_by_purchase_option()
        assert split[SPOT] == pytest.approx(expected)
        assert ON_DEMAND not in split or split[ON_DEMAND] == 0.0

    def test_hibernate_resume_is_two_leases(self):
        sim = Simulator(seed=0)
        pool = InstancePool(sim, instance_type=FAST_TYPE, market=SpotMarket(sim))
        instance = pool.launch(purchase_option=SPOT)[0]
        sim.run_until(70.0)
        pool.hibernate(instance.instance_id)
        assert instance.state is InstanceState.HIBERNATED
        assert not pool.billing.has_open_lease(instance.instance_id)
        # Resume only goes through when the market will sell spot again.
        sim.run_until(200.0)
        while not pool.spot_available():
            sim.run_until(sim.now + 60.0)
        resumed_at = sim.now
        pool.resume(instance.instance_id)
        assert pool.billing.has_open_lease(instance.instance_id)
        leases = [lease for lease in pool.billing.leases()
                  if lease.instance_id == instance.instance_id]
        assert len(leases) == 2
        # The hibernated gap is never billed.
        assert leases[0].end == 70.0
        assert leases[1].start == resumed_at


# ------------------------------------------------------------------- fleet


class TestSpotFleet:
    def test_surge_attaches_spot_first(self):
        sim, cluster, pool, fleet = make_fleet()
        before = cluster.node_count()
        assert fleet.add_surge(2) == 2
        sim.run_until(FAST_TYPE.boot_delay + 1.0)
        assert cluster.node_count() == before + 2
        assert fleet.pending_surge() == 0
        assert all(inst.purchase_option == SPOT
                   for inst in pool.instances(InstanceState.RUNNING))

    def test_per_group_cap_bounds_surge(self):
        sim, cluster, pool, fleet = make_fleet(groups=2, max_surge_per_group=1)
        assert fleet.surge_headroom() == 2
        assert fleet.add_surge(5) == 2  # one per group, the rest refused
        assert fleet.surge_headroom() == 0
        assert fleet.add_surge(1) == 0

    def test_storm_drains_to_hibernation_before_deadline(self):
        sim, cluster, pool, fleet = make_fleet()
        fleet.add_surge(1)
        sim.run_until(FAST_TYPE.boot_delay + 1.0)
        storm_at = sim.now + 10.0
        pool.market.interruption_storm(at=storm_at, duration=60.0)
        sim.run_until(storm_at + NOTICE_SECONDS + 5.0)
        (record,) = fleet.records()
        assert record.outcome == "hibernated"
        assert record.completed_time < record.deadline
        assert not pool.market.notices()[0].revoked  # drained, never revoked
        assert fleet.hibernated_count() == 1
        assert pool.hibernated_count() == 1

    def test_drained_node_leaves_group_and_resume_rejoins(self):
        sim, cluster, pool, fleet = make_fleet()
        fleet.add_surge(1)
        sim.run_until(FAST_TYPE.boot_delay + 1.0)
        group = next(iter(cluster.groups.values()))
        members_with_surge = len(group.node_ids)
        pool.market.interruption_storm(at=sim.now + 5.0, duration=120.0)
        sim.run_until(sim.now + NOTICE_SECONDS + 10.0)
        assert len(group.node_ids) == members_with_surge - 1
        # Market recovered and capacity is needed again: resume, not re-copy.
        sim.run_until(sim.now + 120.0)
        assert pool.spot_available()
        fleet.tick(node_deficit=1)
        sim.run_until(sim.now + 30.0)
        assert fleet.hibernated_count() == 0
        assert len(group.node_ids) == members_with_surge

    def test_interrupted_while_booting_aborts_cleanly(self):
        sim, cluster, pool, fleet = make_fleet()
        pool.market.interruption_storm(at=2.0, duration=30.0)
        fleet.add_surge(1)  # spot still available at t=0
        sim.run_until(3.0)  # storm lands mid-boot
        (record,) = fleet.records()
        assert record.outcome == "aborted"
        assert record.completed_time < record.deadline
        assert fleet.surge_count() == 0

    def test_fallback_to_on_demand_when_spot_refused(self):
        sim, cluster, pool, fleet = make_fleet()
        pool.market.interruption_storm(at=0.0, duration=100.0)
        sim.run_until(10.0)
        assert fleet.add_surge(1) == 1
        assert fleet.fallback_count() == 1
        sim.run_until(FAST_TYPE.boot_delay + 11.0)
        assert all(inst.purchase_option == ON_DEMAND
                   for inst in pool.instances(InstanceState.RUNNING))

    @pytest.mark.property
    @given(drain_seconds=st.floats(min_value=1.0, max_value=400.0),
           notice_offset=st.floats(min_value=0.0, max_value=200.0))
    @settings(max_examples=25, deadline=None)
    def test_drain_completes_or_aborts_strictly_before_deadline(
            self, drain_seconds, notice_offset):
        """The drain state machine's safety property: whatever the drain
        window and whenever the notice lands (mid-boot included), every
        interruption resolves -- hibernated, aborted, or terminated --
        strictly before the market's revocation deadline, so the market
        never force-revokes an attached replica."""
        sim, cluster, pool, fleet = make_fleet(
            drain_seconds=drain_seconds)
        fleet.add_surge(1)
        pool.market.interruption_storm(at=notice_offset, duration=30.0)
        sim.run_until(notice_offset + NOTICE_SECONDS + drain_seconds + 10.0)
        (record,) = fleet.records()
        assert record.outcome in ("hibernated", "aborted", "terminated")
        assert record.completed_time is not None
        assert record.completed_time < record.deadline
        assert not pool.market.notices()[0].revoked


# ------------------------------------------------------- sweep determinism


class TestStormSweepDeterminism:
    def test_interruption_storm_identical_workers_1_vs_4(self):
        """The storm scenario stays byte-identical across worker counts:
        the market draws from its own RNG streams, so process-pool
        scheduling cannot perturb it."""
        spec = smoke_variant(next(
            s for s in STANDARD_SUITE if s.name == "spot-interruption-storm"))
        grid = SweepGrid(scenario=spec, replicates=2, base_seed=9)
        serial = run_sweep(grid.expand(), workers=1)
        pooled = run_sweep(grid.expand(), workers=4)
        assert len(serial.records) == len(pooled.records) == 2
        for a, b in zip(serial.records, pooled.records):
            assert a.summary.operations == b.summary.operations
            assert a.summary.operation_counts == b.summary.operation_counts
            assert a.summary.read_latency.snapshot() == b.summary.read_latency.snapshot()
            assert a.summary.cost.dollars == b.summary.cost.dollars
            assert a.summary.cost_by_purchase_option == b.summary.cost_by_purchase_option
            assert a.summary.lost_acked_writes == b.summary.lost_acked_writes == 0
            assert a.summary.interruption_outcomes == b.summary.interruption_outcomes
