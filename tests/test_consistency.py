"""Unit tests for the declarative consistency axes (Figure 4)."""

from __future__ import annotations

import pytest

from repro.core.consistency.arbitration import Arbitrator
from repro.core.consistency.sessions import Session, SessionManager
from repro.core.consistency.spec import (
    Axis,
    ConsistencySpec,
    DurabilitySLA,
    PerformanceSLA,
    ReadConsistency,
    SessionGuarantee,
    WriteConsistency,
    WritePolicy,
)
from repro.core.consistency.writes import ConflictResolver
from repro.storage.records import VersionedValue

pytestmark = pytest.mark.tier1


class TestSpecAxes:
    def test_performance_sla_describe(self):
        sla = PerformanceSLA(percentile=99.9, latency=0.1, availability=0.9999)
        text = sla.describe()
        assert "99.9" in text and "100ms" in text

    def test_performance_sla_validation(self):
        with pytest.raises(ValueError):
            PerformanceSLA(percentile=0)
        with pytest.raises(ValueError):
            PerformanceSLA(latency=0)
        with pytest.raises(ValueError):
            PerformanceSLA(availability=0)

    def test_merge_policy_requires_function(self):
        with pytest.raises(ValueError):
            WriteConsistency(policy=WritePolicy.MERGE)

    def test_serializable_requires_quorum(self):
        assert WriteConsistency(policy=WritePolicy.SERIALIZABLE).requires_quorum
        assert not WriteConsistency(policy=WritePolicy.LAST_WRITE_WINS).requires_quorum

    def test_read_consistency_validation(self):
        assert ReadConsistency(600.0).describe().startswith("stale data gone")
        with pytest.raises(ValueError):
            ReadConsistency(0.0)

    def test_durability_validation(self):
        with pytest.raises(ValueError):
            DurabilitySLA(probability=1.0)
        with pytest.raises(ValueError):
            DurabilitySLA(probability=0.999, horizon_hours=0)

    def test_default_spec_describes_every_axis(self):
        description = ConsistencySpec().describe()
        assert set(description) == {
            "performance", "write_consistency", "read_consistency",
            "session_guarantees", "durability",
        }

    def test_priority_ordering(self):
        spec = ConsistencySpec(priority=[Axis.READ_CONSISTENCY, Axis.AVAILABILITY])
        assert spec.prefers(Axis.READ_CONSISTENCY, Axis.AVAILABILITY)
        assert not spec.prefers(Axis.AVAILABILITY, Axis.READ_CONSISTENCY)

    def test_duplicate_priority_rejected(self):
        with pytest.raises(ValueError):
            ConsistencySpec(priority=[Axis.AVAILABILITY, Axis.AVAILABILITY])

    def test_unlisted_axes_rank_last(self):
        spec = ConsistencySpec(priority=[Axis.AVAILABILITY])
        assert spec.prefers(Axis.AVAILABILITY, Axis.DURABILITY)


class TestSessions:
    def _value(self, version, writer="s1"):
        return VersionedValue(value={"a": version}, timestamp=float(version),
                              version=version, writer=writer)

    def test_read_your_writes_rejects_stale_replica_value(self):
        session = Session("s1", SessionGuarantee(read_your_writes=True))
        session.note_write("ns", ("k",), self._value(3))
        assert not session.acceptable("ns", ("k",), self._value(2))
        assert session.acceptable("ns", ("k",), self._value(3))
        assert session.stats.ryw_fallbacks == 1

    def test_read_your_writes_rejects_missing_value(self):
        session = Session("s1", SessionGuarantee(read_your_writes=True))
        session.note_write("ns", ("k",), self._value(1))
        assert not session.acceptable("ns", ("k",), None)

    def test_monotonic_reads_rejects_going_backwards(self):
        session = Session("s1", SessionGuarantee(monotonic_reads=True))
        session.note_read("ns", ("k",), self._value(5))
        assert not session.acceptable("ns", ("k",), self._value(4))
        assert session.acceptable("ns", ("k",), self._value(6))

    def test_no_guarantees_accepts_anything(self):
        session = Session("s1", SessionGuarantee())
        session.note_write("ns", ("k",), self._value(3))
        assert session.acceptable("ns", ("k",), None)

    def test_guarantees_are_per_key(self):
        session = Session("s1", SessionGuarantee(read_your_writes=True))
        session.note_write("ns", ("k1",), self._value(3))
        assert session.acceptable("ns", ("k2",), None)

    def test_manager_reuses_sessions_and_counts_fallbacks(self):
        manager = SessionManager(SessionGuarantee(read_your_writes=True))
        session = manager.open("s1")
        assert manager.open("s1") is session
        session.note_write("ns", ("k",), self._value(2))
        session.acceptable("ns", ("k",), self._value(1))
        assert manager.total_fallbacks() == 1
        assert manager.session_count() == 1
        assert manager.get("missing") is None


class TestConflictResolver:
    def test_last_write_wins_returns_incoming(self):
        resolver = ConflictResolver(WriteConsistency(WritePolicy.LAST_WRITE_WINS))
        result = resolver.resolve({"a": 1}, {"a": 2})
        assert result == {"a": 2}
        assert resolver.write_quorum() == 1
        assert resolver.stats.last_write_wins == 1

    def test_merge_combines_both_writes(self):
        def merge(current, incoming):
            merged = dict(current)
            merged.setdefault("tags", [])
            merged["tags"] = sorted(set(current.get("tags", []) + incoming.get("tags", [])))
            return merged

        resolver = ConflictResolver(WriteConsistency(WritePolicy.MERGE, merge_function=merge))
        result = resolver.resolve({"tags": ["a"]}, {"tags": ["b"]})
        assert result["tags"] == ["a", "b"]
        assert resolver.stats.merged == 1

    def test_merge_with_no_current_returns_incoming(self):
        resolver = ConflictResolver(
            WriteConsistency(WritePolicy.MERGE, merge_function=lambda c, i: c)
        )
        assert resolver.resolve(None, {"x": 1}) == {"x": 1}

    def test_merge_must_return_dict(self):
        resolver = ConflictResolver(
            WriteConsistency(WritePolicy.MERGE, merge_function=lambda c, i: 42)
        )
        with pytest.raises(TypeError):
            resolver.resolve({"a": 1}, {"a": 2})

    def test_serializable_uses_majority_quorum(self):
        resolver = ConflictResolver(
            WriteConsistency(WritePolicy.SERIALIZABLE), replication_factor=3
        )
        assert resolver.write_quorum() == 2
        resolver5 = ConflictResolver(
            WriteConsistency(WritePolicy.SERIALIZABLE), replication_factor=5
        )
        assert resolver5.write_quorum() == 3

    def test_serializable_applies_partial_update_on_top(self):
        resolver = ConflictResolver(WriteConsistency(WritePolicy.SERIALIZABLE))
        result = resolver.resolve({"a": 1, "b": 2}, {"b": 3})
        assert result == {"a": 1, "b": 3}


class TestArbitrator:
    def test_availability_first_serves_stale(self):
        spec = ConsistencySpec(priority=[Axis.AVAILABILITY, Axis.READ_CONSISTENCY])
        arbitrator = Arbitrator(spec)
        decision = arbitrator.resolve_read_conflict(now=1.0, conflict="partition")
        assert decision.served_stale and not decision.failed_request
        assert arbitrator.stale_serves() == 1

    def test_consistency_first_fails_request(self):
        spec = ConsistencySpec(priority=[Axis.READ_CONSISTENCY, Axis.AVAILABILITY])
        arbitrator = Arbitrator(spec)
        decision = arbitrator.resolve_read_conflict(now=1.0, conflict="partition")
        assert decision.failed_request and not decision.served_stale
        assert arbitrator.failed_requests() == 1

    def test_session_conflicts_use_session_axis(self):
        spec = ConsistencySpec(priority=[Axis.SESSION, Axis.AVAILABILITY])
        arbitrator = Arbitrator(spec)
        decision = arbitrator.resolve_session_conflict(now=2.0, conflict="primary down")
        assert decision.winner is Axis.SESSION
        assert decision.failed_request

    def test_decisions_are_recorded_in_order(self):
        arbitrator = Arbitrator(ConsistencySpec())
        arbitrator.resolve_read_conflict(1.0, "a")
        arbitrator.resolve_read_conflict(2.0, "b")
        decisions = arbitrator.decisions()
        assert [d.time for d in decisions] == [1.0, 2.0]
