"""Tier-marker audit: every test module must declare its tier.

``make test`` (tier-1, what CI gates on) runs everything not marked ``slow``;
a new test file that forgets to declare a tier still runs, but silently —
nothing says whether that was a choice.  This audit turns the convention into
a failure: every module under ``tests/`` must carry a module-level
``pytestmark`` naming at least one of the registered tiers, so new suites
(e.g. the cache tier's) land in the default suite deliberately.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

pytestmark = pytest.mark.tier1

TIER_MARKERS = ("tier1", "slow", "property")


def test_every_test_module_declares_a_tier():
    tests_dir = Path(__file__).parent
    offenders = []
    for path in sorted(tests_dir.glob("test_*.py")):
        source = path.read_text(encoding="utf-8")
        has_pytestmark = re.search(r"^pytestmark\s*=", source, re.MULTILINE)
        names_a_tier = any(
            re.search(rf"pytest\.mark\.{marker}\b", source) for marker in TIER_MARKERS
        )
        if not (has_pytestmark and names_a_tier):
            offenders.append(path.name)
    assert not offenders, (
        "test modules without a module-level tier marker "
        f"(add `pytestmark = pytest.mark.tier1` or mark slow/property): {offenders}"
    )
