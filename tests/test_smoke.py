"""End-to-end smoke test: the quickstart path through the public API."""

from __future__ import annotations

import pytest

from repro import Scads
from repro.apps.social_network import SocialNetworkApp

pytestmark = pytest.mark.tier1


@pytest.fixture()
def app() -> SocialNetworkApp:
    engine = Scads(seed=7, initial_groups=2, autoscale=False)
    engine.start()
    return SocialNetworkApp(engine, friend_cap=500, page_size=10)


def test_create_users_and_query_birthdays(app: SocialNetworkApp) -> None:
    engine = app.engine
    app.create_user("alice", "Alice", "03-14", "berkeley")
    app.create_user("bob", "Bob", "07-04", "oakland")
    app.create_user("carol", "Carol", "01-02", "berkeley")
    app.add_friendship("alice", "bob")
    app.add_friendship("alice", "carol")
    engine.settle()

    friends = app.friends_page("alice")
    assert len(friends.rows) == 2

    birthdays = app.birthdays_page("alice")
    names = [row["name"] for row in birthdays.rows]
    # Sorted by birthday: Carol (01-02) before Bob (07-04).
    assert names == ["Carol", "Bob"]

    fof = app.friends_of_friends_page("bob")
    fof_ids = {row["user_id"] for row in fof.rows}
    assert "carol" in fof_ids


def test_maintenance_table_matches_figure_3(app: SocialNetworkApp) -> None:
    rules = app.engine.maintenance_table()
    rows = {(rule.index_name, rule.table, rule.field) for rule in rules}
    assert ("idx_friends", "friendships", "*") in rows
    assert ("idx_friend_birthdays", "profiles", "birthday") in rows
    assert ("idx_friend_birthdays", "friendships", "*") in rows
    assert ("idx_friends_of_friends", "friendships", "*") in rows
    # No rule dispatches friends-of-friends maintenance on profile changes,
    # matching Figure 3.
    assert not any(
        rule.index_name == "idx_friends_of_friends" and rule.table == "profiles"
        for rule in rules
    )


def test_sla_tracking_records_latencies(app: SocialNetworkApp) -> None:
    app.create_user("dave", "Dave", "11-30")
    outcome = app.view_profile("dave", "dave")
    assert outcome.success
    report = app.engine.sla_report("read")
    assert report.request_count >= 1
