"""Tests for the parallel experiment fabric (repro.parallel).

Correctness contract under test:

* **Determinism** — the same expanded grid produces byte-identical per-run
  results under ``workers=1`` and ``workers=4``: identical operation counts,
  SLA reports, and percentile snapshots, because every run is a pure function
  of (scenario spec, seed) and seeds are assigned at expansion time from
  ``SeedSequence(base_seed).spawn``.
* **Failure isolation** — one poisoned spec becomes one structured
  :class:`RunFailure` (with the traceback); sibling runs are unaffected.
* **Mergeability** — merged per-cell reports match what a single estimator
  fed the concatenated samples would report.
* **Transportability** — run summaries survive pickling (the cross-process
  contract the pool relies on).
"""

from __future__ import annotations

import pickle

import pytest

from repro.parallel.executor import execute_run, run_scenario, run_sweep
from repro.parallel.results import RunFailure, RunSuccess
from repro.parallel.scenarios import STANDARD_SUITE, smoke_grid, suites
from repro.parallel.spec import (
    RunSpec,
    ScenarioSpec,
    SweepGrid,
    TraceSpec,
    derive_seeds,
)

pytestmark = pytest.mark.tier1


def tiny_scenario(**overrides) -> ScenarioSpec:
    """A seconds-long scenario cheap enough for tier-1 process-pool tests."""
    base = ScenarioSpec(
        name="tiny",
        trace=TraceSpec("constant", {"rate": 20.0}),
        duration=12.0,
        n_users=30,
        friend_cap=8,
        initial_groups=2,
        control_interval=6.0,
    )
    return base.with_overrides(**overrides) if overrides else base


# ------------------------------------------------------------- spec expansion


class TestSweepExpansion:
    def test_grid_is_cartesian_product_times_replicates(self):
        grid = SweepGrid(
            scenario=tiny_scenario(),
            axes={"trace.rate": [10.0, 20.0], "n_users": [30, 60, 90]},
            replicates=2,
        )
        runs = grid.expand()
        assert len(runs) == grid.run_count() == 2 * 3 * 2
        assert runs[0].cell == "trace.rate=10.0,n_users=30"
        assert runs[0].run_id.endswith("#r0") and runs[1].run_id.endswith("#r1")
        # Last axis varies fastest; overrides land in the right layer.
        assert runs[2].scenario.n_users == 60
        assert runs[2].scenario.trace.params["rate"] == 10.0
        assert runs[6].scenario.trace.params["rate"] == 20.0

    def test_engine_knob_axis_reaches_the_knob_dict(self):
        grid = SweepGrid(scenario=tiny_scenario(),
                         axes={"engine_knobs.cache": [False, True]})
        runs = grid.expand()
        assert runs[0].scenario.engine_knobs == {"cache": False}
        assert runs[1].scenario.engine_knobs == {"cache": True}

    def test_unknown_parameter_rejected_at_expansion(self):
        grid = SweepGrid(scenario=tiny_scenario(), axes={"no_such_knob": [1]})
        with pytest.raises(ValueError, match="no_such_knob"):
            grid.expand()

    def test_seeds_depend_only_on_base_seed_and_index(self):
        seeds_a = derive_seeds(7, 6)
        seeds_b = derive_seeds(7, 6)
        assert seeds_a == seeds_b
        assert len(set(seeds_a)) == len(seeds_a)  # spawn children are distinct
        assert derive_seeds(8, 6) != seeds_a
        # A run keeps its seed whether or not later runs exist.
        assert derive_seeds(7, 3) == seeds_a[:3]

    def test_replicates_of_one_cell_get_distinct_seeds(self):
        runs = SweepGrid(scenario=tiny_scenario(), replicates=4).expand()
        assert len({run.seed for run in runs}) == 4

    def test_overrides_do_not_mutate_the_base_scenario(self):
        base = tiny_scenario()
        changed = base.with_overrides(**{"trace.rate": 99.0,
                                         "engine_knobs.cache": True})
        assert base.trace.params["rate"] == 20.0
        assert base.engine_knobs == {}
        assert changed.trace.params["rate"] == 99.0

    def test_standard_suite_scenarios_all_expand(self):
        for scenario in STANDARD_SUITE:
            runs = SweepGrid(scenario=scenario, replicates=2).expand()
            assert len(runs) == 2
            assert runs[0].scenario.trace.build().rate_at(0.0) >= 0.0
        assert set(suites()) == {"standard", "smoke"}


# -------------------------------------------------------- executor determinism


class TestSweepDeterminism:
    def test_workers_1_vs_4_identical_per_run_results(self):
        """The acceptance bar: per-run op counts and percentile snapshots are
        identical whatever the worker count."""
        grid = smoke_grid(runs=4, base_seed=3, duration=10.0, rate=25.0)
        serial = run_sweep(grid, workers=1)
        pooled = run_sweep(grid, workers=4)
        assert len(serial.records) == len(pooled.records) == 4
        for a, b in zip(serial.records, pooled.records):
            assert isinstance(a, RunSuccess) and isinstance(b, RunSuccess)
            assert a.run_id == b.run_id and a.seed == b.seed
            assert a.summary.operations == b.summary.operations
            assert a.summary.operation_counts == b.summary.operation_counts
            assert a.summary.read_report == b.summary.read_report
            assert a.summary.write_report == b.summary.write_report
            assert a.summary.read_latency.snapshot() == b.summary.read_latency.snapshot()
            assert a.summary.cost.dollars == b.summary.cost.dollars

    def test_progress_streams_every_completion(self):
        grid = smoke_grid(runs=3, duration=5.0, rate=10.0)
        seen = []
        run_sweep(grid, workers=2,
                  progress=lambda done, total, record: seen.append((done, total,
                                                                    record.ok)))
        assert [done for done, _, _ in seen] == [1, 2, 3]
        assert all(total == 3 and ok for _, total, ok in seen)

    def test_merged_cell_percentiles_match_concatenated_samples(self):
        import numpy as np

        grid = smoke_grid(runs=3, base_seed=5, duration=10.0, rate=25.0)
        result = run_sweep(grid, workers=1)
        report = result.cell_reports()[0]
        merged = report.read_latency
        # Ground truth: one estimator fed the concatenation of all runs' read
        # latencies (reconstructed from the per-run estimators' raw samples).
        all_samples = np.concatenate(
            [r.summary.read_latency._merged() for r in result.records])
        assert merged.percentile(99.0) == pytest.approx(
            float(np.percentile(all_samples, 99.0)))
        assert report.read_report.observed_percentile_latency == pytest.approx(
            merged.percentile(report.read_report.target_percentile))
        assert report.operations == sum(r.summary.operations
                                        for r in result.records)
        assert report.cost.requests_served == sum(
            r.summary.cost.requests_served for r in result.records)


# ---------------------------------------------------------- failure isolation


class TestFailureIsolation:
    def poisoned_runs(self):
        good = smoke_grid(runs=3, base_seed=1, duration=6.0, rate=15.0).expand()
        poison = RunSpec(
            index=1, run_id="poison#r0", cell="poison", params={}, replicate=0,
            seed=good[1].seed,
            scenario=tiny_scenario().with_overrides(
                trace=TraceSpec("no-such-trace", {})),
        )
        return [good[0], poison, good[2]]

    def test_poisoned_spec_yields_error_record_and_spares_siblings(self):
        records = run_sweep(self.poisoned_runs(), workers=2).records
        assert [r.ok for r in records] == [True, False, True]
        failure = records[1]
        assert isinstance(failure, RunFailure)
        assert failure.error_type == "ValueError"
        assert "no-such-trace" in failure.message
        assert "Traceback" in failure.traceback
        # Siblings match a run of the same specs without the poison present.
        clean = run_sweep([self.poisoned_runs()[0]], workers=1).records[0]
        assert clean.summary.operations == records[0].summary.operations

    def test_inline_execution_isolates_failures_identically(self):
        records = run_sweep(self.poisoned_runs(), workers=1).records
        assert [r.ok for r in records] == [True, False, True]
        assert records[1].error_type == "ValueError"

    def test_execute_run_never_raises(self):
        bad = RunSpec(index=0, run_id="bad#r0", cell="bad", params={},
                      replicate=0, seed=0,
                      scenario=tiny_scenario(mix="no-such-mix"))
        record = execute_run(bad)
        assert isinstance(record, RunFailure)
        assert "no-such-mix" in record.message

    def test_all_failed_cell_skipped_in_cell_reports(self):
        result = run_sweep([self.poisoned_runs()[1]], workers=1)
        assert result.cell_reports() == []
        assert len(result.failures) == 1


# ------------------------------------------------------------ transportability


class TestPortableSummaries:
    def test_run_records_pickle_roundtrip(self):
        grid = smoke_grid(runs=1, duration=5.0, rate=10.0)
        record = run_sweep(grid, workers=1).records[0]
        clone = pickle.loads(pickle.dumps(record))
        assert clone.summary.operations == record.summary.operations
        assert clone.summary.read_latency.snapshot() == \
            record.summary.read_latency.snapshot()
        assert clone.summary.read_report == record.summary.read_report

    def test_run_scenario_honours_engine_knobs(self):
        scenario = tiny_scenario(**{"engine_knobs.cache": False})
        summary = run_scenario(scenario, seed=2)
        assert summary.cache_hit_rate == 0.0
        plain = run_scenario(tiny_scenario(), seed=2)
        assert plain.cache_hit_rate > 0.0  # the cache tier is on by default

    def test_cell_rescoring_against_alternative_sla_targets(self):
        grid = smoke_grid(runs=2, base_seed=4, duration=8.0, rate=20.0)
        report = run_sweep(grid, workers=1).cell_reports()[0]
        # Attainment is monotone in the target and hits 1.0 at the max.
        loose = report.read_attainment_at(report.read_latency.max())
        tight = report.read_attainment_at(report.read_latency.percentile(50))
        assert loose == 1.0
        assert 0.0 < tight <= loose
