"""Observability layer: tracing, telemetry registry, attribution, timeline.

Covers the layer's three contracts:

* **determinism** — trace sampling is a per-stream counter modulo, never an
  RNG draw, so a telemetry-on run produces byte-identical operation results
  to a telemetry-off run with the same seed;
* **reconciliation** — a sampled trace's on-path span durations sum to the
  operation's recorded end-to-end latency (float tolerance), across reads,
  writes, cache hits, range fan-outs, and query dereference composition;
* **mergeability** — registries, traces, and timelines pickle and merge
  exactly (the sweep-fabric tests in test_trace_sweep.py assert the
  worker-count independence end to end).
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro import Scads
from repro.core.schema import EntitySchema, Field
from repro.obs import (
    SPAN_KINDS,
    DecisionTimeline,
    ProvisioningDecision,
    SlaVerdict,
    Span,
    Telemetry,
    TelemetryConfig,
    TraceRecord,
    Tracer,
    attribute_windows,
    format_attribution,
)
from repro.obs.telemetry import resolve_telemetry_config

pytestmark = pytest.mark.tier1


def traced_engine(**kwargs) -> Scads:
    defaults = dict(seed=3, initial_groups=2, autoscale=False,
                    telemetry=TelemetryConfig(trace_sample_interval=4))
    defaults.update(kwargs)
    engine = Scads(**defaults)
    engine.register_entity(EntitySchema(
        name="profiles",
        key_fields=[Field("user_id")],
        value_fields=[Field("name"), Field("birthday")],
    ))
    engine.register_entity(EntitySchema(
        name="friendships",
        key_fields=[Field("f1"), Field("f2")],
        max_per_partition=100,
        column_bounds={"f2": 100},
    ))
    engine.register_query(
        "friend_birthdays",
        "SELECT p.* FROM friendships f JOIN profiles p ON f.f2 = p.user_id "
        "WHERE f.f1 = <user_id> ORDER BY p.birthday LIMIT 10",
    )
    engine.start()
    return engine


def drive(engine: Scads, users: int = 24) -> list:
    """A deterministic workload touching every traced path; returns the
    per-operation latencies in issue order (the determinism fingerprint)."""
    latencies = []
    for i in range(users):
        uid = f"u{i}"
        result = engine.put("profiles", {"user_id": uid, "name": uid.upper(),
                                         "birthday": f"{1 + i % 12:02d}-01"})
        latencies.append(result.latency)
        for friend in range(min(i, 5)):
            result = engine.put("friendships", {"f1": uid, "f2": f"u{friend}"})
            latencies.append(result.latency)
    engine.settle()
    for i in range(users):
        outcome = engine.get("profiles", (f"u{i}",))
        latencies.append(outcome.latency)
        result = engine.query("friend_birthdays", {"user_id": f"u{i}"})
        latencies.append(result.latency)
    engine.run_for(30.0)
    return latencies


# --------------------------------------------------------------- registry


class TestTelemetryRegistry:
    def test_counter_gauge_histogram_basics(self):
        telemetry = Telemetry()
        telemetry.count("a.ops")
        telemetry.count("a.ops", 4)
        telemetry.gauge("peak", 3.0)
        telemetry.gauge("peak", 2.0)  # high-water mark: lower value ignored
        telemetry.observe("lat", 0.1)
        telemetry.observe("lat", 0.3)
        assert telemetry.counters["a.ops"] == 5
        assert telemetry.gauges["peak"] == 3.0
        assert len(telemetry.histogram("lat")) == 2
        snapshot = telemetry.snapshot()
        assert snapshot["counters"]["a.ops"] == 5
        assert snapshot["histograms"]["lat"]["count"] == 2.0
        json.dumps(snapshot)  # JSON-able throughout

    def test_merge_semantics(self):
        a, b = Telemetry(), Telemetry()
        a.count("ops", 2)
        b.count("ops", 3)
        a.gauge("peak", 1.0)
        b.gauge("peak", 5.0)
        a.observe("lat", 0.1)
        b.observe("lat", 0.2)
        b.observe("only_b", 9.0)
        a.merge(b)
        assert a.counters["ops"] == 5  # counters sum
        assert a.gauges["peak"] == 5.0  # gauges max
        assert len(a.histogram("lat")) == 2  # histograms union
        assert a.histogram("only_b").max() == 9.0

    def test_set_histogram_copies(self):
        from repro.metrics.percentiles import PercentileEstimator
        source = PercentileEstimator()
        source.add(0.5)
        telemetry = Telemetry()
        telemetry.set_histogram("lat", source)
        source.add(2.0)  # later samples must not leak into the registry
        assert len(telemetry.histogram("lat")) == 1
        telemetry.set_histogram("lat", source)  # idempotent overwrite
        assert len(telemetry.histogram("lat")) == 2

    def test_config_resolution_and_validation(self):
        assert resolve_telemetry_config(None) is None
        assert resolve_telemetry_config(False) is None
        assert resolve_telemetry_config(True) == TelemetryConfig()
        config = TelemetryConfig(trace_sample_interval=8)
        assert resolve_telemetry_config(config) is config
        with pytest.raises(TypeError):
            resolve_telemetry_config("yes")
        with pytest.raises(ValueError):
            TelemetryConfig(trace_sample_interval=0)


# ----------------------------------------------------------------- tracer


class TestTracer:
    def test_sampling_lattice_is_counter_modulo(self):
        tracer = Tracer(sample_interval=4)
        sampled = []
        for i in range(10):
            if tracer.maybe_begin("read", now=float(i)):
                tracer.end(latency=0.01)
                sampled.append(i)
        assert sampled == [0, 4, 8]  # first op sampled, then every Nth
        # Streams sample independently: a fresh stream starts at its own 0.
        assert tracer.maybe_begin("write", now=99.0)
        tracer.end(latency=0.02)
        assert [t.op for t in tracer.traces] == ["read"] * 3 + ["write"]

    def test_max_traces_caps_appends(self):
        tracer = Tracer(sample_interval=1, max_traces=2)
        for i in range(5):
            if tracer.maybe_begin("read", now=float(i)):
                tracer.end(latency=0.01)
        assert len(tracer.traces) == 2
        assert [t.start for t in tracer.traces] == [0.0, 1.0]  # prefix kept

    def test_demote_and_repromote_for_parallel_composition(self):
        tracer = Tracer(sample_interval=1)
        assert tracer.maybe_begin("query", now=0.0)
        mark = tracer.mark()
        tracer.add("service", 0.010)  # loser leg
        winner_start = tracer.mark()
        tracer.add("service", 0.030)  # winner leg
        winner_end = tracer.mark()
        tracer.demote_since(mark)
        tracer.keep_on_path(winner_start, winner_end)
        record = tracer.end(latency=0.030)
        assert record.reconciles()
        assert record.kind_totals() == {"service": 0.030}
        assert record.kind_totals(include_off_path=True) == {"service": 0.040}

    def test_reconciliation_tolerance(self):
        record = TraceRecord(trace_id=0, op="read", start=0.0, latency=0.1,
                             success=True,
                             spans=[Span("network", 0.04), Span("service", 0.06)])
        assert record.reconciles()
        record.spans.append(Span("queue", 0.01))
        assert not record.reconciles()

    def test_end_feeds_telemetry_span_histograms(self):
        telemetry = Telemetry()
        tracer = Tracer(sample_interval=1, telemetry=telemetry)
        tracer.maybe_begin("read", now=0.0)
        tracer.add("network", 0.01)
        tracer.add("service", 0.02, off_path=True)
        tracer.end(latency=0.01)
        assert len(telemetry.histogram("trace.read.latency")) == 1
        assert len(telemetry.histogram("span.network")) == 1
        # Off-path spans stay out of the attribution histograms.
        assert len(telemetry.histogram("span.service")) == 0


# ------------------------------------------------------------ driven engine


class TestEngineTracing:
    def test_all_sampled_traces_reconcile(self):
        engine = traced_engine()
        drive(engine)
        traces = engine.traces()
        assert len(traces) >= 10
        assert {t.op for t in traces} >= {"read", "write", "query"}
        for trace in traces:
            assert trace.reconciles(), trace.describe()
            assert all(span.kind in SPAN_KINDS for span in trace.spans)

    def test_same_seed_identical_with_telemetry_on_and_off(self):
        on = drive(traced_engine(seed=7))
        off = drive(traced_engine(seed=7, telemetry=None))
        assert on == off  # byte-identical latencies: no RNG perturbation

    def test_cache_hit_traces(self):
        engine = traced_engine(cache=True,
                               telemetry=TelemetryConfig(trace_sample_interval=1))
        engine.put("profiles", {"user_id": "a", "name": "A", "birthday": "01-01"})
        engine.settle()
        engine.get("profiles", ("a",))  # miss, fills the cache
        engine.get("profiles", ("a",))  # hit
        hits = [t for t in engine.traces()
                if any(s.kind == "cache_hit" for s in t.spans)]
        assert hits and all(t.reconciles() for t in hits)

    def test_telemetry_off_is_absent_everywhere(self):
        engine = traced_engine(telemetry=None)
        drive(engine, users=4)
        assert engine.telemetry is None and engine.tracer is None
        assert engine.timeline is None
        assert engine.traces() == []
        assert engine.collect_telemetry() is None

    def test_collect_telemetry_counters_and_idempotence(self):
        engine = traced_engine()
        drive(engine, users=8)
        telemetry = engine.collect_telemetry()
        counts = engine.cumulative_operation_counts()
        assert telemetry.counters["engine.read.ops"] == counts["read"]
        assert telemetry.counters["engine.write.ops"] == counts["write"]
        assert telemetry.counters["router.read"] > 0
        assert len(telemetry.histogram("engine.read.latency")) > 0
        first = telemetry.snapshot()
        assert engine.collect_telemetry().snapshot() == first  # idempotent


# ------------------------------------------------------------- attribution


def make_trace(trace_id: int, start: float, latency: float,
               kinds: dict) -> TraceRecord:
    spans = [Span(kind, duration) for kind, duration in kinds.items()]
    return TraceRecord(trace_id=trace_id, op="read", start=start,
                       latency=latency, success=True, spans=spans)


class TestAttribution:
    def test_windows_bucket_and_rank(self):
        traces = [
            make_trace(0, 10.0, 0.010, {"network": 0.002, "service": 0.008}),
            make_trace(1, 20.0, 0.100, {"queue": 0.090, "service": 0.010}),
            make_trace(2, 70.0, 0.050, {"service": 0.050}),
        ]
        reports = attribute_windows(traces, window=60.0)
        assert [r.start for r in reports] == [0.0, 60.0]
        first = reports[0]
        assert first.trace_count == 2
        # Worst decile of 2 traces = 1 trace: the 100 ms queue-bound one.
        assert first.worst_count == 1
        assert first.kind_seconds == {"queue": 0.090, "service": 0.010}
        assert first.kind_fractions()["queue"] == pytest.approx(0.9)
        assert first.percentile_latency == pytest.approx(0.0991)

    def test_format_and_validation(self):
        assert format_attribution([]) == "(no traces)"
        report = attribute_windows(
            [make_trace(0, 0.0, 0.01, {"service": 0.01})], window=60.0)[0]
        assert "service 100.0%" in report.describe()
        with pytest.raises(ValueError):
            attribute_windows([], window=0.0)
        with pytest.raises(ValueError):
            attribute_windows([], worst_fraction=0.0)

    def test_engine_traces_attribute(self):
        engine = traced_engine()
        drive(engine)
        reports = attribute_windows(engine.traces(), window=30.0)
        assert reports
        for report in reports:
            assert report.trace_count > 0
            assert set(report.kind_seconds) <= SPAN_KINDS


# ----------------------------------------------------------------- timeline


class TestDecisionTimeline:
    def test_autoscaling_engine_records_decisions(self):
        engine = traced_engine(autoscale=True, control_interval=10.0)
        drive(engine)
        timeline = engine.timeline
        assert timeline.decisions
        decision = timeline.decisions[0]
        assert decision.action_kind in {"scale_up", "scale_down",
                                        "repartition", "hold"}
        assert decision.backend
        assert decision.sizing_detail  # the SizingBreakdown explanation
        assert any(v.op == "read" for v in decision.sla_verdicts)
        assert timeline.events  # adopted groups at minimum
        assert {e.kind for e in timeline.events} <= {"rent", "release", "attach"}
        json.dumps(timeline.snapshot())
        assert "t=" in timeline.describe(last=2)

    def test_merge_concatenates(self):
        a, b = DecisionTimeline(), DecisionTimeline()
        a.record_event(1.0, "rent", 3)
        b.record_event(2.0, "release", 3, group_id="g0")
        b.record_decision(ProvisioningDecision(
            time=2.0, action_kind="hold", groups_before=1, groups_after=1,
            target_nodes=2, forecast_rate=10.0, reason="test",
            sla_verdicts=[SlaVerdict("read", True, 0.01, 0.15, 5)],
        ))
        a.merge(b)
        assert [e.kind for e in a.events] == ["rent", "release"]
        assert len(a.decisions) == 1


# ------------------------------------------------------------------ pickling


class TestPickling:
    def test_engine_payloads_round_trip(self):
        engine = traced_engine(autoscale=True, control_interval=10.0)
        drive(engine)
        telemetry = engine.collect_telemetry()
        restored = pickle.loads(pickle.dumps(telemetry))
        assert restored.snapshot() == telemetry.snapshot()

        traces = engine.traces()
        restored_traces = pickle.loads(pickle.dumps(traces))
        assert [(t.trace_id, t.op, t.latency) for t in restored_traces] == \
               [(t.trace_id, t.op, t.latency) for t in traces]
        assert all(t.reconciles() for t in restored_traces)

        timeline = pickle.loads(pickle.dumps(engine.timeline))
        assert timeline.snapshot() == engine.timeline.snapshot()

    def test_tracer_drops_in_flight_state(self):
        tracer = Tracer(sample_interval=1)
        tracer.maybe_begin("read", now=0.0)
        tracer.add("network", 0.01)
        restored = pickle.loads(pickle.dumps(tracer))
        assert not restored.active  # open span list never crosses processes
        assert restored.telemetry is None
        # The op-count lattice survives, so sampling continues correctly.
        assert restored.maybe_begin("read", now=1.0)
