"""Smoke tests that the example scripts run end-to-end.

Only the fast examples are executed here (the autoscaling example runs a
longer simulation and is covered by the equivalent benchmark instead).
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

pytestmark = pytest.mark.tier1

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")
SRC_DIR = os.path.join(os.path.dirname(__file__), "..", "src")


def _run_example(name: str, timeout: float = 240.0) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name)],
        capture_output=True, text=True, timeout=timeout, env=env, check=False,
    )


def test_quickstart_example_runs():
    result = _run_example("quickstart.py")
    assert result.returncode == 0, result.stderr
    assert "rejected as expected" in result.stdout
    assert "alice's friends by upcoming birthday" in result.stdout
    assert "index maintenance table" in result.stdout


def test_consistency_tradeoffs_example_runs():
    result = _run_example("consistency_tradeoffs.py")
    assert result.returncode == 0, result.stderr
    assert "=== strict ===" in result.stdout
    assert "partition arbitration" in result.stdout


def test_trace_demo_example_runs():
    result = _run_example("trace_demo.py")
    assert result.returncode == 0, result.stderr
    assert "top-3 slowest traces" in result.stdout
    assert "per-window p99 latency attribution" in result.stdout
    assert "provisioning decision timeline" in result.stdout
    # Every sampled trace reconciled (the N/N line prints the same number
    # twice when none diverged).
    for line in result.stdout.splitlines():
        if line.startswith("span-sum reconciliation:"):
            sampled, total = line.split()[2].split("/")
            assert sampled == total
            break
    else:
        raise AssertionError("reconciliation line missing from demo output")
