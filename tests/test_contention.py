"""Noisy neighbors as a first-class fault: the contention layer end to end.

Covers the substrate (host placement with replica-group anti-affinity, the
deterministic per-host co-tenant load process, service-side latency
inflation and the residual estimator), the diagnosis (per-host health
aggregation and the monitor's contention-vs-capacity window classification,
which never consults the tracer), the remediation plumbing (host
quarantine after evacuation, the controller's fractional scale-down
hysteresis), the ``host_degradation`` fault's bookkeeping and fabric
wiring, worst-decile span attribution on contention-shaped traces, and the
sweep fabric's byte-identity over the ``noisy-neighbor-episode`` scenario.
"""

from __future__ import annotations

import math
from types import SimpleNamespace

import pytest

from repro.core.engine import Scads
from repro.core.provisioning.monitor import SLAMonitor, WindowObservation
from repro.metrics.sla import SLAReport
from repro.ml.features import WorkloadFeatures
from repro.ml.performance_model import LatencyPercentileModel, PropagationLagModel
from repro.obs.attribution import attribute_windows
from repro.obs.tracing import Span, TraceRecord
from repro.parallel.executor import run_sweep
from repro.parallel.scenarios import STANDARD_SUITE, smoke_variant
from repro.parallel.spec import FAULT_KINDS, SweepGrid
from repro.sim.hosts import (
    ContentionConfig,
    ContentionProcess,
    HostMap,
    resolve_contention_config,
)
from repro.sim.latency import ConstantLatency, QueueingLatency
from repro.sim.simulator import Simulator
from repro.storage.cluster import Cluster
from repro.storage.failure import FailureInjector

pytestmark = pytest.mark.tier1


# ---------------------------------------------------------------- host map


class TestHostMap:
    def test_least_occupied_with_tie_by_creation_order(self):
        hm = HostMap(tenancy=2)
        assert hm.assign("a") == "host-0"
        assert hm.assign("b") == "host-0"  # host-0 has room, no new host
        assert hm.assign("c") == "host-1"  # host-0 full
        assert hm.assign("d") == "host-1"
        assert hm.hosts() == ("host-0", "host-1")
        assert hm.nodes_on("host-0") == ("a", "b")

    def test_avoid_set_opens_a_new_host(self):
        hm = HostMap(tenancy=4)
        hm.assign("a")
        assert hm.assign("b", avoid=("host-0",)) == "host-1"
        assert hm.host_of("b") == "host-1"

    def test_release_frees_the_slot(self):
        hm = HostMap(tenancy=1)
        hm.assign("a")
        hm.release("a")
        assert hm.host_of("a") is None
        # The freed slot is reused before a new host is opened.
        assert hm.assign("b") == "host-0"
        hm.release("never-placed")  # no-op, never raises

    def test_double_assignment_and_bad_tenancy_raise(self):
        hm = HostMap(tenancy=2)
        hm.assign("a")
        with pytest.raises(ValueError):
            hm.assign("a")
        with pytest.raises(ValueError):
            HostMap(tenancy=0)

    def test_resolve_contention_config_forms(self):
        assert resolve_contention_config(None) is None
        assert resolve_contention_config(False) is None
        assert resolve_contention_config(True).tenancy == 4
        assert resolve_contention_config({"tenancy": 2}).tenancy == 2
        cfg = ContentionConfig(tenancy=8)
        assert resolve_contention_config(cfg) is cfg
        with pytest.raises(TypeError):
            resolve_contention_config("hosts")


# ------------------------------------------------------ contention process


def make_process(seed, **cfg):
    sim = Simulator(seed=seed)
    config = ContentionConfig(**cfg)
    return ContentionProcess(sim, HostMap(tenancy=config.tenancy), config)


SPONTANEOUS = dict(spontaneous_rate=0.3, intensity_mean=2.5, step_seconds=60.0)


class TestContentionProcess:
    def test_trace_is_deterministic_per_seed(self):
        a = make_process(7, **SPONTANEOUS)
        b = make_process(7, **SPONTANEOUS)
        c = make_process(8, **SPONTANEOUS)
        trace_a = [a.factor_at("host-0", t * 60.0) for t in range(200)]
        trace_b = [b.factor_at("host-0", t * 60.0) for t in range(200)]
        trace_c = [c.factor_at("host-0", t * 60.0) for t in range(200)]
        assert trace_a == trace_b
        assert trace_a != trace_c
        assert any(f > 1.0 for f in trace_a)  # episodes actually fire
        assert any(f == 1.0 for f in trace_a)  # and end

    def test_trace_independent_of_query_order(self):
        # Every step consumes exactly three variates whether or not an
        # episode fires, so the factor at step k never depends on which
        # steps were asked first (the market's lazy-trace property).
        a = make_process(3, **SPONTANEOUS)
        b = make_process(3, **SPONTANEOUS)
        far_first = a.factor_at("host-0", 9000.0)
        for t in range(0, 9060, 60):
            b.factor_at("host-0", float(t))
        assert far_first == b.factor_at("host-0", 9000.0)

    def test_per_host_streams_are_independent(self):
        # Interrogating one host never shifts another host's trace.
        a = make_process(11, **SPONTANEOUS)
        b = make_process(11, **SPONTANEOUS)
        for t in range(100):
            b.factor_at("other-host", t * 60.0)
        trace_a = [a.factor_at("host-0", t * 60.0) for t in range(100)]
        trace_b = [b.factor_at("host-0", t * 60.0) for t in range(100)]
        assert trace_a == trace_b

    def test_forced_episode_consumes_no_rng(self):
        plain = make_process(5, **SPONTANEOUS)
        forced = make_process(5, **SPONTANEOUS)
        forced.force_episode("host-0", start=300.0, duration=120.0,
                             intensity=9.0)
        assert forced.forced_episodes("host-0") == ((300.0, 420.0, 9.0),)
        for t in range(200):
            at = t * 60.0
            spontaneous = plain.factor_at("host-0", at)
            combined = forced.factor_at("host-0", at)
            if 300.0 <= at < 420.0:
                assert combined == max(9.0, spontaneous)
            else:
                # Outside the forced window the spontaneous trace is
                # untouched — the episode drew no randomness.
                assert combined == spontaneous

    def test_forced_episode_validation(self):
        proc = make_process(0)
        with pytest.raises(ValueError):
            proc.force_episode("host-0", start=0.0, duration=0.0, intensity=2.0)
        with pytest.raises(ValueError):
            proc.force_episode("host-0", start=0.0, duration=10.0, intensity=0.5)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ContentionConfig(spontaneous_rate=1.5)
        with pytest.raises(ValueError):
            ContentionConfig(intensity_mean=0.9)
        with pytest.raises(ValueError):
            ContentionConfig(step_seconds=0.0)
        with pytest.raises(ValueError):
            ContentionConfig(quarantine_seconds=-1.0)


# ------------------------------------------------- latency model physics


class TestContentionLatency:
    def test_factor_inflates_service_side(self):
        sim = Simulator(seed=0)
        rng = sim.random.get("x")
        model = QueueingLatency(ConstantLatency(0.010))
        model.set_utilisation(0.5)
        assert model.sample(rng) == pytest.approx(0.020)
        model.set_contention(3.0)
        # The factor multiplies the base draw, then queueing inflates it.
        assert model.sample(rng) == pytest.approx(0.010 * 3.0 / 0.5)

    def test_quiet_factor_is_an_exact_noop(self):
        sim = Simulator(seed=0)
        rng = sim.random.get("x")
        contended = QueueingLatency(ConstantLatency(0.0137))
        plain = QueueingLatency(ConstantLatency(0.0137))
        contended.set_contention(1.0)  # pushed to every node on a quiet host
        for rho in (0.0, 0.3, 0.9):
            contended.set_utilisation(rho)
            plain.set_utilisation(rho)
            # x * 1.0 == x under IEEE-754: quiet hosts leave the sample
            # path bit-identical, which is what keeps contention-enabled
            # runs without episodes byte-identical to contention-off runs.
            assert contended.sample(rng) == plain.sample(rng)

    def test_residual_tracks_the_factor_without_ground_truth(self):
        sim = Simulator(seed=0)
        rng = sim.random.get("x")
        model = QueueingLatency(ConstantLatency(0.004))
        assert model.service_residual() == 1.0
        model.set_contention(4.0)
        for _ in range(200):
            model.sample(rng)
        assert model.service_residual() == pytest.approx(4.0, rel=1e-3)
        model.set_contention(1.0)
        for _ in range(200):
            model.sample(rng)
        assert model.service_residual() == pytest.approx(1.0, rel=1e-3)

    def test_node_residual_estimator_converges_under_noise(self):
        sim = Simulator(seed=4)
        cluster = Cluster(simulator=sim, replication_factor=1, initial_groups=2,
                          host_map=HostMap(tenancy=1))
        noisy, quiet = sorted(cluster.nodes)
        cluster.nodes[noisy].set_contention(5.0)
        cluster.nodes[quiet].set_contention(1.0)
        for _ in range(400):
            cluster.nodes[noisy].service_time()
            cluster.nodes[quiet].service_time()
        # Log-normal noise, so the EWMA hovers around the factor.
        assert cluster.nodes[noisy].service_residual() > 3.5
        assert cluster.nodes[quiet].service_residual() < 1.5


# -------------------------------------- placement audit (satellite: anti-affinity)


def make_placed_cluster(seed=0, groups=3, rf=3, tenancy=4):
    sim = Simulator(seed=seed)
    cluster = Cluster(simulator=sim, replication_factor=rf,
                      initial_groups=groups, host_map=HostMap(tenancy=tenancy))
    return sim, cluster


class TestPlacementAudit:
    def test_fresh_cluster_satisfies_anti_affinity(self):
        _, cluster = make_placed_cluster(groups=4, rf=3)
        assert cluster.anti_affinity_violations() == []
        for group_id in cluster.groups:
            spread = cluster.hosts_of_group(group_id)
            # rf=3 has quorum 2, so the cap is one member per host: every
            # replica of a group lands on a distinct physical host.
            assert len(spread) == 3
            assert all(count == 1 for count in spread.values())

    def test_audit_detects_a_manufactured_violation(self):
        _, cluster = make_placed_cluster(groups=1, rf=3, tenancy=4)
        group = cluster.groups["group-0"]
        anchor = cluster.host_map.host_of(group.node_ids[0])
        # Force a second member onto the anchor host behind the placement
        # path's back; the audit must name the group and host.
        victim = group.node_ids[1]
        cluster.host_map.release(victim)
        others = [h for h in cluster.host_map.hosts() if h != anchor]
        cluster.host_map.assign(victim, avoid=others)
        assert cluster.host_map.host_of(victim) == anchor
        assert cluster.anti_affinity_violations() == [("group-0", anchor, 2)]

    def test_hostless_cluster_reports_empty(self):
        sim = Simulator(seed=0)
        cluster = Cluster(simulator=sim, replication_factor=3, initial_groups=2)
        assert cluster.hosts_of_group("group-0") == {}
        assert cluster.anti_affinity_violations() == []
        with pytest.raises(KeyError):
            cluster.hosts_of_group("no-such-group")

    def test_zone_outage_leaves_placement_invariant_intact(self):
        # Crash-and-recover churn (the zone outage downs one member of
        # every group at once) must never concentrate a group's quorum on
        # one host.
        engine = Scads(seed=9, contention=True, autoscale=False,
                       initial_groups=3, replication_factor=3, cache=False)
        injector = FailureInjector(engine.cluster, contention=engine.contention)
        injector.zone_outage(at=10.0, duration=30.0, zone_index=1)
        engine.start()
        engine.sim.run_until(80.0)
        assert engine.cluster.anti_affinity_violations() == []
        for group_id in engine.cluster.groups:
            assert len(engine.cluster.hosts_of_group(group_id)) == 3

    def test_evacuation_respects_anti_affinity_and_the_noisy_host(self):
        _, cluster = make_placed_cluster(groups=3, rf=3)
        moves = cluster.evacuate_host("host-0")
        assert moves  # host-0 held replicas on a 3x3 cluster
        assert cluster.host_map.nodes_on("host-0") == ()
        for _, new_id in moves:
            assert cluster.host_map.host_of(new_id) != "host-0"
        assert cluster.anti_affinity_violations() == []
        # Data rode along: every group's members agree on their key sets.
        for group in cluster.groups.values():
            counts = {cluster.nodes[nid].key_count() for nid in group.node_ids}
            assert len(counts) == 1


class TestQuarantine:
    def test_quarantined_host_is_avoided_until_lifted(self):
        sim, cluster = make_placed_cluster(groups=1, rf=3, tenancy=8)
        cluster.quarantine_host("host-0", until=500.0)
        assert cluster.quarantined_hosts() == ("host-0",)
        group = cluster.add_replica_group()
        for node_id in group.node_ids:
            assert cluster.host_map.host_of(node_id) != "host-0"
        sim.run_until(501.0)
        assert cluster.quarantined_hosts() == ()
        group = cluster.add_replica_group()
        hosts = {cluster.host_map.host_of(n) for n in group.node_ids}
        assert "host-0" in hosts  # the lifted host is placeable again

    def test_quarantine_extends_never_shrinks(self):
        _, cluster = make_placed_cluster(groups=1)
        cluster.quarantine_host("host-0", until=300.0)
        cluster.quarantine_host("host-0", until=100.0)
        assert cluster._quarantined_hosts["host-0"] == 300.0
        cluster.quarantine_host("host-0", until=900.0)
        assert cluster._quarantined_hosts["host-0"] == 900.0


# ------------------------------------------- diagnosis (monitor classification)


def make_monitor(cluster, cfg):
    return SLAMonitor(
        cluster=cluster,
        stats_provider=None,  # unused by host_residuals/_diagnose
        latency_model=LatencyPercentileModel(),
        lag_model=PropagationLagModel(),
        slas={},
        contention_config=cfg,
    )


def read_report(satisfied):
    return SLAReport(op_type="read", target_percentile=99.0,
                     target_latency=0.1, observed_fraction_within=0.9,
                     observed_percentile_latency=0.05 if satisfied else 0.25,
                     request_count=500, satisfied=satisfied)


def observation(violated, mean_utilisation):
    features = WorkloadFeatures(
        request_rate=100.0, write_fraction=0.1, node_count=6.0,
        per_node_rate=100.0 / 6.0, mean_utilisation=mean_utilisation,
        max_utilisation=mean_utilisation + 0.05)
    return WindowObservation(
        time=60.0, duration=60.0, request_rate=100.0, write_fraction=0.1,
        features=features, sla_reports={"read": read_report(not violated)})


class TestContentionDiagnosis:
    def _contended_cluster(self):
        sim = Simulator(seed=2)
        cfg = ContentionConfig(tenancy=4)
        cluster = Cluster(simulator=sim, replication_factor=3, initial_groups=2,
                          host_map=HostMap(tenancy=cfg.tenancy))
        # Drive the estimator the way a real episode would: inflate the
        # base draws of every node colocated on host-0 and let them serve.
        for host in cluster.host_map.hosts():
            factor = 6.0 if host == "host-0" else 1.0
            for node_id in cluster.host_map.nodes_on(host):
                cluster.nodes[node_id].set_contention(factor)
        for node in cluster.nodes.values():
            for _ in range(300):
                node.service_time()
        return cluster, cfg

    def test_host_residuals_name_the_noisy_host(self):
        cluster, cfg = self._contended_cluster()
        residuals = make_monitor(cluster, cfg).host_residuals()
        assert set(residuals) == set(cluster.host_map.hosts())
        assert residuals["host-0"] > cfg.residual_threshold
        for host, value in residuals.items():
            if host != "host-0":
                assert value < cfg.residual_threshold

    def test_violated_quiet_window_is_classified_contention(self):
        cluster, cfg = self._contended_cluster()
        monitor = make_monitor(cluster, cfg)
        obs = observation(violated=True, mean_utilisation=0.2)
        monitor._diagnose(obs)
        assert obs.contention_suspected
        assert obs.noisy_host == "host-0"
        assert obs.noisy_host_residual > cfg.residual_threshold
        # No tracer attached: the classification is tracer-independent and
        # simply leaves the evidence field empty.
        assert obs.span_kind_fractions is None

    def test_busy_window_is_capacity_not_contention(self):
        # Same residual signature, but the cluster is genuinely loaded:
        # queueing can explain the tail, so renting stays on the table.
        cluster, cfg = self._contended_cluster()
        obs = observation(violated=True,
                          mean_utilisation=cfg.quiet_utilisation + 0.1)
        make_monitor(cluster, cfg)._diagnose(obs)
        assert not obs.contention_suspected
        assert obs.noisy_host == "host-0"  # still named, for the record

    def test_compliant_window_is_never_suspected(self):
        cluster, cfg = self._contended_cluster()
        obs = observation(violated=False, mean_utilisation=0.2)
        make_monitor(cluster, cfg)._diagnose(obs)
        assert not obs.contention_suspected

    def test_quiet_fleet_clears_the_threshold_nowhere(self):
        sim = Simulator(seed=6)
        cfg = ContentionConfig()
        cluster = Cluster(simulator=sim, replication_factor=3, initial_groups=2,
                          host_map=HostMap(tenancy=cfg.tenancy))
        for node in cluster.nodes.values():
            node.set_contention(1.0)
            for _ in range(100):
                node.service_time()
        obs = observation(violated=True, mean_utilisation=0.2)
        make_monitor(cluster, cfg)._diagnose(obs)
        assert not obs.contention_suspected
        assert obs.noisy_host == ""


# -------------------------------------- host_degradation fault (satellite)


class TestHostDegradationFault:
    def test_fault_record_mirrors_storm_bookkeeping(self):
        engine = Scads(seed=3, contention=True, autoscale=False,
                       initial_groups=2, replication_factor=3, cache=False)
        injector = FailureInjector(engine.cluster, contention=engine.contention)
        record = injector.host_degradation(at=10.0, duration=20.0,
                                           intensity=5.0, host_id="host-0")
        assert record.kind == "host-degradation"
        assert record.target == "host-0 x5"
        assert record.start == 10.0
        assert record.end == 30.0
        assert record in injector.faults()
        assert engine.contention.forced_episodes("host-0") == ((10.0, 30.0, 5.0),)

    def test_requires_an_attached_contention_process(self):
        sim = Simulator(seed=0)
        cluster = Cluster(simulator=sim, replication_factor=2, initial_groups=1)
        injector = FailureInjector(cluster)
        with pytest.raises(RuntimeError):
            injector.host_degradation(at=0.0, duration=10.0)
        injector.attach_contention(
            ContentionProcess(sim, HostMap(), ContentionConfig()))
        injector.host_degradation(at=0.0, duration=10.0)  # now fine

    def test_episode_reaches_colocated_nodes_and_ends(self):
        engine = Scads(seed=11, contention={"tenancy": 4}, autoscale=False,
                       initial_groups=2, replication_factor=3, cache=False)
        injector = FailureInjector(engine.cluster, contention=engine.contention)
        injector.host_degradation(at=30.0, duration=180.0, intensity=8.0,
                                  host_id="host-0")
        engine.start()
        engine.sim.run_until(120.0)
        on_host = engine.host_map.nodes_on("host-0")
        assert on_host
        for node_id, node in engine.cluster.nodes.items():
            expected = 8.0 if node_id in on_host else 1.0
            assert node.contention() == expected
        engine.sim.run_until(300.0)  # past the episode + one tick
        assert all(node.contention() == 1.0
                   for node in engine.cluster.nodes.values())

    def test_fault_kind_is_wired_into_the_fabric(self):
        assert "host_degradation" in FAULT_KINDS
        spec = next(s for s in STANDARD_SUITE
                    if s.name == "noisy-neighbor-episode")
        (fault,) = spec.faults
        assert fault.kind == "host_degradation"
        assert fault.params["host_id"] == "host-0"


# ----------------------- attribution on contention-shaped traces (satellite)


def make_trace(trace_id, start, queue, service, off_legs=()):
    spans = [Span("network", 0.0005), Span("queue", queue),
             Span("service", service)]
    for leg in off_legs:
        # Losing legs of a max-composed parallel read: recorded for
        # context, demoted off-path so reconciliation survives fan-out.
        spans.append(Span("service", leg, detail="parallel-leg",
                          off_path=True))
    return TraceRecord(trace_id=trace_id, op="read", start=start,
                       latency=0.0005 + queue + service, success=True,
                       spans=spans)


class TestContentionShapedAttribution:
    def test_worst_decile_is_service_dominated_at_low_queue_share(self):
        # 63 healthy traces and 7 contended ones in a single 60s window:
        # the contended tail is pure service inflation (a noisy host), not
        # queueing, and the worst-decile split must say so.
        traces = [make_trace(i, start=i * 0.5, queue=0.0008, service=0.002)
                  for i in range(63)]
        traces += [make_trace(100 + i, start=30.0 + i, queue=0.0012,
                              service=0.060) for i in range(7)]
        (window,) = attribute_windows(traces, window=60.0)
        assert window.trace_count == 70
        assert window.worst_count == 7
        fractions = window.kind_fractions()
        assert fractions["service"] > 0.9
        assert fractions["queue"] < 0.05
        assert window.percentile_latency > 0.05  # the tail is the episode

    def test_max_composed_parallel_legs_stay_off_path(self):
        # Each contended trace carries huge losing-leg spans; if attribution
        # counted off-path spans the service seconds would triple.
        slow = [make_trace(i, start=float(i), queue=0.001, service=0.050,
                           off_legs=(0.048, 0.049)) for i in range(10)]
        (window,) = attribute_windows(slow, window=60.0)
        # Worst decile of 10 traces is 1 trace; its on-path service is
        # 0.050s — were the losing legs counted it would read 0.147s.
        assert window.worst_count == 1
        assert window.kind_seconds["service"] == pytest.approx(0.050)
        assert all(t.reconciles() for t in slow)

    def test_capacity_shaped_tail_reads_queue_dominated(self):
        # The contrast case: same latencies, but the milliseconds sit in
        # queue spans — an under-provisioned fleet, not a noisy host.
        traces = [make_trace(i, start=i * 0.5, queue=0.002, service=0.0008)
                  for i in range(60)]
        traces += [make_trace(100 + i, start=30.0 + i, queue=0.060,
                              service=0.0012) for i in range(6)]
        (window,) = attribute_windows(traces, window=60.0)
        fractions = window.kind_fractions()
        assert fractions["queue"] > 0.9
        assert fractions["service"] < 0.05


# ------------------------------------ controller scale-down hysteresis


class TestScaleDownHysteresis:
    """The planner's target is self-referential (features are measured on
    the current fleet), so a release can push the next target up by the
    hybrid clamp band and re-rent what it just freed — each flap billing a
    whole instance-hour per node.  Release only when the target fits the
    shrunk fleet with the hysteresis margin to spare."""

    @staticmethod
    def _controller(groups=4):
        return Scads(seed=3, autoscale=True, initial_groups=groups,
                     cache=False, repartition=False).controller

    @staticmethod
    def _plan(target_nodes):
        return SimpleNamespace(target_nodes=target_nodes, forecast_rate=10.0,
                               reason="unit", repartition_candidate=False)

    @staticmethod
    def _observation():
        return SimpleNamespace(any_sla_violated=lambda: False)

    def test_marginal_target_does_not_release(self):
        controller = self._controller(groups=4)
        shrunk = 3 * controller._cluster.replication_factor
        # Smallest target whose hysteresis-inflated demand exceeds the
        # shrunk fleet — pre-hysteresis logic would have released here.
        marginal = math.floor(shrunk / (1.0 + controller.scale_down_hysteresis)) + 1
        assert marginal <= shrunk
        controller._low_demand_windows = controller.scale_down_patience
        action = controller._act(self._plan(marginal), self._observation())
        assert action.kind == "hold"
        assert controller._cluster.group_count() == 4

    def test_comfortable_target_still_releases(self):
        controller = self._controller(groups=4)
        shrunk = 3 * controller._cluster.replication_factor
        comfortable = math.floor(shrunk / (1.0 + controller.scale_down_hysteresis))
        controller._low_demand_windows = controller.scale_down_patience - 1
        action = controller._act(self._plan(comfortable), self._observation())
        assert action.kind == "scale_down"
        assert controller._cluster.group_count() == 3

    def test_hysteresis_validation(self):
        from repro.core.provisioning.controller import ProvisioningController

        assert self._controller(groups=1).scale_down_hysteresis == 0.3
        with pytest.raises(ValueError):
            # Validation fires before any collaborator is touched.
            ProvisioningController(
                simulator=None, cluster=None, pool=None, monitor=None,
                planner=None, forecaster=None, updater=None, slas={},
                spec=None, scale_down_hysteresis=-0.1)


# --------------------------------------------- invariance and determinism


class TestContentionOffInvariance:
    def test_quiet_contention_run_matches_contention_off(self):
        # With the layer on but no episodes (spontaneous_rate=0, no faults)
        # every pushed factor is 1.0 — an IEEE-exact no-op — and the layer
        # consumes no extra randomness, so the served latencies are
        # byte-identical to a contention-off run of the same seed.
        from repro.apps.social_network import SocialNetworkApp

        reports = []
        for contention in (None, {"tenancy": 4}):
            engine = Scads(seed=21, autoscale=False, initial_groups=2,
                           contention=contention)
            engine.start()
            app = SocialNetworkApp(engine, friend_cap=100, page_size=10)
            for i in range(12):
                app.create_user(f"u{i}", f"User {i}", f"0{i % 9 + 1}-15")
            for i in range(11):
                app.add_friendship(f"u{i}", f"u{i + 1}")
            engine.settle()
            for i in range(12):
                app.friends_page(f"u{i}")
                app.birthdays_page(f"u{i}")
            reports.append(engine.sla_report("read"))
        off, quiet = reports
        assert off.request_count == quiet.request_count
        assert off.observed_percentile_latency == quiet.observed_percentile_latency
        assert off.observed_fraction_within == quiet.observed_fraction_within


class TestNoisyNeighborSweepDeterminism:
    def test_scenario_identical_workers_1_vs_4(self):
        """The episode rides the per-host contention streams and a forced
        (RNG-free) fault window, so process-pool scheduling cannot perturb
        the scenario: workers=1 and workers=4 sweeps are byte-identical."""
        spec = smoke_variant(next(
            s for s in STANDARD_SUITE if s.name == "noisy-neighbor-episode"))
        grid = SweepGrid(scenario=spec, replicates=2, base_seed=13)
        serial = run_sweep(grid.expand(), workers=1)
        pooled = run_sweep(grid.expand(), workers=4)
        assert len(serial.records) == len(pooled.records) == 2
        for a, b in zip(serial.records, pooled.records):
            assert a.summary.operations == b.summary.operations
            assert a.summary.operation_counts == b.summary.operation_counts
            assert a.summary.read_latency.snapshot() == b.summary.read_latency.snapshot()
            assert a.summary.cost.dollars == b.summary.cost.dollars
            assert a.summary.lost_acked_writes == b.summary.lost_acked_writes == 0
