"""Tests for the reference social-network application and the baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Scads
from repro.apps.social_network import SocialNetworkApp
from repro.baselines.naive_rdbms import NaiveRdbms
from repro.baselines.quorum_store import QuorumConfig, QuorumStore
from repro.workloads.opmix import Operation, OperationKind
from repro.workloads.social_graph import SocialGraph

pytestmark = pytest.mark.tier1


def make_app(seed=2, friend_cap=50, fof=True):
    engine = Scads(seed=seed, initial_groups=2, autoscale=False)
    engine.start()
    return SocialNetworkApp(engine, friend_cap=friend_cap, page_size=10,
                            register_friends_of_friends=fof)


class TestSocialNetworkApp:
    def test_registers_the_papers_queries(self):
        app = make_app()
        names = set(app.engine.query_names())
        assert {"friends", "friend_birthdays", "recent_statuses", "friends_of_friends"} <= names

    def test_statuses_page_is_newest_first(self):
        app = make_app()
        app.create_user("alice", "Alice", "03-14")
        for status_id in range(1, 6):
            app.post_status("alice", status_id, f"status {status_id}")
        app.engine.settle()
        page = app.statuses_page("alice")
        ids = [row["status_id"] for row in page.rows]
        assert ids == sorted(ids, reverse=True)

    def test_remove_friendship_updates_friend_list(self):
        app = make_app()
        app.create_user("a", "A", "01-01")
        app.create_user("b", "B", "02-02")
        app.add_friendship("a", "b")
        app.engine.settle()
        assert len(app.friends_page("a").rows) == 1
        app.remove_friendship("a", "b")
        app.engine.settle()
        assert len(app.friends_page("a").rows) == 0

    def test_update_profile_changes_birthday_index(self):
        app = make_app()
        app.create_user("a", "A", "01-01")
        app.create_user("b", "B", "05-05")
        app.add_friendship("a", "b")
        app.engine.settle()
        app.update_profile("b", birthday="11-11")
        app.engine.settle()
        birthdays = [row["birthday"] for row in app.birthdays_page("a").rows]
        assert birthdays == ["11-11"]

    def test_load_graph_materialises_queryable_state(self):
        app = make_app(friend_cap=20)
        graph = SocialGraph(30, np.random.default_rng(0), max_friends=5, mean_friends=2.0)
        app.load_graph(graph)
        user = next(u for u in graph.users() if graph.friend_count(u) > 0)
        rows = app.friends_page(user).rows
        assert len(rows) == graph.friend_count(user)

    def test_execute_dispatches_every_operation_kind(self):
        app = make_app()
        app.create_user("u1", "U1", "01-01")
        app.create_user("u2", "U2", "02-02")
        operations = [
            Operation(OperationKind.READ_PROFILE, "u1", target_id="u2"),
            Operation(OperationKind.READ_FRIENDS, "u1"),
            Operation(OperationKind.READ_FRIEND_BIRTHDAYS, "u1"),
            Operation(OperationKind.READ_FRIENDS_OF_FRIENDS, "u1"),
            Operation(OperationKind.POST_STATUS, "u1", payload={"text": "hi"}),
            Operation(OperationKind.ADD_FRIEND, "u1", target_id="u2"),
            Operation(OperationKind.UPDATE_PROFILE, "u1", payload={"hometown": "town-1"}),
        ]
        for operation in operations:
            app.execute(operation)
        assert app.stats.page_views >= 4
        assert app.stats.statuses_posted == 1
        assert app.stats.friendships_created == 1

    def test_self_friendship_rejected(self):
        app = make_app()
        app.create_user("a", "A", "01-01")
        with pytest.raises(ValueError):
            app.add_friendship("a", "a")


class TestNaiveRdbms:
    def _load(self, n_users, friends_per_user=10):
        db = NaiveRdbms()
        for i in range(n_users):
            user = f"u{i}"
            db.insert("profiles", (user,),
                      {"user_id": user, "name": user, "birthday": f"{(i % 12) + 1:02d}-10"})
            for j in range(friends_per_user):
                other = f"u{(i + j + 1) % n_users}"
                db.insert("friendships", (user, other), {"f1": user, "f2": other})
        return db

    def test_query_returns_correct_friends(self):
        db = self._load(50)
        result = db.friends_of("u0")
        assert len(result.rows) == 10

    def test_birthday_query_joins_and_sorts(self):
        db = self._load(50)
        result = db.friend_birthdays("u0")
        birthdays = [row["birthday"] for row in result.rows]
        assert birthdays == sorted(birthdays)

    def test_scan_cost_grows_with_population(self):
        small = self._load(100).friend_birthdays("u0")
        large = self._load(1000).friend_birthdays("u0")
        assert large.rows_scanned > 5 * small.rows_scanned
        assert large.latency > small.latency

    def test_row_counts(self):
        db = self._load(20, friends_per_user=3)
        assert db.row_count("profiles") == 20
        assert db.total_rows() == 20 + 60

    def test_invalid_costs_rejected(self):
        with pytest.raises(ValueError):
            NaiveRdbms(row_scan_cost=0.0)


class TestQuorumStore:
    def test_write_and_quorum_read(self):
        store = QuorumStore(QuorumConfig(n=3, r=2, w=2), seed=1)
        store.put(("k",), {"v": 1})
        store.run_for(2.0)
        result = store.get(("k",))
        assert result.success and result.value.value == {"v": 1}

    def test_strong_configuration_flag(self):
        assert QuorumConfig(n=3, r=2, w=2).strongly_consistent
        assert not QuorumConfig(n=3, r=1, w=1).strongly_consistent

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            QuorumConfig(n=3, r=4, w=1)
        with pytest.raises(ValueError):
            QuorumConfig(n=0, r=1, w=1)

    def test_weak_quorums_produce_more_stale_reads_than_strong(self):
        weak = QuorumStore(QuorumConfig(n=3, r=1, w=1), seed=2)
        strong = QuorumStore(QuorumConfig(n=3, r=2, w=2), seed=2)
        for store in (weak, strong):
            for i in range(100):
                store.put((f"k{i % 10}",), {"v": i})
                _, _ = store.get_and_check_staleness((f"k{i % 10}",))
        assert weak.stale_read_fraction() >= strong.stale_read_fraction()

    def test_higher_write_quorum_costs_more_latency(self):
        fast = QuorumStore(QuorumConfig(n=3, r=1, w=1), seed=3)
        slow = QuorumStore(QuorumConfig(n=3, r=1, w=3), seed=3)
        fast_latency = slow_latency = 0.0
        for i in range(50):
            fast_latency += fast.put((f"k{i}",), {"v": i}).latency
            fast.run_for(1.0)
            slow_latency += slow.put((f"k{i}",), {"v": i}).latency
            slow.run_for(1.0)
        assert slow_latency > fast_latency
