"""Tests for the pluggable planner backends and the runaway regression.

The headline regression: adversarial training windows ("more nodes, same
bad latency") used to teach the ML latency model that capacity never helps,
after which inverting it demanded ``max_nodes`` — the controller then rented
the whole pool (E6's bill explosion).  The hybrid backend makes that
structurally impossible: whatever the ML model learned, the plan stays
within the clamp band of the analytical answer.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.consistency.spec import ConsistencySpec, PerformanceSLA
from repro.core.provisioning.analytic import (
    AnalyticSizingModel,
    SizingBreakdown,
    normal_quantile,
)
from repro.core.provisioning.backends import (
    PLANNER_BACKENDS,
    HybridBackend,
    make_backend,
)
from repro.core.provisioning.planner import CapacityPlanner
from repro.ml.features import WorkloadFeatures
from repro.ml.performance_model import (
    LatencyPercentileModel,
    NodeRequirement,
    PropagationLagModel,
)

pytestmark = pytest.mark.tier1

SPEC = ConsistencySpec()
SLAS = {"read": PerformanceSLA(percentile=99.0, latency=0.1)}


def features_for(rate: float, nodes: int, capacity: float = 1000.0) -> WorkloadFeatures:
    utilisation = min(rate / (nodes * capacity), 0.99)
    return WorkloadFeatures(
        request_rate=rate,
        write_fraction=0.1,
        node_count=float(nodes),
        per_node_rate=rate / nodes,
        mean_utilisation=utilisation,
        max_utilisation=utilisation,
    )


def poisoned_latency_model(capacity: float = 1000.0) -> LatencyPercentileModel:
    """A model taught the runaway lesson: more nodes, same bad latency."""
    model = LatencyPercentileModel(
        node_capacity_ops=capacity, percentile=99.0,
        min_training_windows=8, retrain_every=1,
    )
    for nodes in (4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048):
        # Latency stays far above any plausible SLA no matter the node count.
        model.observe(features_for(5000.0, nodes, capacity), 1.5)
    assert model.is_trained
    return model


class TestRunawayRegression:
    def test_poisoned_ml_alone_demands_the_whole_pool(self):
        """Contrast case: the pre-clamp behaviour still runs away."""
        model = poisoned_latency_model()
        search = model.required_nodes_search(
            predicted_rate=5000.0, write_fraction=0.1,
            target_latency=0.1, max_nodes=10_000)
        assert not search.feasible
        assert search.nodes == 10_000

    def test_hybrid_plan_stays_in_clamp_band_under_poisoning(self):
        model = poisoned_latency_model()
        sizing = AnalyticSizingModel(node_capacity_ops=1000.0, percentile=99.0)
        planner = CapacityPlanner(
            model, PropagationLagModel(), node_capacity_ops=1000.0,
            min_nodes=2, max_nodes=10_000, backend="hybrid", clamp_band=0.3,
            sizing_model=sizing,
        )
        plan = planner.plan(5000.0, 0.1, SLAS, SPEC)
        analytic = sizing.required_nodes(
            arrival_rate=5000.0, target_latency=SLAS["read"].latency).nodes
        low = max(int(math.floor(analytic * 0.7)), 1)
        high = max(int(math.ceil(analytic * 1.3)), 1)
        assert plan.analytic_nodes == analytic
        assert low <= plan.latency_required_nodes <= max(high, planner.min_nodes)
        assert plan.ml_clamped
        assert plan.ml_nodes == 10_000  # the raw ML answer was the runaway
        assert plan.target_nodes < 100  # nowhere near the pool

    def test_clamped_plan_reason_mentions_the_clamp(self):
        model = poisoned_latency_model()
        planner = CapacityPlanner(
            model, PropagationLagModel(), node_capacity_ops=1000.0,
            min_nodes=2, max_nodes=10_000, backend="hybrid")
        plan = planner.plan(5000.0, 0.1, SLAS, SPEC)
        assert "clamped" in plan.reason

    def test_infeasible_target_surfaces_in_reason(self):
        planner = CapacityPlanner(
            LatencyPercentileModel(node_capacity_ops=1000.0, percentile=99.0),
            PropagationLagModel(), node_capacity_ops=1000.0,
            min_nodes=2, max_nodes=500, backend="analytical")
        # 1 ms target is below even an idle node's percentile service time.
        slas = {"read": PerformanceSLA(percentile=99.0, latency=0.001)}
        plan = planner.plan(5000.0, 0.1, slas, SPEC)
        assert plan.latency_infeasible
        assert "infeasible" in plan.reason.lower()
        # The capacity-stability floor, not the max_nodes runaway.
        assert plan.target_nodes < 100


class TestPlannerBackends:
    def test_three_backends_constructible(self):
        sizing = AnalyticSizingModel(node_capacity_ops=1000.0)
        latency = LatencyPercentileModel(node_capacity_ops=1000.0)
        for kind in PLANNER_BACKENDS:
            backend = make_backend(kind, sizing, latency)
            assert backend.name == kind

    def test_unknown_backend_rejected(self):
        sizing = AnalyticSizingModel(node_capacity_ops=1000.0)
        latency = LatencyPercentileModel(node_capacity_ops=1000.0)
        with pytest.raises(ValueError):
            make_backend("oracle", sizing, latency)
        with pytest.raises(ValueError):
            CapacityPlanner(latency, PropagationLagModel(),
                            node_capacity_ops=1000.0, backend="oracle")

    def test_untrained_backends_roughly_agree(self):
        """Before training, the ML prior and the analytical model describe
        the same simulator, so their answers should be close."""
        sizing = AnalyticSizingModel(node_capacity_ops=1000.0, percentile=99.0)
        latency = LatencyPercentileModel(node_capacity_ops=1000.0, percentile=99.0)
        answers = {}
        for kind in PLANNER_BACKENDS:
            backend = make_backend(kind, sizing, latency)
            answers[kind] = backend.latency_requirement(
                cluster_rate=5000.0, write_fraction=0.1,
                target_latency=0.1, pending_updates=0, max_nodes=500).nodes
        assert abs(answers["analytical"] - answers["ml"]) <= 3
        low, high = HybridBackend(sizing, latency).band(answers["analytical"])
        assert low <= answers["hybrid"] <= high

    def test_hybrid_band_never_below_one_node(self):
        sizing = AnalyticSizingModel(node_capacity_ops=1000.0)
        latency = LatencyPercentileModel(node_capacity_ops=1000.0)
        low, high = HybridBackend(sizing, latency).band(1)
        assert low >= 1 and high >= 1

    def test_clamp_band_validated(self):
        sizing = AnalyticSizingModel(node_capacity_ops=1000.0)
        latency = LatencyPercentileModel(node_capacity_ops=1000.0)
        with pytest.raises(ValueError):
            HybridBackend(sizing, latency, clamp_band=1.5)


class TestAnalyticSizingModel:
    def test_breakdown_describe_is_explainable(self):
        model = AnalyticSizingModel(node_capacity_ops=1000.0, percentile=99.0)
        breakdown = model.required_nodes(arrival_rate=5000.0, target_latency=0.15)
        assert isinstance(breakdown, SizingBreakdown)
        text = breakdown.describe()
        assert "ops/s" in text and "rho" in text
        assert str(breakdown.nodes) in text

    def test_infeasible_flag_when_target_below_service_time(self):
        model = AnalyticSizingModel(node_capacity_ops=1000.0, percentile=99.0)
        breakdown = model.required_nodes(arrival_rate=5000.0, target_latency=0.001)
        assert breakdown.infeasible
        assert "INFEASIBLE" in breakdown.describe()
        # Holds the capacity floor rather than exploding to max_nodes.
        assert breakdown.nodes <= math.ceil(5000.0 / (1000.0 * 0.95)) + 1

    def test_calibration_is_bounded(self):
        """Even absurd observed latencies move the service estimate at most
        calibration_band away from the prior — runaway-proof calibration."""
        model = AnalyticSizingModel(node_capacity_ops=1000.0, percentile=99.0,
                                    calibration_band=8.0)
        for _ in range(200):
            model.observe_window(features_for(5000.0, 8), 500.0)  # 500 s "latency"
        assert model.percentile_service_time() <= model.prior_service_time * 8.0
        for _ in range(200):
            model.observe_window(features_for(5000.0, 8), 1e-9)
        assert model.percentile_service_time() >= model.prior_service_time / 8.0

    def test_amplification_learns_fanout(self):
        """Nodes busier than the client rate explains imply fan-out > 1."""
        model = AnalyticSizingModel(node_capacity_ops=1000.0, percentile=99.0)
        # 1000 client ops/s but 8 nodes at 50% of 1000 ops/s = 4000 storage ops/s.
        window = WorkloadFeatures(
            request_rate=1000.0, write_fraction=0.1, node_count=8.0,
            per_node_rate=125.0, mean_utilisation=0.5, max_utilisation=0.6)
        for _ in range(50):
            model.observe_window(window, 0.02)
        assert model.amplification() == pytest.approx(4.0, rel=0.05)
        sized = model.required_nodes(arrival_rate=1000.0, target_latency=0.15)
        unsized = AnalyticSizingModel(node_capacity_ops=1000.0, percentile=99.0)
        assert sized.nodes > unsized.required_nodes(1000.0, 0.15).nodes

    def test_normal_quantile_matches_known_values(self):
        assert normal_quantile(0.5) == pytest.approx(0.0, abs=1e-8)
        assert normal_quantile(0.975) == pytest.approx(1.959964, abs=1e-4)
        assert normal_quantile(0.99) == pytest.approx(2.326348, abs=1e-4)
        with pytest.raises(ValueError):
            normal_quantile(0.0)

    @pytest.mark.property
    @settings(deadline=None)
    @given(
        rate_a=st.floats(min_value=0.0, max_value=1e6),
        rate_b=st.floats(min_value=0.0, max_value=1e6),
        target=st.floats(min_value=0.002, max_value=10.0),
    )
    def test_required_nodes_monotone_in_rate(self, rate_a, rate_b, target):
        """Analytical sizing is non-decreasing in the arrival rate."""
        model = AnalyticSizingModel(node_capacity_ops=1000.0, percentile=99.0)
        low, high = sorted((rate_a, rate_b))
        assert (model.required_nodes(low, target).nodes
                <= model.required_nodes(high, target).nodes)

    @pytest.mark.property
    @settings(deadline=None)
    @given(
        cap_a=st.floats(min_value=10.0, max_value=1e5),
        cap_b=st.floats(min_value=10.0, max_value=1e5),
        rate=st.floats(min_value=0.0, max_value=1e6),
        target=st.floats(min_value=0.002, max_value=10.0),
    )
    def test_required_nodes_monotone_in_capacity(self, cap_a, cap_b, rate, target):
        """More capable nodes never require a larger fleet."""
        low, high = sorted((cap_a, cap_b))
        small = AnalyticSizingModel(node_capacity_ops=high, percentile=99.0)
        large = AnalyticSizingModel(node_capacity_ops=low, percentile=99.0)
        assert (small.required_nodes(rate, target).nodes
                <= large.required_nodes(rate, target).nodes)


class TestBisectionSearch:
    def test_matches_linear_scan_on_the_prior(self):
        """Bisection must agree with the old exhaustive scan."""
        model = LatencyPercentileModel(node_capacity_ops=1000.0, percentile=99.0)
        for rate in (100.0, 1000.0, 5000.0, 20_000.0):
            for target in (0.05, 0.1, 0.5):
                search = model.required_nodes_search(
                    predicted_rate=rate, write_fraction=0.1,
                    target_latency=target, max_nodes=200)
                effective = target * 0.85
                linear = None
                for nodes in range(1, 201):
                    candidate = model._candidate_features(rate, 0.1, nodes, 0)
                    if model.predict(candidate) <= effective:
                        linear = nodes
                        break
                if linear is None:
                    assert not search.feasible and search.nodes == 200
                else:
                    assert search.feasible and search.nodes == linear

    def test_infeasible_flag_instead_of_silent_cap(self):
        model = LatencyPercentileModel(node_capacity_ops=1000.0, percentile=99.0)
        result = model.required_nodes_search(
            predicted_rate=1000.0, write_fraction=0.1,
            target_latency=0.001, max_nodes=500)
        assert isinstance(result, NodeRequirement)
        assert not result.feasible
        assert result.nodes == 500

    def test_zero_rate_is_one_node(self):
        model = LatencyPercentileModel(node_capacity_ops=1000.0)
        result = model.required_nodes_search(
            predicted_rate=0.0, write_fraction=0.0, target_latency=0.1)
        assert result == NodeRequirement(nodes=1, feasible=True)


class TestBoundedTraining:
    def test_latency_model_training_window_is_bounded(self):
        model = LatencyPercentileModel(node_capacity_ops=1000.0,
                                       max_training_windows=16)
        for i in range(100):
            model.observe(features_for(100.0 * (i + 1), 4), 0.02)
        assert model.training_size() == 16

    def test_lag_model_training_window_is_bounded(self):
        model = PropagationLagModel(max_training_windows=16)
        for i in range(100):
            model.observe(i, per_node_rate=100.0, observed_lag=0.01 * i)
        assert model.training_size() == 16

    def test_lag_model_refits_on_cadence_not_every_observe(self):
        model = PropagationLagModel(min_training_windows=4, retrain_every=4)
        for i in range(20):
            model.observe(i, per_node_rate=100.0, observed_lag=0.01 * i)
        assert model.is_trained
        # 20 observations at a cadence of 4: at most 5 fits, not 17.
        assert model.fit_count <= 5

    def test_window_too_small_for_minimum_rejected(self):
        with pytest.raises(ValueError):
            LatencyPercentileModel(min_training_windows=8, max_training_windows=4)
        with pytest.raises(ValueError):
            PropagationLagModel(min_training_windows=6, max_training_windows=2)
