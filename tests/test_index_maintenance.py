"""Tests for incremental index maintenance and the deadline-ordered updater.

Maintenance is tested against an in-memory StorageAdapter so the semantics
(delta computation, support counting, bounded work) are checked independently
of the storage substrate; the engine-level integration tests cover the wiring.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import pytest

from repro.core.index.maintenance import EntityWrite, IndexMaintainer, MaintenanceResult
from repro.core.index.updater import AsyncIndexUpdater
from repro.core.query.analyzer import QueryAnalyzer
from repro.core.query.compiler import QueryCompiler
from repro.core.query.executor import QueryExecutor
from repro.core.query.parser import parse_query
from repro.core.schema import EntitySchema, Field, SchemaRegistry
from repro.sim.simulator import Simulator

pytestmark = pytest.mark.tier1

FRIEND_CAP = 100


class DictStorageAdapter:
    """A StorageAdapter over plain dictionaries, for unit testing maintenance."""

    def __init__(self) -> None:
        self.entities: Dict[str, Dict[Tuple, Dict[str, Any]]] = {}
        self.indexes: Dict[str, Dict[Tuple, int]] = {}
        self.reverse: Dict[str, set] = {}
        self.index_ops = 0

    # -- entity side (test harness uses these to simulate base-table writes) --

    def put_entity(self, entity: str, key: Tuple, row: Dict[str, Any]) -> None:
        self.entities.setdefault(entity, {})[key] = dict(row)

    def delete_entity(self, entity: str, key: Tuple) -> None:
        self.entities.get(entity, {}).pop(key, None)

    # -- StorageAdapter protocol --

    def entity_rows_by_prefix(self, entity: str, prefix: Tuple) -> List[Dict[str, Any]]:
        rows = []
        for key, row in self.entities.get(entity, {}).items():
            if key[: len(prefix)] == prefix:
                rows.append(dict(row))
        return rows

    def entity_row(self, entity: str, key: Tuple) -> Optional[Dict[str, Any]]:
        row = self.entities.get(entity, {}).get(key)
        return dict(row) if row is not None else None

    def reverse_keys(self, reverse_index: str, value: Any) -> List[Tuple]:
        namespace = f"revidx:{reverse_index}"
        return [key[1:] for key in self.reverse.get(namespace, set()) if key[0] == value]

    def adjust_index_support(self, namespace: str, key: Tuple, delta: int) -> None:
        self.index_ops += 1
        index = self.indexes.setdefault(namespace, {})
        new_value = index.get(key, 0) + delta
        if new_value <= 0:
            index.pop(key, None)
        else:
            index[key] = new_value

    def put_reverse_entry(self, namespace: str, key: Tuple) -> None:
        self.reverse.setdefault(namespace, set()).add(key)

    def delete_reverse_entry(self, namespace: str, key: Tuple) -> None:
        self.reverse.get(namespace, set()).discard(key)

    # -- helpers for assertions --

    def index_keys(self, namespace: str) -> List[Tuple]:
        return sorted(self.indexes.get(namespace, {}).keys())

    def support(self, namespace: str, key: Tuple) -> int:
        return self.indexes.get(namespace, {}).get(key, 0)


def social_registry():
    registry = SchemaRegistry()
    registry.register_entity(EntitySchema(
        name="profiles",
        key_fields=[Field("user_id")],
        value_fields=[Field("name"), Field("birthday")],
    ))
    registry.register_entity(EntitySchema(
        name="friendships",
        key_fields=[Field("f1"), Field("f2")],
        max_per_partition=FRIEND_CAP,
        column_bounds={"f2": FRIEND_CAP},
    ))
    return registry


BIRTHDAY_SQL = (
    "SELECT p.* FROM friendships f JOIN profiles p ON f.f2 = p.user_id "
    "WHERE f.f1 = <user_id> ORDER BY p.birthday LIMIT 20"
)
FOF_SQL = (
    "SELECT p.* FROM friendships f JOIN friendships g ON f.f2 = g.f1 "
    "JOIN profiles p ON g.f2 = p.user_id WHERE f.f1 = <user_id> LIMIT 20"
)


def build_maintainer(*queries: Tuple[str, str]):
    registry = social_registry()
    adapter = DictStorageAdapter()
    maintainer = IndexMaintainer(registry, adapter)
    analyzer = QueryAnalyzer(registry)
    compiler = QueryCompiler()
    compiled = {}
    for name, sql in queries:
        cq = compiler.compile(name, analyzer.analyze(parse_query(sql)))
        maintainer.register(cq)
        compiled[name] = cq
    return registry, adapter, maintainer, compiled


def write_entity(adapter, maintainer, registry, entity, row):
    """Simulate a base-table write followed by synchronous maintenance."""
    schema = registry.entity(entity)
    key = schema.storage_key(row)
    old = adapter.entity_row(entity, key)
    adapter.put_entity(entity, key, row)
    return maintainer.apply(EntityWrite(entity=entity, old_row=old, new_row=row))


def delete_entity(adapter, maintainer, registry, entity, key):
    old = adapter.entity_row(entity, key)
    adapter.delete_entity(entity, key)
    if old is not None:
        return maintainer.apply(EntityWrite(entity=entity, old_row=old, new_row=None))
    return MaintenanceResult()


class TestBirthdayIndexMaintenance:
    def _setup(self):
        registry, adapter, maintainer, compiled = build_maintainer(
            ("friend_birthdays", BIRTHDAY_SQL)
        )
        namespace = compiled["friend_birthdays"].index_spec.namespace
        return registry, adapter, maintainer, namespace

    def test_friendship_insert_creates_entry_with_birthday(self):
        registry, adapter, maintainer, namespace = self._setup()
        write_entity(adapter, maintainer, registry, "profiles",
                     {"user_id": "bob", "name": "Bob", "birthday": "07-04"})
        write_entity(adapter, maintainer, registry, "friendships", {"f1": "alice", "f2": "bob"})
        assert adapter.index_keys(namespace) == [("alice", "07-04", "bob")]

    def test_friendship_delete_removes_entry(self):
        registry, adapter, maintainer, namespace = self._setup()
        write_entity(adapter, maintainer, registry, "profiles",
                     {"user_id": "bob", "name": "Bob", "birthday": "07-04"})
        write_entity(adapter, maintainer, registry, "friendships", {"f1": "alice", "f2": "bob"})
        delete_entity(adapter, maintainer, registry, "friendships", ("alice", "bob"))
        assert adapter.index_keys(namespace) == []

    def test_birthday_change_moves_index_entries_for_all_friends(self):
        registry, adapter, maintainer, namespace = self._setup()
        write_entity(adapter, maintainer, registry, "profiles",
                     {"user_id": "carol", "name": "Carol", "birthday": "01-01"})
        for friend in ("alice", "bob"):
            write_entity(adapter, maintainer, registry, "friendships",
                         {"f1": friend, "f2": "carol"})
        write_entity(adapter, maintainer, registry, "profiles",
                     {"user_id": "carol", "name": "Carol", "birthday": "12-25"})
        keys = adapter.index_keys(namespace)
        assert ("alice", "12-25", "carol") in keys
        assert ("bob", "12-25", "carol") in keys
        assert not any(key[1] == "01-01" for key in keys)

    def test_irrelevant_profile_change_produces_no_index_ops(self):
        registry, adapter, maintainer, namespace = self._setup()
        write_entity(adapter, maintainer, registry, "profiles",
                     {"user_id": "bob", "name": "Bob", "birthday": "07-04"})
        write_entity(adapter, maintainer, registry, "friendships", {"f1": "alice", "f2": "bob"})
        before = adapter.support(namespace, ("alice", "07-04", "bob"))
        result = write_entity(adapter, maintainer, registry, "profiles",
                              {"user_id": "bob", "name": "Robert", "birthday": "07-04"})
        assert adapter.support(namespace, ("alice", "07-04", "bob")) == before

    def test_friendship_before_profile_backfills_on_profile_write(self):
        registry, adapter, maintainer, namespace = self._setup()
        write_entity(adapter, maintainer, registry, "friendships", {"f1": "alice", "f2": "bob"})
        assert adapter.index_keys(namespace) == []  # no birthday known yet
        write_entity(adapter, maintainer, registry, "profiles",
                     {"user_id": "bob", "name": "Bob", "birthday": "07-04"})
        assert adapter.index_keys(namespace) == [("alice", "07-04", "bob")]

    def test_maintenance_work_is_bounded_by_friend_count(self):
        registry, adapter, maintainer, namespace = self._setup()
        write_entity(adapter, maintainer, registry, "profiles",
                     {"user_id": "star", "name": "Star", "birthday": "06-06"})
        for i in range(30):
            write_entity(adapter, maintainer, registry, "friendships",
                         {"f1": f"fan{i}", "f2": "star"})
        result = write_entity(adapter, maintainer, registry, "profiles",
                              {"user_id": "star", "name": "Star", "birthday": "09-09"})
        # One delete plus one insert per friend, plus bounded lookups.
        assert result.index_ops == 60
        assert result.total_ops <= 4 * 30 + 10


class TestFriendsOfFriendsMaintenance:
    def _setup(self):
        registry, adapter, maintainer, compiled = build_maintainer(
            ("friends", "SELECT * FROM friendships WHERE f1 = <user_id> LIMIT 100"),
            ("fof", FOF_SQL),
        )
        return registry, adapter, maintainer, compiled["fof"].index_spec.namespace

    def _befriend(self, registry, adapter, maintainer, a, b):
        write_entity(adapter, maintainer, registry, "friendships", {"f1": a, "f2": b})
        write_entity(adapter, maintainer, registry, "friendships", {"f1": b, "f2": a})

    def test_two_hop_paths_materialised(self):
        registry, adapter, maintainer, namespace = self._setup()
        for user in ("alice", "bob", "carol"):
            write_entity(adapter, maintainer, registry, "profiles",
                         {"user_id": user, "name": user.title(), "birthday": "01-01"})
        self._befriend(registry, adapter, maintainer, "alice", "bob")
        self._befriend(registry, adapter, maintainer, "bob", "carol")
        keys = adapter.index_keys(namespace)
        assert ("alice", "carol") in keys  # alice -> bob -> carol
        assert ("carol", "alice") in keys  # carol -> bob -> alice

    def test_support_counts_multiple_paths(self):
        registry, adapter, maintainer, namespace = self._setup()
        for user in ("alice", "bob", "carol", "dave"):
            write_entity(adapter, maintainer, registry, "profiles",
                         {"user_id": user, "name": user.title(), "birthday": "01-01"})
        # Two disjoint paths alice->bob->dave and alice->carol->dave.
        self._befriend(registry, adapter, maintainer, "alice", "bob")
        self._befriend(registry, adapter, maintainer, "alice", "carol")
        self._befriend(registry, adapter, maintainer, "bob", "dave")
        self._befriend(registry, adapter, maintainer, "carol", "dave")
        assert adapter.support(namespace, ("alice", "dave")) == 2
        # Removing one intermediate keeps the entry alive through the other.
        delete_entity(adapter, maintainer, registry, "friendships", ("bob", "dave"))
        delete_entity(adapter, maintainer, registry, "friendships", ("dave", "bob"))
        assert adapter.support(namespace, ("alice", "dave")) == 1
        delete_entity(adapter, maintainer, registry, "friendships", ("carol", "dave"))
        delete_entity(adapter, maintainer, registry, "friendships", ("dave", "carol"))
        assert adapter.support(namespace, ("alice", "dave")) == 0

    def test_reverse_index_is_maintained(self):
        registry, adapter, maintainer, _ = self._setup()
        write_entity(adapter, maintainer, registry, "friendships", {"f1": "alice", "f2": "bob"})
        assert adapter.reverse_keys("friendships_by_f2", "bob") == [("alice", "bob")]
        delete_entity(adapter, maintainer, registry, "friendships", ("alice", "bob"))
        assert adapter.reverse_keys("friendships_by_f2", "bob") == []


class TestQueryOverMaintainedIndex:
    def test_executor_reads_what_maintenance_wrote(self):
        registry, adapter, maintainer, compiled = build_maintainer(
            ("friend_birthdays", BIRTHDAY_SQL)
        )
        plan = compiled["friend_birthdays"].plan
        write_entity(adapter, maintainer, registry, "profiles",
                     {"user_id": "bob", "name": "Bob", "birthday": "07-04"})
        write_entity(adapter, maintainer, registry, "profiles",
                     {"user_id": "carol", "name": "Carol", "birthday": "01-02"})
        for friend in ("bob", "carol"):
            write_entity(adapter, maintainer, registry, "friendships",
                         {"f1": "alice", "f2": friend})

        def range_read(namespace, start, end, limit, reverse):
            keys = [k for k in adapter.index_keys(namespace)
                    if (start is None or k >= start) and (end is None or k < end)]
            if reverse:
                keys = keys[::-1]
            if limit is not None:
                keys = keys[:limit]
            return [(k, {"support": adapter.support(namespace, k)}) for k in keys], 0.001

        def entity_get(entity, key):
            return adapter.entity_row(entity, key), 0.001

        executor = QueryExecutor(range_read, entity_get)
        result = executor.execute(plan, {"user_id": "alice"})
        assert [row["name"] for row in result.rows] == ["Carol", "Bob"]
        assert result.index_entries_read == 2


class TestAsyncIndexUpdater:
    def _setup(self, fifo=False, nodes=1, ups=10.0):
        registry, adapter, maintainer, compiled = build_maintainer(
            ("friend_birthdays", BIRTHDAY_SQL)
        )
        sim = Simulator(seed=0)
        updater = AsyncIndexUpdater(
            simulator=sim,
            maintainer=maintainer,
            node_count_fn=lambda: nodes,
            updates_per_second_per_node=ups,
            drain_interval=0.5,
            default_staleness_bound=10.0,
            fifo=fifo,
        )
        return registry, adapter, maintainer, sim, updater

    def _enqueue_writes(self, registry, adapter, updater, count, bound=None):
        for i in range(count):
            row = {"f1": "alice", "f2": f"friend{i}"}
            key = ("alice", f"friend{i}")
            adapter.put_entity("friendships", key, row)
            updater.enqueue(EntityWrite("friendships", None, row), staleness_bound=bound)

    def test_tasks_apply_after_time_advances(self):
        registry, adapter, maintainer, sim, updater = self._setup()
        updater.start()
        adapter.put_entity("profiles", ("bob",), {"user_id": "bob", "birthday": "07-04"})
        row = {"f1": "alice", "f2": "bob"}
        adapter.put_entity("friendships", ("alice", "bob"), row)
        updater.enqueue(EntityWrite("friendships", None, row))
        assert updater.pending_count() == 1
        sim.run_until(2.0)
        assert updater.pending_count() == 0
        assert updater.stats().completed == 1

    def test_deadline_ordering_prefers_urgent_updates(self):
        registry, adapter, maintainer, sim, updater = self._setup()
        relaxed = updater.enqueue(
            EntityWrite("friendships", None, {"f1": "a", "f2": "b"}), staleness_bound=1000.0
        )
        urgent = updater.enqueue(
            EntityWrite("friendships", None, {"f1": "c", "f2": "d"}), staleness_bound=1.0
        )
        updater.drain_now(max_tasks=1)
        assert urgent.completion_time is not None
        assert relaxed.completion_time is None

    def test_fifo_mode_processes_in_arrival_order(self):
        registry, adapter, maintainer, sim, updater = self._setup(fifo=True)
        first = updater.enqueue(
            EntityWrite("friendships", None, {"f1": "a", "f2": "b"}), staleness_bound=1000.0
        )
        second = updater.enqueue(
            EntityWrite("friendships", None, {"f1": "c", "f2": "d"}), staleness_bound=1.0
        )
        updater.drain_now(max_tasks=1)
        assert first.completion_time is not None
        assert second.completion_time is None

    def test_throughput_scales_with_node_count(self):
        slow = self._setup(nodes=1, ups=10.0)
        fast = self._setup(nodes=10, ups=10.0)
        for registry, adapter, maintainer, sim, updater in (slow, fast):
            updater.start()
            self._enqueue_writes(registry, adapter, updater, 100)
            sim.run_until(3.0)
        assert fast[4].stats().completed > 2 * slow[4].stats().completed

    def test_deadline_misses_detected_when_overloaded(self):
        registry, adapter, maintainer, sim, updater = self._setup(nodes=1, ups=2.0)
        updater.start()
        self._enqueue_writes(registry, adapter, updater, 200, bound=5.0)
        sim.run_until(60.0)
        stats = updater.stats()
        assert stats.deadline_misses > 0
        assert stats.max_lag > 5.0

    def test_behind_schedule_signal(self):
        registry, adapter, maintainer, sim, updater = self._setup(nodes=1, ups=1.0)
        self._enqueue_writes(registry, adapter, updater, 50, bound=0.5)
        assert updater.behind_schedule(margin=1.0)

    def test_invalid_staleness_bound_rejected(self):
        registry, adapter, maintainer, sim, updater = self._setup()
        with pytest.raises(ValueError):
            updater.enqueue(EntityWrite("friendships", None, {"f1": "a", "f2": "b"}),
                            staleness_bound=0.0)

    def test_stop_halts_draining(self):
        registry, adapter, maintainer, sim, updater = self._setup()
        updater.start()
        updater.stop()
        self._enqueue_writes(registry, adapter, updater, 5)
        sim.run_until(10.0)
        assert updater.pending_count() == 5
