"""Unit tests for the workload substrate (repro.workloads)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.simulator import Simulator
from repro.workloads.generator import LoadGenerator
from repro.workloads.opmix import (
    DEFAULT_MIX,
    WRITE_HEAVY_MIX,
    CloudStoneMix,
    OperationKind,
)
from repro.workloads.social_graph import SocialGraph
from repro.workloads.traces import (
    AnimotoViralTrace,
    CompositeTrace,
    ConstantTrace,
    DiurnalTrace,
    HalloweenSpikeTrace,
    StepTrace,
)

pytestmark = pytest.mark.tier1


def make_graph(n=100, cap=20, mean=5.0, seed=0):
    return SocialGraph(n, np.random.default_rng(seed), max_friends=cap, mean_friends=mean)


class TestSocialGraph:
    def test_generates_requested_population(self):
        graph = make_graph(n=50)
        assert len(graph.users()) == 50
        assert graph.n_users == 50

    def test_degree_cap_is_respected(self):
        graph = make_graph(n=300, cap=10, mean=8.0)
        assert graph.max_degree() <= 10

    def test_friendships_are_symmetric(self):
        graph = make_graph(n=100)
        for a, b in graph.friendships():
            assert a in graph.friends_of(b)
            assert b in graph.friends_of(a)

    def test_profiles_have_valid_birthdays(self):
        graph = make_graph(n=50)
        for user_id in graph.users():
            month, day = graph.profile(user_id).birthday.split("-")
            assert 1 <= int(month) <= 12
            assert 1 <= int(day) <= 28

    def test_add_friendship_respects_cap(self):
        graph = make_graph(n=30, cap=2, mean=1.0)
        users = graph.users()
        hub = users[0]
        added = 0
        for other in users[1:]:
            if graph.add_friendship(hub, other):
                added += 1
        assert graph.friend_count(hub) <= 2

    def test_add_self_friendship_rejected(self):
        graph = make_graph(n=5)
        with pytest.raises(ValueError):
            graph.add_friendship(graph.users()[0], graph.users()[0])

    def test_remove_friendship(self):
        graph = make_graph(n=10, mean=3.0)
        pairs = list(graph.friendships())
        if pairs:
            a, b = pairs[0]
            assert graph.remove_friendship(a, b)
            assert b not in graph.friends_of(a)
            assert not graph.remove_friendship(a, b)

    def test_same_seed_same_graph(self):
        a = make_graph(n=60, seed=5)
        b = make_graph(n=60, seed=5)
        assert sorted(a.friendships()) == sorted(b.friendships())

    def test_single_user_graph(self):
        graph = make_graph(n=1)
        assert graph.mean_degree() == 0.0

    def test_invalid_parameters(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            SocialGraph(0, rng)
        with pytest.raises(ValueError):
            SocialGraph(10, rng, max_friends=0)

    @given(cap=st.integers(min_value=1, max_value=15))
    @settings(max_examples=10, deadline=None)
    def test_cap_property(self, cap):
        graph = SocialGraph(80, np.random.default_rng(1), max_friends=cap, mean_friends=cap * 2.0)
        assert graph.max_degree() <= cap


class TestCloudStoneMix:
    def test_operations_reference_existing_users(self):
        graph = make_graph()
        mix = CloudStoneMix(graph, np.random.default_rng(0))
        users = set(graph.users())
        for _ in range(200):
            operation = mix.next_operation()
            assert operation.user_id in users
            if operation.target_id is not None:
                assert operation.target_id in users

    def test_write_fraction_matches_mix(self):
        graph = make_graph()
        mix = CloudStoneMix(graph, np.random.default_rng(0))
        assert mix.write_fraction() == pytest.approx(0.10, abs=0.001)
        ops = [mix.next_operation() for _ in range(3000)]
        observed = sum(1 for op in ops if op.is_write) / len(ops)
        assert observed == pytest.approx(0.10, abs=0.03)

    def test_write_heavy_mix_has_more_writes(self):
        graph = make_graph()
        default = CloudStoneMix(graph, np.random.default_rng(0), mix=DEFAULT_MIX)
        heavy = CloudStoneMix(graph, np.random.default_rng(0), mix=WRITE_HEAVY_MIX)
        assert heavy.write_fraction() > 3 * default.write_fraction()

    def test_set_mix_switches_behaviour(self):
        graph = make_graph()
        mix = CloudStoneMix(graph, np.random.default_rng(0))
        mix.set_mix({OperationKind.POST_STATUS: 1.0})
        ops = [mix.next_operation() for _ in range(50)]
        assert all(op.kind is OperationKind.POST_STATUS for op in ops)

    def test_popularity_is_skewed(self):
        graph = make_graph(n=500)
        mix = CloudStoneMix(graph, np.random.default_rng(0), zipf_theta=0.9)
        counts = {}
        for _ in range(3000):
            operation = mix.next_operation()
            counts[operation.user_id] = counts.get(operation.user_id, 0) + 1
        top_share = max(counts.values()) / 3000
        assert top_share > 0.01  # far above the uniform 1/500

    def test_empty_mix_rejected(self):
        graph = make_graph()
        with pytest.raises(ValueError):
            CloudStoneMix(graph, np.random.default_rng(0), mix={OperationKind.READ_PROFILE: 0.0})


class TestTraces:
    def test_constant_trace(self):
        assert ConstantTrace(100.0).rate_at(1e6) == 100.0

    def test_step_trace(self):
        trace = StepTrace([(0.0, 10.0), (100.0, 50.0)])
        assert trace.rate_at(50.0) == 10.0
        assert trace.rate_at(150.0) == 50.0

    def test_step_trace_requires_sorted_steps(self):
        with pytest.raises(ValueError):
            StepTrace([(100.0, 10.0), (0.0, 50.0)])

    def test_diurnal_peaks_at_peak_hour(self):
        trace = DiurnalTrace(base_rate=100.0, peak_rate=1000.0, peak_hour=20.0)
        peak = trace.rate_at(20.0 * 3600)
        trough = trace.rate_at(8.0 * 3600)
        assert peak == pytest.approx(1000.0, rel=0.01)
        assert trough == pytest.approx(100.0, rel=0.01)

    def test_diurnal_is_periodic(self):
        trace = DiurnalTrace(base_rate=100.0, peak_rate=1000.0)
        assert trace.rate_at(5 * 3600) == pytest.approx(trace.rate_at(5 * 3600 + 86400))

    def test_animoto_trace_reaches_the_paper_multiplier(self):
        trace = AnimotoViralTrace(start_rate=500.0, peak_multiplier=68.0)
        start = trace.rate_at(0.0)
        end = trace.rate_at(trace.ramp_start + trace.ramp_duration + 3600)
        assert start == pytest.approx(500.0)
        assert end == pytest.approx(500.0 * 68.0, rel=0.01)
        assert end / start > 60  # two orders of magnitude, as in Figure 1

    def test_animoto_trace_is_nondecreasing(self):
        trace = AnimotoViralTrace()
        samples = [trace.rate_at(t) for t in np.linspace(0, 4 * 86400, 200)]
        assert all(b >= a - 1e-9 for a, b in zip(samples, samples[1:]))

    def test_halloween_spike_shape(self):
        trace = HalloweenSpikeTrace(base_rate=100.0, spike_multiplier=5.0)
        assert trace.rate_at(0.0) == 100.0
        peak_time = trace.spike_start + trace.rise_duration + trace.hold_duration / 2
        assert trace.rate_at(peak_time) == pytest.approx(500.0)
        after = trace.spike_start + trace.rise_duration + trace.hold_duration + trace.decay_duration + 10
        assert trace.rate_at(after) == 100.0

    def test_composite_trace_sums(self):
        trace = CompositeTrace([ConstantTrace(10.0), ConstantTrace(5.0)])
        assert trace.rate_at(0.0) == 15.0

    def test_peak_and_mean_rate_helpers(self):
        trace = DiurnalTrace(base_rate=100.0, peak_rate=900.0)
        assert trace.peak_rate_over(86400.0) >= trace.mean_rate_over(86400.0)
        assert trace.peak_rate_over(86400.0) == pytest.approx(900.0, rel=0.01)

    def test_invalid_traces_rejected(self):
        with pytest.raises(ValueError):
            ConstantTrace(-1.0)
        with pytest.raises(ValueError):
            DiurnalTrace(base_rate=10.0, peak_rate=5.0)
        with pytest.raises(ValueError):
            AnimotoViralTrace(start_rate=0.0)
        with pytest.raises(ValueError):
            HalloweenSpikeTrace(base_rate=0.0)
        with pytest.raises(ValueError):
            CompositeTrace([])


class TestLoadGenerator:
    def _run(self, trace, duration, sampling=1.0):
        sim = Simulator(seed=3)
        graph = make_graph(n=50)
        mix = CloudStoneMix(graph, sim.random.get("mix"))
        executed = []
        generator = LoadGenerator(sim, trace, mix, executed.append,
                                  sampling_fraction=sampling)
        generator.start()
        sim.run_until(duration)
        generator.stop()
        return executed, generator

    def test_issues_roughly_trace_rate(self):
        executed, _ = self._run(ConstantTrace(50.0), duration=20.0)
        assert len(executed) == pytest.approx(1000, rel=0.25)

    def test_sampling_fraction_scales_down_issued_operations(self):
        full, _ = self._run(ConstantTrace(50.0), duration=20.0, sampling=1.0)
        sampled, _ = self._run(ConstantTrace(50.0), duration=20.0, sampling=0.1)
        assert len(sampled) < len(full) / 4

    def test_stats_split_reads_and_writes(self):
        executed, generator = self._run(ConstantTrace(50.0), duration=10.0)
        stats = generator.stats
        assert stats.operations_issued == len(executed)
        assert stats.reads_issued + stats.writes_issued == stats.operations_issued
        assert stats.reads_issued > stats.writes_issued

    def test_zero_rate_trace_issues_nothing_much(self):
        executed, _ = self._run(ConstantTrace(0.0), duration=10.0)
        assert len(executed) == 0

    def test_invalid_sampling_fraction(self):
        sim = Simulator()
        graph = make_graph(n=10)
        mix = CloudStoneMix(graph, sim.random.get("mix"))
        with pytest.raises(ValueError):
            LoadGenerator(sim, ConstantTrace(1.0), mix, lambda op: None, sampling_fraction=0.0)
