"""Tests for the staleness-budget cache tier.

Correctness contract under test:

* no cached read is ever served beyond its declared staleness bound (a
  hypothesis property over random write/read/advance schedules, validated
  against an externally maintained write history);
* read-your-writes sessions bypass the cache after they write (regression);
* write-through invalidation drops the written key and exactly the cached
  range scans covering it;
* the store's LRU + TTL accounting stays within capacity;
* the provisioning loop sees cache absorption (monitor hit-rate feature,
  planner demand discount).
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.cache.policy import AdmissionPolicy
from repro.cache.store import StalenessBudgetCache, entity_token
from repro.cache.tier import CacheConfig
from repro.core.consistency.spec import (
    ConsistencySpec,
    PerformanceSLA,
    ReadConsistency,
    SessionGuarantee,
)
from repro.core.engine import Scads
from repro.core.query.plans import entity_namespace
from repro.core.schema import EntitySchema, Field
from repro.storage.records import VersionedValue

pytestmark = pytest.mark.tier1

BOUND = 5.0


def make_engine(staleness_bound: float = BOUND, read_your_writes: bool = False,
                capacity: int = 256, seed: int = 3) -> Scads:
    spec = ConsistencySpec(
        performance=PerformanceSLA(percentile=99.0, latency=0.250),
        read=ReadConsistency(staleness_bound=staleness_bound),
        session=SessionGuarantee(read_your_writes=read_your_writes),
    )
    engine = Scads(seed=seed, consistency=spec, autoscale=False,
                   initial_groups=2, cache=CacheConfig(capacity=capacity))
    engine.register_entity(EntitySchema(
        "profiles", key_fields=[Field("user_id")], value_fields=[Field("bio")],
    ))
    engine.start()
    return engine


# ------------------------------------------------------------------ the store


class TestStore:
    def test_lru_eviction_keeps_cost_within_capacity(self):
        store = StalenessBudgetCache(capacity=3)
        for i in range(5):
            store.put_entity("ns", (f"k{i}",), i, now=0.0, ttl=10.0)
        assert store.cost_total <= 3
        assert store.stats.lru_evictions == 2
        assert store.get(entity_token("ns", ("k0",)), now=0.0) is None
        assert store.get(entity_token("ns", ("k4",)), now=0.0) is not None

    def test_hit_refreshes_lru_position(self):
        store = StalenessBudgetCache(capacity=2)
        store.put_entity("ns", ("a",), 1, now=0.0, ttl=10.0)
        store.put_entity("ns", ("b",), 2, now=0.0, ttl=10.0)
        store.get(entity_token("ns", ("a",)), now=0.0)  # a is now most recent
        store.put_entity("ns", ("c",), 3, now=0.0, ttl=10.0)
        assert store.get(entity_token("ns", ("a",)), now=0.0) is not None
        assert store.get(entity_token("ns", ("b",)), now=0.0) is None

    def test_ttl_expiry_is_a_miss_and_reclaims(self):
        store = StalenessBudgetCache(capacity=8)
        store.put_entity("ns", ("k",), 1, now=0.0, ttl=2.0)
        assert store.get(entity_token("ns", ("k",)), now=1.9) is not None
        assert store.get(entity_token("ns", ("k",)), now=2.0) is None
        assert store.stats.ttl_expirations == 1
        assert len(store) == 0

    def test_range_entries_cost_their_row_count(self):
        store = StalenessBudgetCache(capacity=10)
        rows = [((f"k{i}",), {"v": i}) for i in range(7)]
        store.put_range("ns", ("a",), ("z",), None, False, rows, now=0.0, ttl=10.0)
        assert store.cost_total == 7
        store.put_entity("ns", ("x",), 1, now=0.0, ttl=10.0)
        store.put_entity("ns", ("y",), 2, now=0.0, ttl=10.0)
        store.put_entity("ns", ("z",), 3, now=0.0, ttl=10.0)
        assert store.cost_total <= 10

    def test_invalidate_key_drops_exactly_the_covering_ranges(self):
        store = StalenessBudgetCache(capacity=64)
        store.put_entity("ns", ("k5",), 1, now=0.0, ttl=10.0)
        store.put_range("ns", ("k0",), ("k9",), None, False,
                        [(("k5",), {})], now=0.0, ttl=10.0)
        store.put_range("ns", ("m0",), ("m9",), None, False,
                        [(("m5",), {})], now=0.0, ttl=10.0)
        store.put_range("other", ("k0",), ("k9",), None, False,
                        [(("k5",), {})], now=0.0, ttl=10.0)
        dropped = store.invalidate_key("ns", ("k5",))
        assert dropped == 2  # the entity entry and the one covering range
        assert len(store) == 2  # the non-overlapping and other-namespace ranges


# ----------------------------------------------------------------- the policy


class TestPolicy:
    def spec(self, bound: float = 10.0) -> ConsistencySpec:
        return ConsistencySpec(read=ReadConsistency(staleness_bound=bound))

    def test_ttl_is_bound_minus_headroom_minus_carried_staleness(self):
        policy = AdmissionPolicy(self.spec(10.0), propagation_headroom=1.0)
        assert policy.entity_ttl(0.0) == pytest.approx(9.0)
        assert policy.entity_ttl(4.0) == pytest.approx(5.0)
        assert policy.entity_ttl(9.5) == 0.0
        assert policy.range_ttl() == pytest.approx(9.0)

    def test_unverified_reads_are_never_admitted(self):
        policy = AdmissionPolicy(self.spec(10.0))
        assert policy.entity_ttl(None) == 0.0

    def test_headroom_swallowing_the_whole_budget_disables_caching(self):
        policy = AdmissionPolicy(self.spec(1.0), propagation_headroom=1.0)
        assert not policy.cacheable()

    def test_default_headroom_scales_with_the_bound_but_is_capped(self):
        assert AdmissionPolicy(self.spec(10.0)).propagation_headroom == pytest.approx(1.0)
        assert AdmissionPolicy(self.spec(600.0)).propagation_headroom == pytest.approx(2.0)


# ------------------------------------------------------------ engine behaviour


class TestEngineIntegration:
    def test_cache_defaults_on_and_false_opts_out(self):
        engine = Scads(seed=0, autoscale=False)
        assert engine.cache is not None
        opted_out = Scads(seed=0, autoscale=False, cache=False)
        assert opted_out.cache is None
        assert opted_out.cache_hit_counts() == (0, 0)

    def test_repeated_get_hits_cache_and_is_much_faster(self):
        engine = make_engine()
        engine.put("profiles", {"user_id": "u1", "bio": "hi"})
        engine.settle(1.0)
        miss = engine.get("profiles", ("u1",))
        hit = engine.get("profiles", ("u1",))
        assert hit.row == miss.row
        assert hit.latency < miss.latency / 2
        assert engine.cache.store.stats.hits == 1

    def test_write_through_invalidation_on_put_and_delete(self):
        engine = make_engine()
        engine.put("profiles", {"user_id": "u1", "bio": "v1"})
        engine.settle(1.0)
        engine.get("profiles", ("u1",))
        assert engine.cache.store.peek(
            entity_token(entity_namespace("profiles"), ("u1",))) is not None
        engine.put("profiles", {"user_id": "u1", "bio": "v2"})
        assert engine.cache.store.peek(
            entity_token(entity_namespace("profiles"), ("u1",))) is None
        engine.settle(1.0)
        engine.get("profiles", ("u1",))
        engine.delete("profiles", ("u1",))
        assert engine.cache.store.peek(
            entity_token(entity_namespace("profiles"), ("u1",))) is None

    def test_cached_query_range_invalidated_by_index_maintenance(self):
        engine = make_engine()
        engine.register_query(
            "profile_of", "SELECT * FROM profiles WHERE user_id = <uid> LIMIT 5")
        engine.put("profiles", {"user_id": "u1", "bio": "v1"})
        engine.settle(1.0)
        first = engine.query("profile_of", {"uid": "u1"})
        cached = engine.query("profile_of", {"uid": "u1"})
        assert cached.rows == first.rows
        assert engine.cache.store.stats.hits >= 1
        engine.put("profiles", {"user_id": "u1", "bio": "v2"})
        engine.settle(1.0)  # applies index maintenance -> invalidates the scan
        after = engine.query("profile_of", {"uid": "u1"})
        assert after.rows[0]["bio"] == "v2"

    def test_entries_expire_at_the_derived_ttl(self):
        engine = make_engine(staleness_bound=BOUND)
        engine.put("profiles", {"user_id": "u1", "bio": "hi"})
        engine.settle(1.0)
        engine.get("profiles", ("u1",))
        token = entity_token(entity_namespace("profiles"), ("u1",))
        entry = engine.cache.store.peek(token)
        assert entry is not None
        budget = engine.cache.policy.servable_budget
        assert entry.expires_at - entry.inserted_at <= budget + 1e-9
        engine.run_for(budget + 0.1)
        assert engine.cache.store.get(token, engine.now) is None

    def test_read_your_writes_session_bypasses_stale_cache_entry(self):
        """Regression: a RYW session must not be served a cached value older
        than its own write, even when the entry is well inside its TTL."""
        engine = make_engine(read_your_writes=True)
        namespace = entity_namespace("profiles")
        engine.put("profiles", {"user_id": "u1", "bio": "old"}, session_id="w")
        engine.settle(1.0)
        engine.put("profiles", {"user_id": "u1", "bio": "new"}, session_id="w")
        # Forge the race the bypass exists for: a pre-write value readmitted
        # (e.g. by another client's replica read) after the invalidation.
        stale = VersionedValue(value={"user_id": "u1", "bio": "old"},
                               timestamp=0.0, version=1)
        engine.cache.store.put_entity(namespace, ("u1",), stale,
                                      engine.now, ttl=BOUND)
        # A session without guarantees is served the cached value — the
        # bypass below is per-session, not an invalidation.
        other = engine.get("profiles", ("u1",), session_id="other")
        assert other.row["bio"] == "old"
        outcome = engine.get("profiles", ("u1",), session_id="w")
        assert outcome.row["bio"] == "new"
        assert engine.cache.session_bypasses == 1
        # The bypassed read read through the cluster, refreshing the entry.
        refreshed = engine.cache.store.peek(entity_token(namespace, ("u1",)))
        assert refreshed is not None and refreshed.value.value["bio"] == "new"

    def test_monitor_measures_hit_rate_and_planner_discounts_demand(self):
        engine = make_engine()
        engine.put("profiles", {"user_id": "u1", "bio": "hi"})
        engine.settle(1.0)
        for _ in range(50):
            engine.get("profiles", ("u1",))
        observation = engine.monitor.close_window(engine.now + 30.0)
        assert observation.cache_hit_rate > 0.5
        slas = engine.slas
        busy = engine.planner.plan(forecast_rate=20_000.0, write_fraction=0.1,
                                   slas=slas, spec=engine.spec)
        absorbed = engine.planner.plan(forecast_rate=20_000.0, write_fraction=0.1,
                                       slas=slas, spec=engine.spec,
                                       cache_hit_rate=0.9)
        assert absorbed.target_nodes < busy.target_nodes
        assert absorbed.cache_absorbed_fraction == pytest.approx(0.9)
        assert "cache absorbing" in absorbed.reason


class TestStalenessEdgeCases:
    def test_replica_two_versions_behind_is_never_admitted(self):
        """A replica that missed two writes has unknowable true staleness
        (the intermediate version's commit time is gone from the primary);
        such reads serve but must not be cached."""
        engine = make_engine()
        namespace = entity_namespace("profiles")
        engine.put("profiles", {"user_id": "u1", "bio": "v1"})
        engine.settle(2.0)  # replicas converge on version 1
        group = engine.cluster.group_for_key(namespace, ("u1",))
        primary = engine.cluster.nodes[group.primary]
        # Advance the primary two versions without replicating, so replicas
        # stay at version 1 while the primary is at version 3.
        for version in (2, 3):
            primary.put(namespace, ("u1",), VersionedValue(
                value={"user_id": "u1", "bio": f"v{version}"},
                timestamp=engine.now, version=version), engine.now)
        saw_replica_read = False
        for _ in range(64):
            value, _, success, _, _, freshness = engine._consistent_read(
                namespace, ("u1",), None)
            assert success
            if value.version == 1:  # served by a lagging replica
                saw_replica_read = True
                assert freshness is None, \
                    "a >=2-version gap must be reported as unverified"
            else:
                assert value.version == 3 and freshness == pytest.approx(0.0)
        assert saw_replica_read
        # And the read path must therefore never have admitted version 1.
        entry = engine.cache.store.peek(entity_token(namespace, ("u1",)))
        assert entry is None or entry.value.version == 3

    def test_one_version_behind_carries_the_supersede_age(self):
        engine = make_engine()
        namespace = entity_namespace("profiles")
        engine.put("profiles", {"user_id": "u1", "bio": "v1"})
        engine.settle(2.0)
        group = engine.cluster.group_for_key(namespace, ("u1",))
        primary = engine.cluster.nodes[group.primary]
        primary.put(namespace, ("u1",), VersionedValue(
            value={"user_id": "u1", "bio": "v2"},
            timestamp=engine.now, version=2), engine.now)
        engine.run_for(3.0)  # version 1 has now been superseded for 3 seconds
        for _ in range(64):
            value, _, success, _, _, freshness = engine._consistent_read(
                namespace, ("u1",), None)
            assert success
            if value.version == 1:
                assert freshness == pytest.approx(3.0, abs=0.01)
                return
        pytest.fail("no replica read observed in 64 attempts")

    def test_range_cache_fills_read_the_primary(self):
        """Cached scans must come from the primary: apply-time invalidation
        has already fired for writes a lagging replica may still miss."""
        engine = make_engine()
        engine.register_query(
            "profile_of", "SELECT * FROM profiles WHERE user_id = <uid> LIMIT 5")
        engine.put("profiles", {"user_id": "u1", "bio": "v1"})
        engine.settle(1.0)
        seen = []
        original = engine.router.read_range

        def spy(key_range, limit=None, from_primary=False, reverse=False):
            seen.append(from_primary)
            return original(key_range, limit=limit, from_primary=from_primary,
                            reverse=reverse)

        engine.router.read_range = spy
        engine.query("profile_of", {"uid": "u1"})  # miss -> primary fill
        assert seen == [True]
        engine.query("profile_of", {"uid": "u1"})  # hit -> no router call
        assert seen == [True]


# ------------------------------------------------- the staleness-bound property


def _staleness_violations(ops, bound: float = BOUND) -> list:
    """Drive an engine through ``ops`` and return every bound violation.

    An external write history (per-key sequence numbers embedded in the row)
    is the oracle: a read returning sequence ``s`` while a later write with
    sequence ``s' > s`` has been committed for longer than the bound is a
    violation, no matter which tier served it.
    """
    engine = make_engine(staleness_bound=bound, seed=11)
    users = [f"u{i}" for i in range(4)]
    history = {u: [] for u in users}  # per key: [(seq, commit_time), ...]
    sequence = {u: 0 for u in users}
    violations = []
    for kind, index, delay in ops:
        user = users[index]
        if kind == "put":
            sequence[user] += 1
            outcome = engine.put("profiles", {
                "user_id": user, "bio": f"seq{sequence[user]:04d}",
            })
            if outcome.success:
                history[user].append((sequence[user], engine.now))
        else:
            outcome = engine.get("profiles", (user,))
            if outcome.success and outcome.row is not None:
                seen = int(outcome.row["bio"][3:])
                for seq, committed_at in history[user]:
                    if seq > seen and engine.now - committed_at > bound + 1e-6:
                        violations.append((user, seen, seq, engine.now - committed_at))
        engine.run_for(delay)
    return violations


@pytest.mark.property
@given(st.lists(
    st.tuples(
        st.sampled_from(["put", "get"]),
        st.integers(min_value=0, max_value=3),
        st.floats(min_value=0.0, max_value=3.0,
                  allow_nan=False, allow_infinity=False),
    ),
    min_size=5, max_size=40,
))
def test_no_cached_read_ever_exceeds_the_declared_bound(ops):
    assert _staleness_violations(ops) == []


class TestRangeContainment:
    """A narrower range scan served from a wider complete cached entry."""

    def make_store(self):
        store = StalenessBudgetCache(capacity=256)
        rows = [((f"u{i:02d}",), {"id": i}) for i in range(6)]
        store.put_range("ns", ("u00",), ("u06",), None, False, rows,
                        now=0.0, ttl=10.0)
        return store, rows

    def test_exact_token_still_hits_first(self):
        store, rows = self.make_store()
        served = store.get_range("ns", ("u00",), ("u06",), None, False, now=1.0)
        assert served == rows
        assert store.stats.hits == 1
        assert store.stats.containment_hits == 0

    def test_narrower_scan_served_from_wider_entry(self):
        store, rows = self.make_store()
        served = store.get_range("ns", ("u02",), ("u05",), None, False, now=1.0)
        assert served == rows[2:5]
        assert store.stats.hits == 1
        assert store.stats.containment_hits == 1
        assert store.stats.misses == 0

    def test_requested_limit_applied_to_derived_answer(self):
        store, rows = self.make_store()
        served = store.get_range("ns", ("u01",), ("u06",), 2, False, now=1.0)
        assert served == rows[1:3]

    def test_reverse_orientation_is_reconciled(self):
        store, rows = self.make_store()
        served = store.get_range("ns", ("u01",), ("u04",), 2, True, now=1.0)
        assert served == [rows[3], rows[2]]

    def test_first_admitted_covering_entry_serves_deterministically(self):
        """With several covering entries, the oldest-admitted one serves —
        insertion order, not hash order, so two invocations of the same
        seeded run cannot diverge on which entry gets the LRU refresh."""
        store, rows = self.make_store()
        store.put_range("ns", ("u00",), ("u05",), None, False, rows[:5],
                        now=0.0, ttl=10.0)
        served = store.get_range("ns", ("u01",), ("u04",), None, False, now=1.0)
        assert served == rows[1:4]
        # The wider, first-admitted entry served and took the LRU refresh.
        assert next(reversed(store._entries)) == (
            "range", "ns", ("u00",), ("u06",), None, False)

    def test_truncated_wide_entry_never_serves_by_containment(self):
        """An entry capped by its own limit has unknown coverage past the cut;
        serving a sub-range from it could fabricate a gap."""
        store = StalenessBudgetCache(capacity=256)
        rows = [((f"u{i:02d}",), {"id": i}) for i in range(4)]
        store.put_range("ns", ("u00",), ("u09",), 4, False, rows,
                        now=0.0, ttl=10.0)  # len(rows) == limit: truncated
        assert store.get_range("ns", ("u01",), ("u03",), None, False, 1.0) is None
        assert store.stats.misses == 1
        assert store.stats.containment_hits == 0

    def test_non_covering_and_expired_entries_miss(self):
        store, _ = self.make_store()
        # Requested range pokes past the cached end.
        assert store.get_range("ns", ("u04",), ("u99",), None, False, 1.0) is None
        # Unbounded request cannot be covered by a bounded entry.
        assert store.get_range("ns", None, None, None, False, 1.0) is None
        # After expiry nothing serves (and the entry is reclaimed).
        assert store.get_range("ns", ("u02",), ("u04",), None, False, 11.0) is None
        assert store.stats.ttl_expirations == 1
        assert len(store) == 0

    def test_engine_paginated_query_hits_by_containment(self):
        """One template, narrower page second: the narrow parameter binding
        must hit the wider binding's cached scan instead of missing on its
        exact-parameter key."""
        engine = make_engine()
        engine.register_entity(EntitySchema(
            "people", key_fields=[Field("city"), Field("pid")],
            value_fields=[Field("name")], max_per_partition=50))
        engine.register_query(
            "page",
            "SELECT * FROM people WHERE city = <c> "
            "AND name BETWEEN <lo> AND <hi> LIMIT 50")
        for i in range(6):
            engine.put("people", {"pid": f"p{i}", "city": "sf", "name": f"n{i}"})
        engine.settle(1.0)
        wide = engine.query("page", {"c": "sf", "lo": "n0", "hi": "n5"})
        assert len(wide.rows) == 6
        before = engine.cache.store.stats.containment_hits
        narrow = engine.query("page", {"c": "sf", "lo": "n1", "hi": "n3"})
        assert sorted(r["name"] for r in narrow.rows) == ["n1", "n2", "n3"]
        assert engine.cache.store.stats.containment_hits == before + 1


class TestMissPathLatencyLabel:
    """Blended windows train the latency model on cluster-served reads only."""

    def test_blended_window_still_trains_on_the_miss_path_label(self):
        engine = make_engine()
        engine.put("profiles", {"user_id": "u1", "bio": "hi"})
        engine.settle(1.0)
        engine.monitor.close_window(engine.now)  # baseline (duration-0 window)
        miss = engine.get("profiles", ("u1",))   # cluster read, fills cache
        for _ in range(50):
            engine.get("profiles", ("u1",))      # sub-ms front-tier hits
        targets_before = len(engine.latency_model._targets)
        observation = engine.monitor.close_window(engine.now + 30.0)
        assert observation.cache_hit_rate > \
            engine.monitor.CACHE_BLEND_TRAINING_CUTOFF
        # The clean label is exactly the one cluster-served read's latency...
        assert observation.cluster_read_percentile == pytest.approx(miss.latency)
        # ...and it is what the model trained on — not the blended percentile.
        assert len(engine.latency_model._targets) == targets_before + 1
        assert engine.latency_model._targets[-1] == pytest.approx(miss.latency)
        blended = observation.sla_reports["read"].observed_percentile_latency
        assert blended < miss.latency  # the blend the old skip was protecting

    def test_window_without_cluster_reads_keeps_the_skip(self):
        engine = make_engine()
        engine.put("profiles", {"user_id": "u1", "bio": "hi"})
        engine.settle(1.0)
        engine.monitor.close_window(engine.now)  # baseline (duration-0 window)
        engine.get("profiles", ("u1",))
        engine.monitor.close_window(engine.now + 30.0)  # drains the miss read
        for _ in range(40):
            engine.get("profiles", ("u1",))              # hits only
        targets_before = len(engine.latency_model._targets)
        observation = engine.monitor.close_window(engine.now + 60.0)
        assert observation.cache_hit_rate > \
            engine.monitor.CACHE_BLEND_TRAINING_CUTOFF
        assert observation.cluster_read_percentile is None
        assert len(engine.latency_model._targets) == targets_before

    def test_uncached_engine_skips_the_tracker_and_trains_unchanged(self):
        """Without a cache the miss-path tracker stays empty (nothing can
        blend, and nothing may grow unboundedly when no monitor drains it);
        training uses the tracker report exactly as before the PR."""
        engine = Scads(seed=0, autoscale=False, initial_groups=2, cache=False)
        engine.register_entity(EntitySchema(
            "profiles", key_fields=[Field("user_id")],
            value_fields=[Field("bio")]))
        engine.put("profiles", {"user_id": "u1", "bio": "hi"})
        engine.settle(1.0)
        engine.monitor.close_window(engine.now)  # baseline (duration-0 window)
        engine.get("profiles", ("u1",))
        assert len(engine._cluster_read_window) == 0
        targets_before = len(engine.latency_model._targets)
        observation = engine.monitor.close_window(engine.now + 30.0)
        assert observation.cache_hit_rate == 0.0
        assert observation.cluster_read_percentile is None
        # An unblended window trains on the tracker report, as before.
        assert len(engine.latency_model._targets) == targets_before + 1
        assert engine.latency_model._targets[-1] == pytest.approx(
            observation.sla_reports["read"].observed_percentile_latency)
