"""Hot-path perf machinery: pooled-sampler identity and route-memo safety.

The PR that pooled RNG sampling and memoized partitioner routing rests on two
invariants:

1. **Pooled draws are invisible** — every ``LatencyModel`` (and the pooled
   workload generators) must emit the *identical* value sequence a scalar
   draw loop would have produced from the same stream.  numpy fills
   distribution arrays element-by-element from the same bit stream, so this
   holds by construction; these property tests pin it against numpy upgrades
   and future model edits.
2. **The route memo never serves stale topology** — every ownership-changing
   operation (hash: add/remove group, set_weight; range: split/merge/
   reassign/set_splits/rebalance) must bump the topology epoch and invalidate
   the token→group memo, so a memoized partitioner always answers exactly
   like a freshly built (memo-cold) replica of itself.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.latency import (
    ConstantLatency,
    EmpiricalLatency,
    ExponentialLatency,
    LogNormalLatency,
    ParetoLatency,
    QueueingLatency,
    percentile_of,
)
from repro.sim.randomness import ZipfGenerator
from repro.storage.partitioner import (
    ConsistentHashPartitioner,
    PartitionerError,
    RangePartitioner,
)

pytestmark = [pytest.mark.tier1, pytest.mark.property]


# ------------------------------------------------- pooled sampler identity


def _scalar_reference(model, rng, count):
    """The value sequence the pre-pooling scalar implementation produced."""
    if isinstance(model, ConstantLatency):
        return [model.value] * count
    if isinstance(model, ExponentialLatency):
        return [float(rng.exponential(model.mean())) for _ in range(count)]
    if isinstance(model, LogNormalLatency):
        return [float(rng.lognormal(mean=np.log(model.median), sigma=model.sigma))
                for _ in range(count)]
    if isinstance(model, ParetoLatency):
        return [float(model.scale * (1.0 + rng.pareto(model.shape))) for _ in range(count)]
    if isinstance(model, EmpiricalLatency):
        samples = model._samples
        return [float(samples[rng.integers(0, samples.size)]) for _ in range(count)]
    raise AssertionError(f"no scalar reference for {type(model).__name__}")


MODEL_BUILDERS = [
    lambda: ConstantLatency(0.004),
    lambda: ExponentialLatency(0.01),
    lambda: LogNormalLatency(0.004, 0.45),
    lambda: ParetoLatency(0.002, 2.5),
    lambda: EmpiricalLatency([0.001, 0.002, 0.005, 0.03]),
]


@pytest.mark.parametrize("build", MODEL_BUILDERS)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1),
       count=st.integers(min_value=1, max_value=2500))
@settings(deadline=None)
def test_pooled_sampler_matches_scalar_draws(build, seed, count):
    """Pooled ``sample()`` emits the identical per-stream value sequence.

    ``count`` deliberately crosses the pool block size so block refills are
    exercised, not just the first block.
    """
    model = build()
    rng_pooled = np.random.default_rng(seed)
    rng_scalar = np.random.default_rng(seed)
    pooled = [model.sample(rng_pooled) for _ in range(count)]
    reference = _scalar_reference(build(), rng_scalar, count)
    assert pooled == reference


@pytest.mark.parametrize("build", MODEL_BUILDERS)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1),
       split=st.integers(min_value=0, max_value=700),
       bulk=st.integers(min_value=1, max_value=1500))
@settings(deadline=None)
def test_sample_many_continues_the_pooled_stream(build, seed, split, bulk):
    """Interleaving scalar draws with ``sample_many`` preserves draw order."""
    model = build()
    rng_pooled = np.random.default_rng(seed)
    head = [model.sample(rng_pooled) for _ in range(split)]
    tail = model.sample_many(rng_pooled, bulk).tolist()
    reference = _scalar_reference(build(), np.random.default_rng(seed), split + bulk)
    assert head + tail == pytest.approx(reference)


def test_queueing_latency_pools_through_base():
    model = QueueingLatency(LogNormalLatency(0.004, 0.45))
    model.set_utilisation(0.5)
    rng = np.random.default_rng(3)
    pooled = [model.sample(rng) for _ in range(1500)]
    reference = [v / 0.5 for v in
                 _scalar_reference(LogNormalLatency(0.004, 0.45),
                                   np.random.default_rng(3), 1500)]
    assert pooled == pytest.approx(reference)


def test_percentile_of_matches_scalar_draw_percentile():
    model = LogNormalLatency(0.004, 0.5)
    vectorized = percentile_of(model, np.random.default_rng(9), 99.0, samples=3000)
    reference = np.percentile(
        _scalar_reference(LogNormalLatency(0.004, 0.5), np.random.default_rng(9), 3000),
        99.0,
    )
    assert vectorized == pytest.approx(float(reference))


@given(seed=st.integers(min_value=0, max_value=2**32 - 1),
       count=st.integers(min_value=1, max_value=2500))
@settings(deadline=None)
def test_zipf_pooled_draws_match_scalar_uniforms(seed, count):
    """ZipfGenerator's pooled uniforms emit the pre-pooling index sequence."""
    zipf = ZipfGenerator(97, 0.8, np.random.default_rng(seed))
    pooled = [zipf.draw() for _ in range(count)]
    rng = np.random.default_rng(seed)
    cdf = zipf._cdf
    reference = [int(np.searchsorted(cdf, rng.random())) for _ in range(count)]
    assert pooled == reference


# ------------------------------------------------- route memo invalidation


HASH_TOKENS = [f"u{i:03d}" for i in range(80)]


def _replay_hash(ops):
    """A fresh (memo-cold) hash partitioner after replaying ``ops``."""
    partitioner = ConsistentHashPartitioner(["g0", "g1"], virtual_nodes=16)
    for op in ops:
        try:
            if op[0] == "add":
                partitioner.add_group(op[1])
            elif op[0] == "remove":
                partitioner.remove_group(op[1])
            else:
                partitioner.set_weight(op[1], op[2])
        except PartitionerError:
            pass
    return partitioner


hash_ops = st.lists(
    st.one_of(
        st.tuples(st.just("add"), st.sampled_from([f"g{i}" for i in range(5)])),
        st.tuples(st.just("remove"), st.sampled_from([f"g{i}" for i in range(5)])),
        st.tuples(st.just("weight"), st.sampled_from([f"g{i}" for i in range(5)]),
                  st.sampled_from([0.25, 0.5, 1.0, 1.75, 3.0])),
    ),
    max_size=12,
)


@given(ops=hash_ops)
@settings(deadline=None)
def test_hash_route_memo_invalidates_across_topology_changes(ops):
    """After any op sequence, memoized routes equal a memo-cold replica's.

    The memoized partitioner answers queries *between* ops (priming the memo
    with soon-to-be-stale routes); a stale entry surviving an epoch bump
    would diverge from the fresh replay.
    """
    memoized = ConsistentHashPartitioner(["g0", "g1"], virtual_nodes=16)
    applied = []
    for op in ops:
        for token in HASH_TOKENS[::7]:  # prime the memo before each change
            memoized.group_for_token(token)
        try:
            if op[0] == "add":
                memoized.add_group(op[1])
            elif op[0] == "remove":
                memoized.remove_group(op[1])
            else:
                memoized.set_weight(op[1], op[2])
            applied.append(op)
        except PartitionerError:
            pass
    fresh = _replay_hash(applied)
    for token in HASH_TOKENS:
        assert memoized.group_for_token(token) == fresh.group_for_token(token)


def test_hash_epoch_bumps_on_each_topology_change():
    partitioner = ConsistentHashPartitioner(["g0", "g1"], virtual_nodes=16)
    epoch = partitioner.topology_epoch
    partitioner.add_group("g2")
    assert partitioner.topology_epoch > epoch
    epoch = partitioner.topology_epoch
    partitioner.set_weight("g2", 2.0)
    assert partitioner.topology_epoch > epoch
    epoch = partitioner.topology_epoch
    partitioner.remove_group("g2")
    assert partitioner.topology_epoch > epoch


def test_range_route_memo_invalidates_across_split_merge_reassign():
    """Route after each topology change matches an unmemoized partitioner."""
    tokens = [f"u{i:03d}" for i in range(40)]
    memoized = RangePartitioner(["g0", "g1", "g2"])
    mirror_ops = []

    def check():
        fresh = RangePartitioner(["g0", "g1", "g2"])
        for name, args in mirror_ops:
            getattr(fresh, name)(*args)
        for token in tokens:
            assert memoized.group_for_token(token) == fresh.group_for_token(token)

    def apply(name, *args):
        for token in tokens:  # prime the memo with the pre-change routes
            memoized.group_for_token(token)
        getattr(memoized, name)(*args)
        mirror_ops.append((name, args))
        check()

    apply("set_splits", ["", "u010", "u020"], ["g0", "g1", "g2"])
    apply("split_at", "u015")        # -> [g0, g1, g1, g2]
    apply("merge_at", 1)             # -> [g0, g1, g2] (same-owner merge)
    apply("reassign", 2, "g0")       # -> [g0, g1, g0]
    apply("add_group", "g3")
    apply("reassign", 0, "g3")       # -> [g3, g1, g0]
    apply("remove_group", "g2")      # unreferenced group leaves cleanly
    apply("rebalance_evenly", tokens)


def test_range_epoch_bumps_on_each_topology_change():
    partitioner = RangePartitioner(["g0", "g1"])
    operations = [
        ("set_splits", (["", "u5"], ["g0", "g1"])),
        ("split_at", ("u7",)),
        ("reassign", (1, "g1")),
        ("merge_at", (1,)),
        ("add_group", ("g2",)),
        ("remove_group", ("g2",)),
        ("rebalance_evenly", (["a", "b", "c"],)),
    ]
    for name, args in operations:
        epoch = partitioner.topology_epoch
        getattr(partitioner, name)(*args)
        assert partitioner.topology_epoch > epoch, name
