"""Unit tests for the performance-safe query language: lexer, parser,
analyzer (scale-independence checking), and compiler."""

from __future__ import annotations

import pytest

from repro.core.query.analyzer import QueryAnalyzer, QueryRejected, RejectionReason
from repro.core.query.ast import ColumnRef, Literal, Parameter
from repro.core.query.compiler import CompileError, QueryCompiler
from repro.core.query.lexer import LexError, TokenType, tokenize
from repro.core.query.parser import ParseError, parse_query
from repro.core.schema import EntitySchema, Field, FieldType, SchemaRegistry

pytestmark = pytest.mark.tier1

FRIEND_CAP = 5000


def social_registry(friend_cap=FRIEND_CAP, status_cap=1000, follower_bound=None):
    registry = SchemaRegistry()
    registry.register_entity(EntitySchema(
        name="profiles",
        key_fields=[Field("user_id")],
        value_fields=[Field("name"), Field("birthday"), Field("hometown")],
    ))
    registry.register_entity(EntitySchema(
        name="friendships",
        key_fields=[Field("f1"), Field("f2")],
        max_per_partition=friend_cap,
        column_bounds={"f2": friend_cap},
    ))
    registry.register_entity(EntitySchema(
        name="statuses",
        key_fields=[Field("user_id"), Field("status_id", FieldType.INT)],
        value_fields=[Field("text")],
        max_per_partition=status_cap,
    ))
    # Twitter-style follows: unbounded unless follower_bound is given.
    registry.register_entity(EntitySchema(
        name="follows",
        key_fields=[Field("follower"), Field("followee")],
        max_per_partition=follower_bound,
    ))
    return registry


BIRTHDAY_SQL = (
    "SELECT p.* FROM friendships f JOIN profiles p ON f.f2 = p.user_id "
    "WHERE f.f1 = <user_id> ORDER BY p.birthday LIMIT 20"
)


# ---------------------------------------------------------------------- lexer


class TestLexer:
    def test_parameters_are_single_tokens(self):
        tokens = tokenize("WHERE f1 = <user_id>")
        kinds = [t.token_type for t in tokens]
        assert TokenType.PARAMETER in kinds
        parameter = [t for t in tokens if t.token_type is TokenType.PARAMETER][0]
        assert parameter.value == "user_id"

    def test_comparison_operators_still_lex(self):
        tokens = tokenize("a < 5 AND b >= 3")
        operators = [t.value for t in tokens if t.token_type is TokenType.OPERATOR]
        assert operators == ["<", ">="]

    def test_keywords_are_case_insensitive(self):
        tokens = tokenize("select * FROM t")
        assert tokens[0].is_keyword("select")
        assert tokens[2].is_keyword("from")

    def test_string_literals(self):
        tokens = tokenize("hometown = 'berkeley'")
        strings = [t for t in tokens if t.token_type is TokenType.STRING]
        assert strings[0].value == "berkeley"

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize("name = 'oops")

    def test_numbers_int_and_float(self):
        tokens = tokenize("LIMIT 10 AND x = 2.5")
        numbers = [t.value for t in tokens if t.token_type is TokenType.NUMBER]
        assert numbers == [10, 2.5]

    def test_unknown_character_raises(self):
        with pytest.raises(LexError):
            tokenize("SELECT ; FROM t")


# --------------------------------------------------------------------- parser


class TestParser:
    def test_parses_the_papers_example(self):
        template = parse_query(BIRTHDAY_SQL)
        assert template.from_table == "friendships"
        assert template.from_alias == "f"
        assert len(template.joins) == 1
        assert template.joins[0].table == "profiles"
        assert template.order_by is not None
        assert template.order_by.column.column == "birthday"
        assert template.limit == 20
        assert template.parameters() == ["user_id"]

    def test_select_star_variants(self):
        assert parse_query("SELECT * FROM t WHERE a = <x>").select[0].is_star
        template = parse_query("SELECT p.* FROM t p WHERE a = <x>")
        assert template.select[0].star_alias == "p"

    def test_select_column_list(self):
        template = parse_query("SELECT a, p.b FROM t p WHERE a = <x>")
        assert template.select[0].column == ColumnRef(None, "a")
        assert template.select[1].column == ColumnRef("p", "b")

    def test_where_with_literals_and_parameters(self):
        template = parse_query("SELECT * FROM t WHERE a = <x> AND b = 'lit' AND c >= 3")
        assert len(template.where) == 3
        assert isinstance(template.where[0].value, Parameter)
        assert isinstance(template.where[1].value, Literal)
        assert template.where[2].op == ">="

    def test_between_predicate(self):
        template = parse_query("SELECT * FROM t WHERE a = <x> AND b BETWEEN 1 AND 5")
        predicate = template.where[1]
        assert predicate.op == "between"
        assert predicate.value.value == 1
        assert predicate.value_high.value == 5

    def test_order_by_desc(self):
        template = parse_query("SELECT * FROM t WHERE a = <x> ORDER BY b DESC")
        assert template.order_by.descending

    def test_or_is_rejected_with_guidance(self):
        with pytest.raises(ParseError, match="OR is not supported"):
            parse_query("SELECT * FROM t WHERE a = <x> OR b = <x>")

    def test_non_equality_join_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT * FROM t JOIN s ON t.a < s.b WHERE t.a = <x>")

    def test_limit_must_be_positive_integer(self):
        with pytest.raises(ParseError):
            parse_query("SELECT * FROM t WHERE a = <x> LIMIT 0")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT * FROM t WHERE a = <x> LIMIT 5 garbage")

    def test_empty_text_rejected(self):
        with pytest.raises(ParseError):
            parse_query("   ")

    def test_missing_from_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT *")


# ------------------------------------------------------------------- analyzer


class TestAnalyzerAdmission:
    def _analyze(self, sql, registry=None, **kwargs):
        analyzer = QueryAnalyzer(registry or social_registry(), **kwargs)
        return analyzer.analyze(parse_query(sql))

    def test_paper_birthday_query_is_admitted(self):
        analyzed = self._analyze(BIRTHDAY_SQL)
        assert analyzed.anchor_parameter == "user_id"
        assert [step.entity.name for step in analyzed.chain] == ["friendships", "profiles"]
        assert analyzed.sort_column == ("p", "birthday")
        assert analyzed.read_work_bound == 20
        assert analyzed.update_work_bound == FRIEND_CAP

    def test_single_table_query_admitted(self):
        analyzed = self._analyze(
            "SELECT * FROM statuses WHERE user_id = <u> ORDER BY status_id DESC LIMIT 10"
        )
        assert analyzed.result_bound == 1000
        assert analyzed.read_work_bound == 10
        assert analyzed.update_work_bound == 1

    def test_friends_of_friends_admitted_with_limit(self):
        sql = (
            "SELECT p.* FROM friendships f JOIN friendships g ON f.f2 = g.f1 "
            "JOIN profiles p ON g.f2 = p.user_id WHERE f.f1 = <u> LIMIT 20"
        )
        analyzed = self._analyze(sql)
        assert analyzed.result_bound == FRIEND_CAP * FRIEND_CAP
        assert analyzed.read_work_bound == 20
        # Maintenance work is bounded by one friend-list traversal, not K^2.
        assert analyzed.update_work_bound == FRIEND_CAP

    def test_query_without_parameter_rejected(self):
        with pytest.raises(QueryRejected) as excinfo:
            self._analyze("SELECT * FROM profiles WHERE hometown = 'berkeley'")
        assert excinfo.value.reason is RejectionReason.NO_PARAMETERISED_EQUALITY

    def test_non_key_anchor_rejected(self):
        with pytest.raises(QueryRejected) as excinfo:
            self._analyze("SELECT * FROM profiles WHERE hometown = <town>")
        assert excinfo.value.reason is RejectionReason.ANCHOR_NOT_KEY_PREFIX

    def test_twitter_style_unbounded_fanout_rejected(self):
        with pytest.raises(QueryRejected) as excinfo:
            self._analyze("SELECT * FROM follows WHERE follower = <u> LIMIT 10")
        assert excinfo.value.reason is RejectionReason.UNBOUNDED_ANCHOR

    def test_twitter_join_rejected_even_with_limit(self):
        sql = (
            "SELECT p.* FROM follows f JOIN profiles p ON f.followee = p.user_id "
            "WHERE f.follower = <u> LIMIT 10"
        )
        with pytest.raises(QueryRejected) as excinfo:
            self._analyze(sql)
        assert excinfo.value.reason is RejectionReason.UNBOUNDED_ANCHOR

    def test_bounded_follows_is_admitted(self):
        registry = social_registry(follower_bound=2000)
        analyzed = self._analyze(
            "SELECT * FROM follows WHERE follower = <u> LIMIT 10", registry=registry
        )
        assert analyzed.result_bound == 2000

    def test_missing_limit_on_large_result_rejected(self):
        sql = (
            "SELECT p.* FROM friendships f JOIN friendships g ON f.f2 = g.f1 "
            "JOIN profiles p ON g.f2 = p.user_id WHERE f.f1 = <u>"
        )
        with pytest.raises(QueryRejected) as excinfo:
            self._analyze(sql)
        assert excinfo.value.reason is RejectionReason.READ_WORK_UNBOUNDED

    def test_update_work_cap_enforced(self):
        with pytest.raises(QueryRejected) as excinfo:
            self._analyze(BIRTHDAY_SQL, max_update_work=100)
        assert excinfo.value.reason is RejectionReason.UPDATE_WORK_EXCEEDED

    def test_read_work_cap_enforced(self):
        with pytest.raises(QueryRejected) as excinfo:
            self._analyze(
                "SELECT * FROM friendships WHERE f1 = <u> LIMIT 5000", max_read_work=100
            )
        assert excinfo.value.reason is RejectionReason.READ_WORK_EXCEEDED

    def test_unknown_entity_rejected(self):
        with pytest.raises(QueryRejected) as excinfo:
            self._analyze("SELECT * FROM nonexistent WHERE a = <x>")
        assert excinfo.value.reason is RejectionReason.UNKNOWN_ENTITY

    def test_unknown_column_rejected(self):
        with pytest.raises(QueryRejected) as excinfo:
            self._analyze("SELECT * FROM profiles WHERE nonexistent = <x>")
        assert excinfo.value.reason is RejectionReason.UNKNOWN_COLUMN

    def test_parameter_off_anchor_rejected(self):
        sql = (
            "SELECT p.* FROM friendships f JOIN profiles p ON f.f2 = p.user_id "
            "WHERE f.f1 = <u> AND p.user_id = <v> LIMIT 5"
        )
        with pytest.raises(QueryRejected) as excinfo:
            self._analyze(sql)
        assert excinfo.value.reason is RejectionReason.MULTIPLE_ANCHORS

    def test_disconnected_join_rejected(self):
        sql = (
            "SELECT p.* FROM friendships f JOIN profiles p ON p.user_id = p.user_id "
            "WHERE f.f1 = <u> LIMIT 5"
        )
        with pytest.raises(QueryRejected) as excinfo:
            self._analyze(sql)
        assert excinfo.value.reason is RejectionReason.NON_LINEAR_JOIN

    def test_range_predicate_becomes_sort_column(self):
        analyzed = self._analyze(
            "SELECT * FROM statuses WHERE user_id = <u> AND status_id > 100 LIMIT 10"
        )
        assert analyzed.sort_column == ("statuses", "status_id")
        assert analyzed.range_predicate is not None

    def test_range_predicate_off_sort_rejected(self):
        sql = (
            "SELECT p.* FROM friendships f JOIN profiles p ON f.f2 = p.user_id "
            "WHERE f.f1 = <u> AND p.hometown > 'a' ORDER BY p.birthday LIMIT 5"
        )
        with pytest.raises(QueryRejected) as excinfo:
            self._analyze(sql)
        assert excinfo.value.reason is RejectionReason.RANGE_NOT_ON_SORT

    def test_multiple_range_predicates_rejected(self):
        sql = (
            "SELECT * FROM statuses WHERE user_id = <u> "
            "AND status_id > 1 AND status_id < 100 AND text > 'a' LIMIT 5"
        )
        with pytest.raises(QueryRejected) as excinfo:
            self._analyze(sql)
        assert excinfo.value.reason is RejectionReason.MULTIPLE_RANGE_PREDICATES

    def test_residual_literal_filters_allowed(self):
        sql = (
            "SELECT p.* FROM friendships f JOIN profiles p ON f.f2 = p.user_id "
            "WHERE f.f1 = <u> AND p.hometown = 'berkeley' ORDER BY p.birthday LIMIT 5"
        )
        analyzed = self._analyze(sql)
        assert len(analyzed.residual_filters) == 1


# ------------------------------------------------------------------- compiler


class TestCompiler:
    def _compile(self, name, sql, compiler=None, registry=None):
        registry = registry or social_registry()
        analyzer = QueryAnalyzer(registry)
        compiler = compiler or QueryCompiler()
        return compiler.compile(name, analyzer.analyze(parse_query(sql))), compiler

    def test_birthday_index_layout(self):
        compiled, _ = self._compile("friend_birthdays", BIRTHDAY_SQL)
        spec = compiled.index_spec
        assert spec.anchor_entity == "friendships"
        assert spec.anchor_column == "f1"
        assert spec.final_entity == "profiles"
        assert spec.sort_column == "birthday"
        assert spec.sort_owner == "final"
        assert spec.key_length() == 3  # (user_id, birthday, friend_user_id)
        assert spec.namespace == "index:idx_friend_birthdays"

    def test_birthday_maintenance_rules_match_figure_3(self):
        compiled, _ = self._compile("friend_birthdays", BIRTHDAY_SQL)
        rows = {(r.table, r.field) for r in compiled.maintenance_rules
                if r.index_name == compiled.index_spec.name}
        assert rows == {("friendships", "*"), ("profiles", "birthday")}

    def test_friend_index_maintenance_rule(self):
        compiled, _ = self._compile(
            "friends", "SELECT * FROM friendships WHERE f1 = <u> LIMIT 5000"
        )
        rows = {(r.table, r.field) for r in compiled.maintenance_rules}
        assert rows == {("friendships", "*")}

    def test_friends_of_friends_needs_reverse_index(self):
        sql = (
            "SELECT p.* FROM friendships f JOIN friendships g ON f.f2 = g.f1 "
            "JOIN profiles p ON g.f2 = p.user_id WHERE f.f1 = <u> LIMIT 20"
        )
        compiled, _ = self._compile("fof", sql)
        assert len(compiled.reverse_indexes) == 1
        reverse = compiled.reverse_indexes[0]
        assert reverse.entity == "friendships"
        assert reverse.column == "f2"

    def test_friends_of_friends_has_no_profile_rule(self):
        sql = (
            "SELECT p.* FROM friendships f JOIN friendships g ON f.f2 = g.f1 "
            "JOIN profiles p ON g.f2 = p.user_id WHERE f.f1 = <u> LIMIT 20"
        )
        compiled, _ = self._compile("fof", sql)
        assert not any(
            r.table == "profiles" and r.index_name == compiled.index_spec.name
            for r in compiled.maintenance_rules
        )

    def test_cascade_source_reported_like_figure_3(self):
        compiler = QueryCompiler()
        self._compile("friends", "SELECT * FROM friendships WHERE f1 = <u> LIMIT 5000",
                      compiler=compiler)
        sql = (
            "SELECT p.* FROM friendships f JOIN friendships g ON f.f2 = g.f1 "
            "JOIN profiles p ON g.f2 = p.user_id WHERE f.f1 = <u> LIMIT 20"
        )
        compiled, _ = self._compile("fof", sql, compiler=compiler)
        friendship_rules = [r for r in compiled.maintenance_rules
                            if r.index_name == compiled.index_spec.name]
        assert any(r.display_table() == "idx_friends" for r in friendship_rules)

    def test_plan_prefix_and_limit(self):
        compiled, _ = self._compile("friend_birthdays", BIRTHDAY_SQL)
        plan = compiled.plan
        assert [c.kind for c in plan.prefix] == ["parameter"]
        assert plan.limit == 20
        assert plan.final_entity == "profiles"
        assert plan.parameter_names() == ["user_id"]

    def test_descending_plan(self):
        compiled, _ = self._compile(
            "recent", "SELECT * FROM statuses WHERE user_id = <u> ORDER BY status_id DESC LIMIT 10"
        )
        assert compiled.plan.descending

    def test_range_bound_in_plan(self):
        compiled, _ = self._compile(
            "since", "SELECT * FROM statuses WHERE user_id = <u> AND status_id > <cursor> LIMIT 10"
        )
        assert compiled.plan.range_bound is not None
        assert compiled.plan.range_bound.op == ">"
        assert "cursor" in compiled.plan.parameter_names()

    def test_duplicate_query_name_rejected(self):
        compiler = QueryCompiler()
        self._compile("q", "SELECT * FROM friendships WHERE f1 = <u> LIMIT 10", compiler=compiler)
        with pytest.raises(CompileError):
            self._compile("q", "SELECT * FROM friendships WHERE f1 = <u> LIMIT 10",
                          compiler=compiler)

    def test_empty_name_rejected(self):
        with pytest.raises(CompileError):
            self._compile("", "SELECT * FROM friendships WHERE f1 = <u> LIMIT 10")
