"""Burst-aware node load estimation and the batched dereference path.

Two halves of the same physical fix: co-timed operations (one query's
fan-out, one maintenance tick's writes) must not read as a million-ops/sec
arrival rate, and a query's bounded dereference list must reach storage as
per-group multigets rather than one independent request per entry.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.query.executor import QueryExecutor
from repro.storage.node import StorageNode
from repro.storage.records import VersionedValue

pytestmark = pytest.mark.tier1


def make_node(node_id="n1", capacity=100.0, seed=0):
    return StorageNode(node_id, np.random.default_rng(seed), capacity_ops_per_sec=capacity)


def vv(value, timestamp=0.0, version=1):
    return VersionedValue(value=value, timestamp=timestamp, version=version, writer="w")


class TestBurstAwareArrivalEstimate:
    def test_co_timed_burst_is_not_a_microsecond_rate(self):
        """A query's fan-out lands at one simulated instant; spreading the
        following gap over the burst must keep utilisation near truth."""
        node = make_node(capacity=100.0)
        for i in range(400):
            node.put("ns", ("seed", i), vv(i), now=0.0)
        # 10 co-timed ops every 0.5s = 20 ops/sec true rate on 100 capacity.
        for step in range(40):
            now = 1.0 + step * 0.5
            for k in range(10):
                node.get("ns", ("seed", k), now=now)
        assert node.utilisation() < 0.5
        assert node.arrival_rate() < 50.0

    def test_legacy_runaway_shape(self):
        """The pre-fix estimator read a node serving a handful of ops/sec as
        saturated (rate = 1/clamped-gap = 1e6); the spread estimator keeps
        the same sustained-burst workload an order of magnitude lower."""
        node = make_node(capacity=60.0)
        for step in range(60):
            now = step * 1.0
            for k in range(14):  # 14 ops/sec true load, all co-timed
                node.put("ns", ("k", step, k), vv(k), now=now)
        assert node.utilisation() < 0.6

    def test_evenly_spaced_stream_unchanged(self):
        """Spaced arrivals (burst size 1) keep the original EWMA behaviour."""
        node = make_node(capacity=100.0)
        for i in range(200):
            node.put("ns", ("k", i), vv(i), now=i * 0.001)  # 1000 ops/sec
        assert node.utilisation() > 0.8


class TestNodeMultiGet:
    def test_values_match_single_gets(self):
        node = make_node()
        node.put("ns", ("a",), vv(1), now=0.0)
        node.put("ns", ("b",), vv(2), now=0.0)
        node.put("ns", ("t",), VersionedValue(value=None, timestamp=0.0, version=2,
                                              writer="w", tombstone=True), now=0.0)
        values, latency = node.multi_get("ns", [("a",), ("b",), ("t",), ("missing",)], now=1.0)
        assert values[("a",)].value == 1
        assert values[("b",)].value == 2
        assert values[("t",)] is None  # tombstones read as absent, like get()
        assert values[("missing",)] is None
        assert latency > 0.0

    def test_batch_is_one_arrival_not_one_per_key(self):
        batched = make_node(capacity=100.0, seed=3)
        single = make_node(capacity=100.0, seed=3)
        for n in (batched, single):
            for k in range(10):
                n.put("ns", ("k", k), vv(k), now=0.0)
        keys = [("k", k) for k in range(10)]
        for step in range(50):
            now = 1.0 + step * 0.1  # 10 batches/sec of 10 keys
            batched.multi_get("ns", keys, now=now)
            for j, key in enumerate(keys):
                single.get("ns", key, now=now + j * 1e-4)  # 100 requests/sec
        assert batched.stats.reads == single.stats.reads  # key touches identical
        assert batched.utilisation() < 0.5 < single.utilisation()

    def test_per_key_marginal_cost(self):
        wide = make_node(seed=5)
        narrow = make_node(seed=5)
        keys = [("k", k) for k in range(100)]
        for n in (wide, narrow):
            for key in keys:
                n.put("ns", key, vv(0), now=0.0)
        _, wide_latency = wide.multi_get("ns", keys, now=1.0)
        _, narrow_latency = narrow.multi_get("ns", keys[:1], now=1.0)
        assert wide_latency > narrow_latency


class TestRouterReadMany:
    def _engine(self, groups=3):
        from repro import Scads
        from repro.core.schema import EntitySchema, Field, FieldType
        engine = Scads(seed=7, autoscale=False, initial_groups=groups)
        engine.register_entity(EntitySchema(
            name="items", key_fields=[Field("key")],
            value_fields=[Field("v", FieldType.INT)],
        ))
        engine.start()
        return engine

    def test_matches_single_key_reads(self):
        engine = self._engine()
        keys = []
        for i in range(20):
            engine.put("items", {"key": f"k{i:02d}", "v": i})
            keys.append((f"k{i:02d}",))
        engine.settle()
        router = engine.router
        batched = router.read_many("entity:items", keys)
        for key in keys:
            assert batched[key].success
            assert batched[key].value.value == router.read("entity:items", key).value.value

    def test_one_request_per_group(self):
        engine = self._engine()
        keys = []
        for i in range(20):
            engine.put("items", {"key": f"k{i:02d}", "v": i})
            keys.append((f"k{i:02d}",))
        engine.settle()
        router = engine.router
        groups_touched = {
            engine.cluster.partitioner.group_for_token(k[0]) for k in keys
        }
        before = dict(router._ops)  # noqa: SLF001 - asserting load accounting
        results = router.read_many("entity:items", keys)
        after = dict(router._ops)  # noqa: SLF001
        assert len(results) == len(keys)
        assert after["read"] - before["read"] == len(groups_touched)
        assert after["read"] - before["read"] < len(keys)

    def test_duplicate_keys_fetched_once(self):
        engine = self._engine(groups=1)
        engine.put("items", {"key": "dup", "v": 1})
        engine.settle()
        router = engine.router
        results = router.read_many("entity:items", [("dup",)] * 5 + [("dup",)])
        assert results[("dup",)].success
        assert len(results) == 1


class TestExecutorBatchedDereference:
    def _plan_and_data(self):
        from repro.core.query.plans import PrefixComponent, QueryPlan

        plan = QueryPlan(
            query_name="q", index_name="by_tag",
            prefix=[PrefixComponent(kind="parameter", value="tag")],
            range_bound=None, limit=5, descending=False,
            dereference=True, final_entity="items", final_key_length=1,
        )
        index_rows = [(("t", f"k{i}"), {}) for i in range(5)]
        entities = {(f"k{i}",): {"key": f"k{i}", "v": i} for i in range(5)}
        return plan, index_rows, entities

    def test_batched_rows_equal_single_rows(self):
        plan, index_rows, entities = self._plan_and_data()

        def range_read(namespace, start, end, limit, reverse):
            return list(index_rows), 0.001

        def entity_get(name, key):
            return dict(entities[key]), 0.002

        calls = {"many": 0}

        def entity_get_many(name, keys):
            calls["many"] += 1
            return {key: (dict(entities[key]), 0.002) for key in keys}

        single = QueryExecutor(range_read, entity_get).execute(plan, {"tag": "t"})
        batched = QueryExecutor(range_read, entity_get, entity_get_many).execute(
            plan, {"tag": "t"})
        assert calls["many"] == 1
        assert batched.rows == single.rows
        assert batched.dereferences == single.dereferences
        assert batched.latency == pytest.approx(single.latency)

    def test_engine_query_reads_own_writes_through_batch(self):
        """End-to-end: the batched dereference path preserves session
        read-your-writes (per-key verification still runs)."""
        from repro import Scads
        from repro.apps.social_network import SocialNetworkApp
        from repro.workloads.social_graph import SocialGraph

        engine = Scads(seed=11, autoscale=False, initial_groups=2)
        app = SocialNetworkApp(engine)
        graph = SocialGraph(10, np.random.default_rng(11))
        app.load_graph(graph)
        engine.start()
        app.post_status("u0", 10_000, "hello-batched-world")
        engine.settle()  # let the async index maintenance apply
        result = app.statuses_page("u0")
        assert any(r.get("text") == "hello-batched-world" for r in result.rows)
