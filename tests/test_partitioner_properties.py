"""Property-based invariants for both partitioners under topology churn.

The paper's bounded-lookup guarantee ("at most one read from a small constant
number of computers") rests on two routing invariants that must survive any
sequence of topology changes — add/remove group, split/merge/reassign (range)
and weight shifts (hash):

1. every key routes to exactly one currently-registered replica group, and
2. every single-partition prefix range lands on exactly the group that owns
   its keys, so a range read never fans out.

These suites drive arbitrary operation sequences (invalid operations are
expected to raise ``PartitionerError`` and change nothing) and then check the
invariants over a fixed token population.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.storage.partitioner import (
    ConsistentHashPartitioner,
    PartitionerError,
    RangePartitioner,
)
from repro.storage.records import KeyRange, prefix_range

pytestmark = [pytest.mark.tier1, pytest.mark.property]

TOKENS = [f"u{i:03d}" for i in range(60)]
GROUPS = [f"g{i}" for i in range(6)]

range_op = st.one_of(
    st.tuples(st.just("add"), st.sampled_from(GROUPS)),
    st.tuples(st.just("remove"), st.sampled_from(GROUPS)),
    st.tuples(st.just("split"), st.sampled_from(TOKENS)),
    st.tuples(st.just("merge"), st.sampled_from(TOKENS)),
    st.tuples(st.just("reassign"), st.sampled_from(TOKENS), st.sampled_from(GROUPS)),
)

hash_op = st.one_of(
    st.tuples(st.just("add"), st.sampled_from(GROUPS)),
    st.tuples(st.just("remove"), st.sampled_from(GROUPS)),
    st.tuples(st.just("weight"), st.sampled_from(GROUPS),
              st.floats(min_value=0.25, max_value=3.0)),
)


def apply_range_op(partitioner: RangePartitioner, operation) -> None:
    kind = operation[0]
    try:
        if kind == "add":
            partitioner.add_group(operation[1])
        elif kind == "remove":
            partitioner.remove_group(operation[1])
        elif kind == "split":
            partitioner.split_at(operation[1])
        elif kind == "merge":
            info = partitioner.partition_for_token(operation[1])
            if info.upper is not None:
                partitioner.merge_at(info.index)
        else:
            info = partitioner.partition_for_token(operation[1])
            partitioner.reassign(info.index, operation[2])
    except PartitionerError:
        pass  # invalid transitions must raise, not corrupt state


def check_routing_invariants(partitioner) -> None:
    groups = set(partitioner.groups())
    assert groups, "a partitioner must always have at least one group"
    for token in TOKENS:
        owner = partitioner.group_for_token(token)
        assert owner in groups
        key_range = prefix_range("ns", (token,))
        range_owners = partitioner.groups_for_range(key_range)
        assert range_owners == [owner], (
            f"prefix range for {token!r} must land on exactly its owner"
        )


class TestRangePartitionerProperties:
    @given(operations=st.lists(range_op, min_size=0, max_size=40))
    def test_every_key_routes_to_exactly_one_registered_group(self, operations):
        partitioner = RangePartitioner(["g0"])
        for operation in operations:
            apply_range_op(partitioner, operation)
        check_routing_invariants(partitioner)

    @given(operations=st.lists(range_op, min_size=0, max_size=40))
    def test_partition_table_stays_well_formed(self, operations):
        partitioner = RangePartitioner(["g0"])
        for operation in operations:
            apply_range_op(partitioner, operation)
        partitions = partitioner.partitions()
        lowers = [p.lower for p in partitions]
        assert lowers[0] == ""
        assert lowers == sorted(lowers)
        assert len(set(lowers)) == len(lowers), "split points must be unique"
        groups = set(partitioner.groups())
        for left, right in zip(partitions, partitions[1:]):
            assert left.upper == right.lower, "partitions must tile the space"
        assert partitions[-1].upper is None
        for partition in partitions:
            assert partition.owner in groups
            # partition_for_token agrees with the table
            assert partitioner.partition_for_token(partition.lower) == partition

    @given(operations=st.lists(range_op, min_size=0, max_size=40),
           start=st.sampled_from(TOKENS), end=st.sampled_from(TOKENS))
    def test_multi_partition_range_covers_every_contained_key(
            self, operations, start, end):
        if start > end:
            start, end = end, start
        partitioner = RangePartitioner(["g0"])
        for operation in operations:
            apply_range_op(partitioner, operation)
        key_range = KeyRange(namespace="ns", start=(start,), end=(end, "\x00"))
        owners = set(partitioner.groups_for_range(key_range))
        for token in TOKENS:
            if start <= token <= end:
                assert partitioner.group_for_token(token) in owners


class TestConsistentHashPartitionerProperties:
    @given(operations=st.lists(hash_op, min_size=0, max_size=30))
    def test_every_key_routes_to_exactly_one_registered_group(self, operations):
        partitioner = ConsistentHashPartitioner(["g0"], virtual_nodes=16)
        for operation in operations:
            kind = operation[0]
            try:
                if kind == "add":
                    partitioner.add_group(operation[1])
                elif kind == "remove":
                    partitioner.remove_group(operation[1])
                else:
                    partitioner.set_weight(operation[1], operation[2])
            except PartitionerError:
                pass
        check_routing_invariants(partitioner)

    @given(operations=st.lists(hash_op, min_size=0, max_size=30))
    def test_routing_is_a_pure_function_of_the_operation_history(self, operations):
        def build():
            partitioner = ConsistentHashPartitioner(["g0"], virtual_nodes=16)
            for operation in operations:
                kind = operation[0]
                try:
                    if kind == "add":
                        partitioner.add_group(operation[1])
                    elif kind == "remove":
                        partitioner.remove_group(operation[1])
                    else:
                        partitioner.set_weight(operation[1], operation[2])
                except PartitionerError:
                    pass
            return partitioner

        first, second = build(), build()
        for token in TOKENS:
            assert first.group_for_token(token) == second.group_for_token(token)

    @given(weight=st.floats(min_value=0.25, max_value=4.0))
    def test_weight_shift_is_reversible_and_incremental(self, weight):
        partitioner = ConsistentHashPartitioner(["g0", "g1", "g2"], virtual_nodes=32)
        before = {token: partitioner.group_for_token(token) for token in TOKENS}
        partitioner.set_weight("g1", weight)
        moved = [token for token in TOKENS
                 if partitioner.group_for_token(token) != before[token]]
        if weight < 1.0:
            # Shrinking g1 only moves keys off g1.
            assert all(before[token] == "g1" for token in moved)
        elif weight > 1.0:
            # Growing g1 only moves keys onto g1.
            assert all(partitioner.group_for_token(token) == "g1" for token in moved)
        partitioner.set_weight("g1", 1.0)
        after = {token: partitioner.group_for_token(token) for token in TOKENS}
        assert after == before
