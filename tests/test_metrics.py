"""Unit tests for the measurement substrate (repro.metrics)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.cost import CostReport
from repro.metrics.percentiles import LatencyRecorder, PercentileEstimator
from repro.metrics.sla import SLATracker, WindowedComplianceTracker
from repro.metrics.timeseries import TimeSeries, TimeSeriesRecorder

pytestmark = pytest.mark.tier1


class TestPercentileEstimator:
    def test_percentile_of_known_values(self):
        estimator = PercentileEstimator()
        estimator.extend(range(1, 101))
        assert estimator.percentile(50) == pytest.approx(50.5)
        assert estimator.percentile(100) == 100

    def test_mean_and_max(self):
        estimator = PercentileEstimator()
        estimator.extend([1.0, 2.0, 3.0])
        assert estimator.mean() == pytest.approx(2.0)
        assert estimator.max() == 3.0

    def test_fraction_below(self):
        estimator = PercentileEstimator()
        estimator.extend([0.05, 0.15, 0.25, 0.35])
        assert estimator.fraction_below(0.2) == pytest.approx(0.5)

    def test_rejects_negative_samples(self):
        with pytest.raises(ValueError):
            PercentileEstimator().add(-1.0)

    def test_empty_estimator_raises(self):
        with pytest.raises(ValueError):
            PercentileEstimator().percentile(50)

    def test_invalid_percentile_rejected(self):
        estimator = PercentileEstimator()
        estimator.add(1.0)
        with pytest.raises(ValueError):
            estimator.percentile(0)
        with pytest.raises(ValueError):
            estimator.percentile(101)

    def test_reset_clears_samples(self):
        estimator = PercentileEstimator()
        estimator.add(1.0)
        estimator.reset()
        assert len(estimator) == 0

    def test_snapshot_contains_standard_keys(self):
        estimator = PercentileEstimator()
        estimator.extend([0.01] * 10)
        snapshot = estimator.snapshot()
        for key in ("count", "mean", "p50", "p95", "p99", "p999", "max"):
            assert key in snapshot

    def test_snapshot_empty(self):
        assert PercentileEstimator().snapshot() == {"count": 0}

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_percentiles_are_monotone_in_p(self, samples):
        estimator = PercentileEstimator()
        estimator.extend(samples)
        p50 = estimator.percentile(50)
        p90 = estimator.percentile(90)
        p99 = estimator.percentile(99)
        assert p50 <= p90 <= p99

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_percentile_bounded_by_min_and_max(self, samples):
        estimator = PercentileEstimator()
        estimator.extend(samples)
        assert min(samples) <= estimator.percentile(50) <= max(samples)


class TestLatencyRecorder:
    def test_records_per_op_type(self):
        recorder = LatencyRecorder()
        recorder.record("read", 0.01)
        recorder.record("write", 0.02)
        assert recorder.op_types() == ["read", "write"]
        assert recorder.all_time("read").mean() == pytest.approx(0.01)

    def test_roll_window_resets_window_but_not_all_time(self):
        recorder = LatencyRecorder()
        recorder.record("read", 0.01)
        summary = recorder.roll_window()
        assert summary["read"]["count"] == 1
        recorder.record("read", 0.03)
        assert recorder.window_count("read") == 1
        assert len(recorder.all_time("read")) == 2

    def test_unknown_op_type_raises(self):
        with pytest.raises(KeyError):
            LatencyRecorder().all_time("nope")

    def test_window_count_zero_for_unknown(self):
        assert LatencyRecorder().window_count("read") == 0


class TestSLATracker:
    def _tracker(self):
        return SLATracker("read", target_percentile=99.0, target_latency=0.1)

    def test_satisfied_when_all_requests_fast(self):
        tracker = self._tracker()
        for _ in range(100):
            tracker.observe(0.01)
        report = tracker.overall_report()
        assert report.satisfied
        assert report.observed_fraction_within == pytest.approx(1.0)

    def test_violated_when_tail_is_slow(self):
        tracker = self._tracker()
        for _ in range(90):
            tracker.observe(0.01)
        for _ in range(10):
            tracker.observe(0.5)
        report = tracker.overall_report()
        assert not report.satisfied
        assert report.violation_margin() > 0

    def test_failures_count_against_attainment(self):
        tracker = self._tracker()
        for _ in range(50):
            tracker.observe(0.01)
        for _ in range(50):
            tracker.observe(None, success=False)
        report = tracker.overall_report()
        assert report.observed_fraction_within == pytest.approx(0.5)
        assert tracker.availability() == pytest.approx(0.5)

    def test_window_history_and_violation_rate(self):
        tracker = self._tracker()
        tracker.observe(0.01)
        tracker.close_window()
        tracker.observe(0.5)
        tracker.close_window()
        assert len(tracker.window_history()) == 2
        assert tracker.violation_rate() == pytest.approx(0.5)

    def test_empty_window_is_trivially_satisfied(self):
        tracker = self._tracker()
        report = tracker.close_window()
        assert report.satisfied
        assert report.request_count == 0

    def test_successful_observation_requires_latency(self):
        with pytest.raises(ValueError):
            self._tracker().observe(None, success=True)

    def test_invalid_targets_rejected(self):
        with pytest.raises(ValueError):
            SLATracker("read", 0.0, 0.1)
        with pytest.raises(ValueError):
            SLATracker("read", 99.0, -0.1)
        with pytest.raises(ValueError):
            SLATracker("read", 99.0, 0.1, availability_target=0.0)


class TestTimeSeries:
    def test_append_and_last(self):
        series = TimeSeries(name="x")
        series.append(0.0, 1.0)
        series.append(1.0, 2.0)
        assert series.last() == (1.0, 2.0)
        assert len(series) == 2

    def test_rejects_decreasing_timestamps(self):
        series = TimeSeries(name="x")
        series.append(1.0, 1.0)
        with pytest.raises(ValueError):
            series.append(0.5, 2.0)

    def test_value_at_is_step_function(self):
        series = TimeSeries(name="x")
        series.append(0.0, 1.0)
        series.append(10.0, 5.0)
        assert series.value_at(5.0) == 1.0
        assert series.value_at(10.0) == 5.0
        assert series.value_at(20.0) == 5.0

    def test_value_before_first_observation_raises(self):
        series = TimeSeries(name="x")
        series.append(5.0, 1.0)
        with pytest.raises(ValueError):
            series.value_at(1.0)

    def test_integrate_step_function(self):
        series = TimeSeries(name="servers")
        series.append(0.0, 2.0)
        series.append(10.0, 4.0)
        series.append(20.0, 0.0)
        # 2 servers for 10 s + 4 servers for 10 s = 60 server-seconds.
        assert series.integrate() == pytest.approx(60.0)

    def test_min_max_mean(self):
        series = TimeSeries(name="x")
        for t, v in [(0, 1), (1, 3), (2, 2)]:
            series.append(float(t), float(v))
        assert series.min() == 1
        assert series.max() == 3
        assert series.mean() == pytest.approx(2.0)

    def test_resample_onto_grid(self):
        series = TimeSeries(name="x")
        series.append(0.0, 1.0)
        series.append(3.0, 5.0)
        resampled = series.resample(1.0)
        assert resampled.values == [1.0, 1.0, 1.0, 5.0]

    def test_empty_series_raises(self):
        with pytest.raises(ValueError):
            TimeSeries(name="x").last()


class TestTimeSeriesRecorder:
    def test_record_and_get(self):
        recorder = TimeSeriesRecorder()
        recorder.record("nodes", 0.0, 5.0)
        recorder.record("nodes", 1.0, 6.0)
        assert recorder.get("nodes").last() == (1.0, 6.0)
        assert "nodes" in recorder
        assert recorder.names() == ["nodes"]

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            TimeSeriesRecorder().get("missing")


class TestCostReport:
    def _report(self, dollars=10.0, requests=1_000_000):
        return CostReport(
            machine_hours=100.0,
            dollars=dollars,
            requests_served=requests,
            peak_instances=10,
            mean_instances=5.0,
        )

    def test_cost_per_million_requests(self):
        report = self._report()
        assert report.cost_per_million_requests() == pytest.approx(10.0)

    def test_zero_requests(self):
        report = self._report(requests=0)
        assert report.cost_per_request() == 0.0

    def test_savings_vs(self):
        cheap = self._report(dollars=5.0)
        expensive = self._report(dollars=10.0)
        assert cheap.savings_vs(expensive) == pytest.approx(0.5)
        assert expensive.savings_vs(cheap) == pytest.approx(-1.0)

    def test_as_dict_round_trips_key_fields(self):
        data = self._report().as_dict()
        assert data["dollars"] == 10.0
        assert data["peak_instances"] == 10


class TestMergeableMetrics:
    """The sweep fabric's aggregation contract: merging estimators and report
    summaries must match computing over the concatenated raw samples."""

    @given(
        left=st.lists(st.floats(min_value=0.0, max_value=10.0,
                                allow_nan=False), max_size=40),
        right=st.lists(st.floats(min_value=0.0, max_value=10.0,
                                 allow_nan=False), max_size=40),
    )
    def test_merge_matches_concatenated_samples(self, left, right):
        a = PercentileEstimator()
        a.extend(left)
        b = PercentileEstimator()
        b.extend(right)
        merged = a.merge(b)
        reference = PercentileEstimator()
        reference.extend(left + right)
        assert len(merged) == len(reference)
        if len(reference):
            assert merged.snapshot() == pytest.approx(reference.snapshot())
            assert merged.fraction_below(5.0) == reference.fraction_below(5.0)

    def test_merge_returns_self_and_leaves_other_usable(self):
        a = PercentileEstimator()
        a.extend([1.0, 3.0])
        b = PercentileEstimator()
        b.extend([2.0, 4.0])
        assert a.merge(b) is a
        assert a.percentile(100) == 4.0
        assert b.percentile(100) == 4.0  # other unchanged
        assert a.mean() == pytest.approx(2.5)
        assert a.max() == 4.0

    def test_merged_classmethod_unions_many(self):
        parts = []
        for chunk in ([1.0], [2.0, 5.0], [], [0.5]):
            est = PercentileEstimator()
            est.extend(chunk)
            parts.append(est)
        union = PercentileEstimator.merged(parts)
        assert len(union) == 4
        assert union.max() == 5.0

    def test_merge_with_pending_unsorted_appends_on_both_sides(self):
        a = PercentileEstimator()
        b = PercentileEstimator()
        for value in (5.0, 1.0, 3.0):
            a.add(value)
        a.percentile(50)  # flush a's sorted cache
        a.add(0.5)        # ...then leave a pending sample
        for value in (4.0, 2.0):
            b.add(value)
        a.merge(b)
        assert a.percentile(50) == pytest.approx(2.5)
        assert len(a) == 6

    def test_fraction_at_or_below_is_inclusive(self):
        est = PercentileEstimator()
        est.extend([0.1, 0.2, 0.3])
        assert est.fraction_below(0.2) == pytest.approx(1 / 3)
        assert est.fraction_at_or_below(0.2) == pytest.approx(2 / 3)

    def test_sla_report_merge_weights_fractions_by_count(self):
        from repro.metrics.sla import SLAReport

        good = SLAReport("read", 99.0, 0.1, observed_fraction_within=1.0,
                         observed_percentile_latency=0.05, request_count=300,
                         satisfied=True)
        bad = SLAReport("read", 99.0, 0.1, observed_fraction_within=0.9,
                        observed_percentile_latency=0.4, request_count=100,
                        satisfied=False)
        merged = good.merge(bad)
        assert merged.request_count == 400
        assert merged.observed_fraction_within == pytest.approx(0.975)
        assert not merged.satisfied  # 97.5% < the 99% target
        # Without estimators the percentile is the pessimistic max...
        assert merged.observed_percentile_latency == 0.4
        # ...and an exact merged percentile can be injected.
        exact = good.merge(bad, merged_percentile_latency=0.2)
        assert exact.observed_percentile_latency == 0.2

    def test_sla_report_merge_rejects_mismatched_targets(self):
        from repro.metrics.sla import SLAReport

        read = SLAReport("read", 99.0, 0.1, 1.0, 0.05, 10, True)
        write = SLAReport("write", 99.0, 0.1, 1.0, 0.05, 10, True)
        with pytest.raises(ValueError):
            read.merge(write)

    def test_cost_report_merge_sums_bills_and_weights_means(self):
        a = CostReport(machine_hours=10.0, dollars=1.0, requests_served=100,
                       peak_instances=4, mean_instances=2.0)
        b = CostReport(machine_hours=30.0, dollars=3.0, requests_served=300,
                       peak_instances=3, mean_instances=6.0)
        merged = a.merge(b)
        assert merged.machine_hours == pytest.approx(40.0)
        assert merged.dollars == pytest.approx(4.0)
        assert merged.requests_served == 400
        assert merged.peak_instances == 4
        # (2*10 + 6*30) / 40 = 5.0 — machine-hour-weighted.
        assert merged.mean_instances == pytest.approx(5.0)
        assert merged.cost_per_request() == pytest.approx(0.01)


class TestWindowedComplianceTracker:
    """The always-on per-window counters the grid's SLA policy gates on."""

    def test_buckets_by_fixed_clock_windows(self):
        tracker = WindowedComplianceTracker(60.0, target_latency=0.1)
        tracker.observe(10.0, 0.05)
        tracker.observe(59.9, 0.05)
        tracker.observe(70.0, 0.05)
        windows = tracker.windows()
        assert [w.start for w in windows] == [0.0, 60.0]
        assert [w.total for w in windows] == [2, 1]

    def test_empty_windows_are_absent(self):
        tracker = WindowedComplianceTracker(60.0, target_latency=0.1)
        tracker.observe(5.0, 0.05)
        tracker.observe(605.0, 0.05)
        assert [w.start for w in tracker.windows()] == [0.0, 600.0]

    def test_failed_request_counts_total_but_not_within(self):
        tracker = WindowedComplianceTracker(60.0, target_latency=0.1)
        tracker.observe(1.0, 0.05)
        tracker.observe(2.0, None)
        tracker.observe(3.0, 0.5)
        (window,) = tracker.windows()
        assert window.total == 3
        assert window.within == 1
        assert window.fraction_within == pytest.approx(1 / 3)

    def test_compliant_matches_declared_percentile(self):
        tracker = WindowedComplianceTracker(60.0, target_latency=0.1)
        for i in range(100):
            tracker.observe(1.0, 0.05 if i < 99 else 0.5)
        (window,) = tracker.windows()
        assert window.compliant(99.0)
        assert not window.compliant(99.5)

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            WindowedComplianceTracker(0.0, target_latency=0.1)
