"""The default-on validation grid: expansion, verdicts, and the flipped defaults.

Three things are under test here.  First, the grid machinery itself: paired
seeding across configuration cells, smoke-recipe coverage of the corpus, and
the verdict being a pure function of the sweep result (identical at any
worker count).  Second, the engine's flipped defaults: ``Scads()`` with no
arguments now constructs with repartitioning and the cache tier on, and the
explicit opt-outs round-trip.  Third, the regression the flip must not
introduce: session guarantees (read-your-writes, monotonic reads) must hold
on a default-constructed engine even while the rebalancer's live migration
is moving the session's keys.
"""

from __future__ import annotations

import pytest

from repro.cache.tier import CacheConfig, CacheTier
from repro.core.consistency import ConsistencySpec, SessionGuarantee
from repro.core.engine import Scads
from repro.core.schema import EntitySchema, Field
from repro.parallel.executor import run_sweep
from repro.parallel.grid import (
    CONFIG_CELLS,
    build_grid_runs,
    evaluate_grid,
    grid_scenarios,
    render_verdict_table,
)
from repro.parallel.scenarios import STANDARD_SUITE, smoke_variant

pytestmark = pytest.mark.tier1


# ------------------------------------------------------------- grid expansion


class TestGridExpansion:
    def test_every_replicate_seed_is_shared_across_the_four_configs(self):
        runs = build_grid_runs(replicates=2)
        seeds = {}
        for run in runs:
            key = (run.params["scenario"], run.replicate)
            seeds.setdefault(key, set()).add(run.seed)
        # Paired experiment: one seed per (scenario, replicate), shared by
        # baseline/repartition/cache/both.
        assert all(len(cell_seeds) == 1 for cell_seeds in seeds.values())
        # ...but scenarios (and replicates) draw distinct seeds.
        distinct = {next(iter(s)) for s in seeds.values()}
        assert len(distinct) == len(seeds)

    def test_filtering_the_corpus_preserves_per_scenario_seeds(self):
        full = build_grid_runs(replicates=2)
        only = build_grid_runs(
            scenarios=grid_scenarios(names=["regional-failover"]), replicates=2)
        wanted = [r for r in full if r.params["scenario"] == "regional-failover"]
        assert [(r.run_id, r.seed) for r in only] == \
            [(r.run_id, r.seed) for r in wanted]

    def test_config_cells_pin_both_knobs_explicitly(self):
        runs = build_grid_runs(scenarios=grid_scenarios(names=["cache-tier"]))
        knobs = {run.params["config"]: run.scenario.engine_knobs for run in runs}
        assert knobs["baseline"]["cache"] is False
        assert knobs["baseline"]["repartition"] is False
        assert knobs["both"]["cache"] is True
        assert knobs["both"]["repartition"] is True
        # The scenario's own knobs survive the override merge.
        assert all(set(k) >= {"cache", "repartition"} for k in knobs.values())

    def test_every_corpus_scenario_has_a_smoke_recipe(self):
        for spec in STANDARD_SUITE:
            smoke = smoke_variant(spec)
            assert smoke.duration <= 60.0, spec.name
            assert smoke.n_users == 40
            # A fault scenario's smoke variant must still inject its fault
            # inside the shortened window.
            for fault in smoke.faults:
                assert fault.at < smoke.duration, spec.name

    def test_unknown_scenario_name_is_rejected(self):
        with pytest.raises(ValueError, match="unknown scenarios"):
            grid_scenarios(names=["no-such-scenario"])


# ------------------------------------- verdict identity across worker counts


def _tiny_corpus():
    """Two smoke scenarios shrunk further: one plain, one fault-injected."""
    plain = smoke_variant(STANDARD_SUITE[0]).with_overrides(
        duration=10.0, **{"trace.rate": 20.0})
    failover = next(smoke_variant(s) for s in STANDARD_SUITE
                    if s.name == "regional-failover")
    failover = failover.with_overrides(duration=16.0, **{"trace.rate": 15.0})
    return [plain, failover]


class TestVerdictIdentityAcrossWorkers:
    def test_verdict_identical_at_one_and_four_workers(self):
        corpus = _tiny_corpus()
        runs = build_grid_runs(scenarios=corpus, base_seed=3)
        serial = run_sweep(list(runs), workers=1)
        pooled = run_sweep(list(runs), workers=4)
        verdict_serial = evaluate_grid(serial, corpus, smoke=True)
        verdict_pooled = evaluate_grid(pooled, corpus, smoke=True)
        assert render_verdict_table(verdict_serial) == \
            render_verdict_table(verdict_pooled)
        for a, b in zip(verdict_serial.cells, verdict_pooled.cells):
            assert [(c.name, c.passed, c.detail) for c in a.checks] == \
                [(c.name, c.passed, c.detail) for c in b.checks]
            assert (a.stale_reads, a.max_replication_lag) == \
                (b.stale_reads, b.max_replication_lag)

    def test_verdict_covers_every_expected_cell(self):
        corpus = _tiny_corpus()
        runs = build_grid_runs(scenarios=corpus, base_seed=3)
        verdict = evaluate_grid(run_sweep(runs, workers=1), corpus,
                                smoke=True)
        cells = {cell.cell for cell in verdict.cells}
        assert cells == {f"{spec.name}/{config}"
                         for spec in corpus for config in CONFIG_CELLS}


# ------------------------------------------------- flipped engine defaults


class TestDefaultOnConstruction:
    def test_no_arg_construction_enables_repartition_and_cache(self):
        engine = Scads(seed=0, autoscale=False)
        assert engine.repartition is True
        assert engine.rebalancer is not None
        assert isinstance(engine.cache, CacheTier)

    def test_opt_outs_round_trip(self):
        no_cache = Scads(seed=0, autoscale=False, cache=False)
        assert no_cache.cache is None
        assert no_cache.rebalancer is not None  # the other default stays on
        no_repart = Scads(seed=0, autoscale=False, repartition=False)
        assert no_repart.rebalancer is None
        assert no_repart.cache is not None
        seed_shape = Scads(seed=0, autoscale=False, cache=False,
                           repartition=False)
        assert seed_shape.cache is None and seed_shape.rebalancer is None

    def test_explicit_cache_config_is_honoured(self):
        config = CacheConfig(capacity=7)
        engine = Scads(seed=0, autoscale=False, cache=config)
        assert engine.cache is not None
        assert engine.cache.config.capacity == 7


# ---------------------- session guarantees under the defaults, mid-migration


def _default_engine(spec: ConsistencySpec, seed: int) -> Scads:
    """A default-on engine (cache + repartition) with a migratable keyspace."""
    engine = Scads(seed=seed, consistency=spec, autoscale=False,
                   initial_groups=2, partitioner_kind="range")
    engine.register_entity(EntitySchema(
        "profiles", key_fields=[Field("user_id")], value_fields=[Field("bio")]))
    return engine


class TestSessionGuaranteesSurviveTheFlip:
    def test_read_your_writes_holds_while_the_written_key_migrates(self):
        spec = ConsistencySpec(session=SessionGuarantee(read_your_writes=True))
        engine = _default_engine(spec, seed=31)
        engine.open_session("alice")
        engine.put("profiles", {"user_id": "alice", "bio": "v1"},
                   session_id="alice")
        # Live-migrate the partition holding the fresh write to the other
        # group before replication has settled anywhere.
        home = engine.cluster.partitioner.group_for_key("profiles", ("alice",))
        target = [gid for gid in engine.cluster.groups if gid != home]
        engine.cluster.split_partition("alice")
        engine.cluster.migrate_partition("alice", target[0])
        for _ in range(10):
            outcome = engine.get("profiles", ("alice",), session_id="alice")
            assert outcome.success and outcome.row is not None
            assert outcome.row["bio"] == "v1"

    def test_monotonic_reads_never_regress_during_migration(self):
        spec = ConsistencySpec(session=SessionGuarantee(monotonic_reads=True))
        engine = _default_engine(spec, seed=32)
        engine.open_session("bob")
        versions = []
        for i in range(4):
            engine.put("profiles", {"user_id": "bob", "bio": f"v{i}"})
            engine.settle(2.0)
            if i == 1:
                home = engine.cluster.partitioner.group_for_key(
                    "profiles", ("bob",))
                target = [gid for gid in engine.cluster.groups
                          if gid != home]
                engine.cluster.split_partition("bob")
                engine.cluster.migrate_partition("bob", target[0])
            outcome = engine.get("profiles", ("bob",), session_id="bob")
            if outcome.success and outcome.row is not None:
                versions.append(int(outcome.row["bio"][1:]))
        assert versions == sorted(versions), "monotonic reads regressed"
        assert versions, "no successful session reads"


# ----------------------------------------- the windowed SLA policy gate


def _record(windows):
    """A RunSuccess stand-in: the policy check only reads summary windows."""
    from types import SimpleNamespace

    return SimpleNamespace(summary=SimpleNamespace(
        read_windows=list(windows), write_windows=[]))


def _report(satisfied=True, observed=0.050):
    from types import SimpleNamespace

    read = SimpleNamespace(target_percentile=99.0, target_latency=0.150,
                           satisfied=satisfied,
                           observed_percentile_latency=observed)
    return SimpleNamespace(read_report=read, write_report=read)


def _window(start, total=100, within=100):
    from repro.metrics.sla import ComplianceWindow

    return ComplianceWindow(start=start, total=total, within=within)


class TestPolicySlaCheck:
    """Unit tests of the per-cell windowed policy evaluation."""

    def _spec(self, **overrides):
        return STANDARD_SUITE[0].with_overrides(**overrides)

    def _check(self, spec, windows_per_run, report=None):
        from repro.parallel.grid import _policy_sla_check

        successes = [_record(w) for w in windows_per_run]
        return _policy_sla_check(spec, successes, report or _report(), "read")

    def test_violations_within_budget_pass(self):
        spec = self._spec(sla_violation_budget=0.30, sla_reattain_windows=2)
        windows = [_window(0.0), _window(60.0, within=50),  # violated
                   _window(120.0), _window(180.0)]
        passed, detail, compliance = self._check(spec, [windows])
        assert passed
        assert compliance == "1/4w"

    def test_budget_bust_fails(self):
        spec = self._spec(sla_violation_budget=0.10, sla_reattain_windows=1)
        windows = [_window(0.0, within=50), _window(60.0, within=50),
                   _window(120.0), _window(180.0)]
        passed, detail, _ = self._check(spec, [windows])
        assert not passed
        assert "budget" in detail

    def test_terminal_violation_streak_fails_reattainment(self):
        spec = self._spec(sla_violation_budget=0.50, sla_reattain_windows=2)
        windows = [_window(0.0), _window(60.0),
                   _window(120.0, within=50),
                   _window(180.0, within=50)]  # 2 violated into the end
        passed, detail, compliance = self._check(spec, [windows])
        assert not passed
        assert "NOT re-attained" in detail
        assert compliance.endswith("!")

    def test_single_final_violated_window_is_budget_not_reattainment(self):
        # A run cut off mid-disturbance (one violated window at the end,
        # streak shorter than sla_reattain_windows) charges the budget.
        spec = self._spec(sla_violation_budget=0.50, sla_reattain_windows=2)
        windows = [_window(0.0), _window(60.0), _window(120.0),
                   _window(180.0, within=50)]
        passed, detail, compliance = self._check(spec, [windows])
        assert passed
        assert "re-attained" in detail and "NOT" not in detail
        assert compliance == "1/4w"

    def test_low_traffic_windows_are_skipped(self):
        spec = self._spec(sla_violation_budget=0.0, sla_min_window_ops=20)
        # The violated window carries 5 requests: drain-tail noise, skipped.
        windows = [_window(0.0), _window(60.0, total=5, within=0),
                   _window(120.0)]
        passed, _, compliance = self._check(spec, [windows])
        assert passed
        assert compliance == "0/2w"

    def test_worst_replicate_gates_the_cell(self):
        spec = self._spec(sla_violation_budget=0.30, sla_reattain_windows=1)
        clean = [_window(0.0), _window(60.0), _window(120.0)]
        # One bad replicate busts its own budget even though the pooled
        # violation count (2/6) would squeak under it.
        dirty = [_window(0.0, within=50), _window(60.0, within=50),
                 _window(120.0)]
        passed, _, _ = self._check(spec, [clean, dirty])
        assert not passed

    def test_short_run_falls_back_to_whole_run_report(self):
        spec = self._spec()
        passed, detail, compliance = self._check(
            spec, [[_window(0.0)]], report=_report(satisfied=True))
        assert passed and compliance == "yes"
        assert "whole-run" in detail
        passed, _, compliance = self._check(
            spec, [[_window(0.0)]], report=_report(satisfied=False))
        assert not passed and compliance == "NO"

    def test_write_budget_override_applies_to_writes_only(self):
        from repro.parallel.grid import _policy_sla_check
        from types import SimpleNamespace

        spec = self._spec(sla_violation_budget=0.10,
                          sla_write_violation_budget=0.50,
                          sla_reattain_windows=1)
        windows = [_window(0.0, within=50), _window(60.0),
                   _window(120.0), _window(180.0)]  # 25% violated
        record = SimpleNamespace(summary=SimpleNamespace(
            read_windows=list(windows), write_windows=list(windows)))
        read_passed, _, _ = _policy_sla_check(spec, [record], _report(), "read")
        write_passed, _, _ = _policy_sla_check(spec, [record], _report(), "write")
        assert not read_passed   # 25% > 10% read budget
        assert write_passed      # 25% <= 50% write budget
