"""Tests for the provisioning feedback loop: monitor, planner, controller."""

from __future__ import annotations

import pytest

from repro.core.consistency.spec import ConsistencySpec, PerformanceSLA
from repro.core.provisioning.planner import CapacityPlanner
from repro.ml.performance_model import LatencyPercentileModel, PropagationLagModel
from repro.workloads.traces import AnimotoViralTrace, ConstantTrace

pytestmark = pytest.mark.tier1


def make_planner(**kwargs):
    latency_model = LatencyPercentileModel(node_capacity_ops=1000.0)
    lag_model = PropagationLagModel()
    defaults = dict(node_capacity_ops=1000.0, min_nodes=2, max_nodes=500)
    defaults.update(kwargs)
    return CapacityPlanner(latency_model, lag_model, **defaults)


SLAS = {"read": PerformanceSLA(percentile=99.0, latency=0.1)}
SPEC = ConsistencySpec()


class TestCapacityPlanner:
    def test_target_grows_with_forecast_rate(self):
        planner = make_planner()
        small = planner.plan(1_000.0, 0.1, SLAS, SPEC)
        large = planner.plan(20_000.0, 0.1, SLAS, SPEC)
        assert large.target_nodes > small.target_nodes

    def test_minimum_nodes_respected_at_zero_load(self):
        planner = make_planner(min_nodes=4)
        plan = planner.plan(0.0, 0.0, SLAS, SPEC)
        assert plan.target_nodes == 4

    def test_maximum_nodes_cap(self):
        planner = make_planner(max_nodes=10)
        plan = planner.plan(1_000_000.0, 0.1, SLAS, SPEC)
        assert plan.target_nodes == 10

    def test_utilisation_ceiling_provides_headroom(self):
        planner = make_planner(target_utilisation=0.5)
        plan = planner.plan(10_000.0, 0.1, SLAS, SPEC)
        # 10k ops at 1000 ops/node and 50% ceiling needs at least 20 nodes.
        assert plan.target_nodes >= 20

    def test_staleness_pressure_adds_capacity(self):
        planner = make_planner()
        calm = planner.plan(5_000.0, 0.3, SLAS, SPEC, pending_maintenance=0,
                            behind_schedule=False)
        pressured = planner.plan(5_000.0, 0.3, SLAS, SPEC, pending_maintenance=0,
                                 behind_schedule=True)
        assert pressured.target_nodes > calm.target_nodes
        assert pressured.staleness_pressure

    def test_stricter_sla_needs_no_fewer_nodes(self):
        planner = make_planner()
        loose = planner.plan(8_000.0, 0.1, {"read": PerformanceSLA(latency=0.5)}, SPEC)
        strict = planner.plan(8_000.0, 0.1, {"read": PerformanceSLA(latency=0.05)}, SPEC)
        assert strict.target_nodes >= loose.target_nodes

    def test_plan_describe_mentions_reason(self):
        plan = make_planner().plan(1_000.0, 0.1, SLAS, SPEC)
        assert "target=" in plan.describe()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            make_planner(target_utilisation=1.5)
        with pytest.raises(ValueError):
            make_planner(min_nodes=0)
        planner = make_planner()
        with pytest.raises(ValueError):
            planner.plan(-1.0, 0.1, SLAS, SPEC)


class TestClosedLoopAutoscaling:
    """Integration tests of the controller through the full engine.

    These run the same harness the benchmarks use, at a small scale (low
    per-node capacity, tens of ops/sec) so the whole class stays fast.
    """

    def _run(self, trace, duration, **kwargs):
        from repro.experiments.harness import run_closed_loop

        defaults = dict(seed=11, n_users=60, friend_cap=10, control_interval=30.0,
                        initial_groups=1)
        defaults.update(kwargs)
        return run_closed_loop(trace, duration, **defaults)

    def test_scale_up_under_growing_load(self):
        growing = AnimotoViralTrace(start_rate=20.0, peak_multiplier=8.0,
                                    ramp_start=60.0, ramp_duration=500.0)
        result = self._run(growing, duration=700.0)
        assert result.scale_ups >= 1
        assert result.peak_nodes > 3

    def test_scale_down_after_load_drops(self):
        from repro.workloads.traces import StepTrace

        trace = StepTrace([(0.0, 150.0), (400.0, 10.0)])
        result = self._run(trace, duration=1800.0,
                           control_interval=30.0)
        assert result.scale_downs >= 1
        assert result.final_nodes < result.peak_nodes

    def test_controller_records_time_series(self):
        result = self._run(ConstantTrace(30.0), duration=300.0)
        series = result.engine.controller.series()
        assert "observed_rate" in series
        assert "nodes" in series
        assert len(result.engine.controller.actions()) >= 5

    def test_billing_tracks_rented_instances(self):
        result = self._run(ConstantTrace(30.0), duration=300.0)
        engine = result.engine
        assert engine.cost_so_far() > 0.0
        assert engine.pool.active_count() == engine.cluster.node_count()


class TestScaleDownGuard:
    """Never shrink the fleet while the current window violates its SLA.

    A saturated window corrupts the service-time features the planner sizes
    from, so a low target during a violation is a model artifact — acting on
    it removes capacity exactly when it is most needed (seen live as a 4->3
    scale-down at the foot of a ramp the fleet was already missing).
    """

    def _controller(self, groups=4):
        from repro.core.engine import Scads

        return Scads(seed=3, autoscale=True, initial_groups=groups,
                     cache=False, repartition=False).controller

    @staticmethod
    def _plan(target_nodes):
        from types import SimpleNamespace

        return SimpleNamespace(target_nodes=target_nodes, forecast_rate=10.0,
                               reason="unit", repartition_candidate=False)

    @staticmethod
    def _observation(violated):
        from types import SimpleNamespace

        return SimpleNamespace(any_sla_violated=lambda: violated)

    def test_holds_and_resets_patience_while_violated(self):
        controller = self._controller(groups=4)
        controller._low_demand_windows = controller.scale_down_patience
        action = controller._act(self._plan(target_nodes=2),
                                 self._observation(violated=True))
        assert action.kind == "hold"
        assert controller._cluster.group_count() == 4
        # The violated window does not count toward scale-down patience.
        assert controller._low_demand_windows == 0

    def test_scales_down_once_compliant_again(self):
        controller = self._controller(groups=4)
        controller._low_demand_windows = controller.scale_down_patience - 1
        action = controller._act(self._plan(target_nodes=2),
                                 self._observation(violated=False))
        assert action.kind == "scale_down"
        assert controller._cluster.group_count() == 3
