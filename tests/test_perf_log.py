"""Schema checks for BENCH_PERF.json recordings (repro.experiments.perf_log).

The trajectory is append-only measurement history; a malformed recording must
fail in the run that produces it, not corrupt a later comparison.  The
committed file itself is validated here, so schema drift in either direction
(code or data) breaks tier-1.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.experiments.perf_log import (
    PerfLogSchemaError,
    append_entry,
    load_trajectory,
    validate_entry,
)

pytestmark = pytest.mark.tier1

REPO_ROOT = os.path.join(os.path.dirname(__file__), "..")


def scenario_entry(**overrides):
    entry = {
        "label": "test",
        "scenario": {"ops": 100, "events": 200, "wall_seconds": 1.5,
                     "ops_per_wall_sec": 66.7},
    }
    entry.update(overrides)
    return entry


class TestValidateEntry:
    def test_committed_trajectory_is_schema_clean(self):
        trajectory = load_trajectory(os.path.join(REPO_ROOT, "BENCH_PERF.json"))
        assert trajectory, "committed BENCH_PERF.json should not be empty"
        assert all("label" in entry for entry in trajectory)

    def test_accepts_every_known_section(self):
        validate_entry(scenario_entry())
        validate_entry({
            "label": "x",
            "event_queue": {"events": 1, "wall_seconds": 0.1,
                            "events_per_wall_sec": 10.0},
        })
        validate_entry({
            "label": "x",
            "notes": "recorded on a 1-cpu container",
            "sweep": {"runs": 8, "workers": 4, "cpus": 4,
                      "per_run_sim_seconds": 120.0,
                      "serial_wall_seconds": 80.0,
                      "parallel_wall_seconds": 22.0, "speedup": 3.6,
                      "results_identical": True},
        })

    def test_rejects_missing_label_and_unknown_keys(self):
        with pytest.raises(PerfLogSchemaError, match="label"):
            validate_entry({"scenario": scenario_entry()["scenario"]})
        with pytest.raises(PerfLogSchemaError, match="unknown keys"):
            validate_entry(scenario_entry(scenari_o={"ops": 1}))

    def test_rejects_entry_without_any_section(self):
        with pytest.raises(PerfLogSchemaError, match="no measurement section"):
            validate_entry({"label": "x"})

    def test_rejects_missing_extra_and_mistyped_fields(self):
        entry = scenario_entry()
        del entry["scenario"]["events"]
        with pytest.raises(PerfLogSchemaError, match="missing fields"):
            validate_entry(entry)
        entry = scenario_entry()
        entry["scenario"]["bogus"] = 1
        with pytest.raises(PerfLogSchemaError, match="unknown fields"):
            validate_entry(entry)
        entry = scenario_entry()
        entry["scenario"]["ops"] = "lots"
        with pytest.raises(PerfLogSchemaError, match="must be a number"):
            validate_entry(entry)
        entry = scenario_entry()
        entry["scenario"]["ops"] = 1.5
        with pytest.raises(PerfLogSchemaError, match="must be an integer"):
            validate_entry(entry)
        entry = scenario_entry()
        entry["scenario"]["wall_seconds"] = -1.0
        with pytest.raises(PerfLogSchemaError, match="non-negative"):
            validate_entry(entry)


class TestTrajectoryFile:
    def test_append_validates_and_round_trips(self, tmp_path):
        path = str(tmp_path / "perf.json")
        append_entry(path, scenario_entry(label="first"))
        append_entry(path, scenario_entry(label="second"))
        trajectory = load_trajectory(path)
        assert [e["label"] for e in trajectory] == ["first", "second"]

    def test_append_rejects_malformed_without_touching_the_file(self, tmp_path):
        path = str(tmp_path / "perf.json")
        append_entry(path, scenario_entry())
        with pytest.raises(PerfLogSchemaError):
            append_entry(path, {"label": "broken", "scenario": {"ops": 1}})
        assert len(load_trajectory(path)) == 1

    def test_load_fails_fast_on_a_corrupted_file(self, tmp_path):
        path = str(tmp_path / "perf.json")
        with open(path, "w") as fh:
            json.dump([{"label": "ok", "scenario": {"ops": 1}}], fh)
        with pytest.raises(PerfLogSchemaError):
            load_trajectory(path)
        with open(path, "w") as fh:
            json.dump({"not": "a list"}, fh)
        with pytest.raises(PerfLogSchemaError, match="JSON list"):
            load_trajectory(path)

    def test_missing_file_loads_empty(self, tmp_path):
        assert load_trajectory(str(tmp_path / "absent.json")) == []
