"""Setuptools shim.

The project is configured through ``pyproject.toml``; this file exists so
that ``pip install -e .`` (and ``python setup.py develop``) also work on
older toolchains without the ``wheel`` package installed.
"""

from setuptools import setup

setup()
