#!/usr/bin/env python
"""Run a scenario with observability on and dump the results as JSON.

The dump bundles everything the observability layer produces for one run —
the telemetry registry snapshot (counters / gauges / histogram stats), the
provisioning decision timeline, per-window p99 latency attribution, and the
slowest sampled traces span by span — into one JSON document for offline
analysis or diffing across runs:

    python scripts/analyze_trace.py                         # standard scenario
    python scripts/analyze_trace.py --scenario cache-tier --duration 300
    python scripts/analyze_trace.py --seed 3 --out run3.json
    python scripts/analyze_trace.py --list
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.obs import attribute_windows  # noqa: E402
from repro.parallel.executor import run_scenario  # noqa: E402
from repro.parallel.scenarios import STANDARD_SUITE  # noqa: E402


def scenario_registry() -> dict:
    return {spec.name: spec for spec in STANDARD_SUITE}


def trace_payload(trace) -> dict:
    return {
        "trace_id": trace.trace_id,
        "op": trace.op,
        "start": trace.start,
        "latency": trace.latency,
        "success": trace.success,
        "reconciles": trace.reconciles(),
        "spans": [
            {
                "kind": span.kind,
                "duration": span.duration,
                "detail": span.detail,
                "off_path": span.off_path,
            }
            for span in trace.spans
        ],
    }


def attribution_payload(traces, window: float) -> list:
    return [
        {
            "start": report.start,
            "end": report.end,
            "trace_count": report.trace_count,
            "percentile": report.percentile,
            "percentile_latency": report.percentile_latency,
            "worst_count": report.worst_count,
            "kind_seconds": report.kind_seconds,
            "kind_fractions": report.kind_fractions(),
        }
        for report in attribute_windows(traces, window=window)
    ]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenario", default="standard-closed-loop",
                        help="scenario name from the standard suite")
    parser.add_argument("--duration", type=float, default=None,
                        help="override the scenario's simulated duration (s)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--window", type=float, default=60.0,
                        help="attribution window size (simulated seconds)")
    parser.add_argument("--slowest", type=int, default=10,
                        help="how many of the slowest traces to include in full")
    parser.add_argument("--out", default=None,
                        help="output path (default: stdout)")
    parser.add_argument("--list", action="store_true",
                        help="list scenario names and exit")
    args = parser.parse_args()

    registry = scenario_registry()
    if args.list:
        for name in registry:
            print(name)
        return
    if args.scenario not in registry:
        raise SystemExit(f"unknown scenario {args.scenario!r}; "
                         f"choose from {sorted(registry)} (see --list)")
    scenario = registry[args.scenario]
    overrides = {"engine_knobs.telemetry": True}
    if args.duration is not None:
        overrides["duration"] = args.duration
    scenario = scenario.with_overrides(**overrides)

    summary = run_scenario(scenario, seed=args.seed)
    traces = summary.traces or []
    slowest = sorted(traces, key=lambda t: t.latency, reverse=True)[:args.slowest]
    document = {
        "scenario": scenario.name,
        "seed": args.seed,
        "duration": scenario.duration,
        "operations": summary.operations,
        "trace_count": len(traces),
        "reconciled_traces": sum(1 for t in traces if t.reconciles()),
        "telemetry": summary.telemetry.snapshot() if summary.telemetry else None,
        "decision_timeline": (summary.decision_timeline.snapshot()
                              if summary.decision_timeline else None),
        "attribution_windows": attribution_payload(traces, args.window),
        "slowest_traces": [trace_payload(t) for t in slowest],
    }
    text = json.dumps(document, indent=2)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.out} ({len(traces)} traces, "
              f"{len(document['attribution_windows'])} windows)")
    else:
        print(text)


if __name__ == "__main__":
    main()
