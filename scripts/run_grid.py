#!/usr/bin/env python
"""Run the default-on validation grid (``make grid`` / ``make grid-smoke``).

Expands the scenario corpus against the {baseline, repartition, cache, both}
configuration cells with paired seeds, executes the runs on a process pool,
prints the merged pass/fail verdict table, and exits non-zero if any gate
fails — this is what CI's grid job invokes:

    python scripts/run_grid.py --smoke --workers auto
    python scripts/run_grid.py --only regional-failover --replicates 2
    python scripts/run_grid.py --list
"""

from __future__ import annotations

import argparse
import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.parallel.executor import run_sweep  # noqa: E402
from repro.parallel.grid import (  # noqa: E402
    CONFIG_CELLS,
    build_grid_runs,
    evaluate_grid,
    grid_scenarios,
    render_verdict_table,
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="run the seconds-long smoke variants (SLA gate "
                             "on all cells, dominance/no-harm skipped)")
    parser.add_argument("--workers", default="auto",
                        help="process count, or 'auto' for the core count")
    parser.add_argument("--replicates", type=int, default=1,
                        help="paired-seed repetitions per cell (default: 1)")
    parser.add_argument("--base-seed", type=int, default=0,
                        help="root seed the paired per-run seeds derive from")
    parser.add_argument("--only", default=None, nargs="+",
                        help="run only the named scenarios (seeds unchanged)")
    parser.add_argument("--list", action="store_true",
                        help="list the corpus and configuration cells, then exit")
    args = parser.parse_args()

    if args.list:
        print("configuration cells:")
        for config, overrides in CONFIG_CELLS.items():
            print(f"  {config}: {overrides}")
        print("scenario corpus:")
        for scenario in grid_scenarios(smoke=args.smoke):
            faults = (f", {len(scenario.faults)} fault(s)"
                      if scenario.faults else "")
            print(f"  {scenario.name}: {scenario.trace.kind} trace, "
                  f"{scenario.duration:.0f} sim-s, {scenario.mix} mix{faults}")
        return 0

    workers = os.cpu_count() or 1 if args.workers == "auto" else int(args.workers)
    scenarios = grid_scenarios(smoke=args.smoke, names=args.only)
    runs = build_grid_runs(scenarios=scenarios, replicates=args.replicates,
                           base_seed=args.base_seed)
    tier = "smoke" if args.smoke else "full"
    print(f"validation grid ({tier}): {len(scenarios)} scenarios x "
          f"{len(CONFIG_CELLS)} configs x {args.replicates} replicate(s) = "
          f"{len(runs)} runs on {workers} workers")

    def progress(completed: int, total: int, record) -> None:
        status = "ok" if record.ok else f"FAILED ({record.error_type})"
        print(f"  [{completed}/{total}] {record.run_id}: {status} "
              f"({record.wall_seconds:.1f}s)", flush=True)

    result = run_sweep(runs, workers=workers, progress=progress)
    print(f"\ngrid wall-clock: {result.wall_seconds:.1f}s "
          f"on {result.workers} workers\n")
    verdict = evaluate_grid(result, scenarios, smoke=args.smoke)
    print(render_verdict_table(verdict))
    for failure in result.failures:
        print(f"\n--- {failure.run_id} (seed {failure.seed}) ---")
        print(failure.traceback)
    if not verdict.passed:
        print("\nfailed gates:")
        for line in verdict.failures():
            print(f"  {line}")
    return 0 if verdict.passed else 1


if __name__ == "__main__":
    raise SystemExit(main())
