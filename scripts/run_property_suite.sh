#!/bin/sh
# Full property-based suite: every hypothesis test at the "thorough" profile
# (200 examples each) plus the slow tier.  The default `python -m pytest -x -q`
# run keeps the same tests at a small example budget so it stays fast.
# Marker-driven, so new property suites are picked up automatically — this
# includes the planner-backend properties in tests/test_planner_backends.py
# (analytical sizing monotone in rate and node capacity).
set -eu
cd "$(dirname "$0")/.."

# Fail loudly when the toolchain is absent: a missing interpreter or pytest
# must read as "the suite did not run", never as a green exit.
if ! command -v python >/dev/null 2>&1; then
    echo "run_property_suite.sh: python not found on PATH" >&2
    exit 127
fi
for module in pytest hypothesis; do
    if ! python -c "import $module" >/dev/null 2>&1; then
        echo "run_property_suite.sh: $module is not installed" \
             "(pip install -r requirements-dev.txt)" >&2
        exit 1
    fi
done

HYPOTHESIS_PROFILE=thorough exec python -m pytest -m property --runslow -q "$@"
