#!/bin/sh
# Full property-based suite: every hypothesis test at the "thorough" profile
# (200 examples each) plus the slow tier.  The default `python -m pytest -x -q`
# run keeps the same tests at a small example budget so it stays fast.
# Marker-driven, so new property suites are picked up automatically — this
# includes the planner-backend properties in tests/test_planner_backends.py
# (analytical sizing monotone in rate and node capacity).
set -e
cd "$(dirname "$0")/.."
HYPOTHESIS_PROFILE=thorough python -m pytest -m property --runslow -q "$@"
