#!/usr/bin/env python
"""Run a scenario suite across cores (``make sweep``).

Expands every scenario in the chosen suite into seeded runs, executes them on
a process pool, streams per-run progress, and prints one merged report row
per grid cell.  Per-run results are byte-identical to a serial execution of
the same expansion (see ``repro.parallel``), so worker count is purely a
wall-clock knob:

    python scripts/run_sweep.py --suite standard --workers auto
    python scripts/run_sweep.py --suite smoke --workers 2 --replicates 4
    python scripts/run_sweep.py --list
"""

from __future__ import annotations

import argparse
import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.experiments.reporting import print_table  # noqa: E402
from repro.parallel.scenarios import suites  # noqa: E402
from repro.parallel.spec import RunSpec, SweepGrid, derive_seeds  # noqa: E402
from repro.parallel.executor import run_sweep  # noqa: E402
from repro.parallel.results import SweepResult  # noqa: E402


def build_runs(suite_name: str, replicates: int, base_seed: int,
               only: str | None) -> list[RunSpec]:
    """Expand every suite scenario into one combined, re-indexed run list.

    Each scenario gets its own child base seed (spawned from ``base_seed``)
    so no two scenarios share per-run seeds; within a scenario, seeds come
    from the grid expansion exactly as in any other sweep.
    """
    scenarios = suites()[suite_name]
    # Seeds are assigned from each scenario's position in the UNFILTERED
    # suite, then the filter applies — so `--only cache-tier` replays the
    # exact per-run seeds that scenario had in a full-suite run (the whole
    # point of expansion-time seeding).
    seeded = list(zip(scenarios, derive_seeds(base_seed, len(scenarios))))
    if only:
        seeded = [(s, seed) for s, seed in seeded if only in s.name]
        if not seeded:
            raise SystemExit(f"no scenario in suite {suite_name!r} matches {only!r}")
    runs: list[RunSpec] = []
    for scenario, seed in seeded:
        grid = SweepGrid(scenario=scenario, replicates=replicates, base_seed=seed)
        for run in grid.expand():
            run.index = len(runs)
            runs.append(run)
    return runs


def print_cell_table(result: SweepResult) -> None:
    reports = [report.summary() for report in result.cell_reports()]
    if not reports:
        print("no successful runs")
        return
    header = list(reports[0].keys())
    print_table("merged per-cell reports", header,
                [[row[column] for column in header] for row in reports])


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--suite", default="standard", choices=sorted(suites()),
                        help="scenario suite to run (default: standard)")
    parser.add_argument("--workers", default="auto",
                        help="process count, or 'auto' for the core count")
    parser.add_argument("--replicates", type=int, default=1,
                        help="seeded repetitions of every scenario (default: 1)")
    parser.add_argument("--base-seed", type=int, default=0,
                        help="root seed the per-run seeds are spawned from")
    parser.add_argument("--only", default=None,
                        help="run only scenarios whose name contains this substring")
    parser.add_argument("--list", action="store_true",
                        help="list the suite's scenarios and exit")
    args = parser.parse_args()

    if args.list:
        for name, members in sorted(suites().items()):
            print(f"{name}:")
            for scenario in members:
                print(f"  {scenario.name}: {scenario.trace.kind} trace, "
                      f"{scenario.duration:.0f} sim-s, {scenario.n_users} users")
        return 0

    workers = os.cpu_count() or 1 if args.workers == "auto" else int(args.workers)
    runs = build_runs(args.suite, args.replicates, args.base_seed, args.only)
    print(f"suite {args.suite!r}: {len(runs)} runs on {workers} workers "
          f"(base seed {args.base_seed})")

    def progress(completed: int, total: int, record) -> None:
        status = "ok" if record.ok else f"FAILED ({record.error_type})"
        print(f"  [{completed}/{total}] {record.run_id}: {status} "
              f"({record.wall_seconds:.1f}s)", flush=True)

    result = run_sweep(runs, workers=workers, progress=progress)
    print(f"\nsweep wall-clock: {result.wall_seconds:.1f}s "
          f"on {result.workers} workers")
    print_cell_table(result)
    for failure in result.failures:
        print(f"\n--- {failure.run_id} (seed {failure.seed}) ---")
        print(failure.traceback)
    return 1 if result.failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
