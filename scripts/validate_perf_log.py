#!/usr/bin/env python
"""Validate BENCH_PERF.json against the perf-log schema (``make perf-check``).

Report-only: loads the committed trajectory through the same validator
``make perf`` records through, prints one line per entry, and exits non-zero
on any schema violation.  Nothing is measured and nothing is written — this
is CI's cheap guard against a malformed entry landing in the append-only
history and breaking some later PR's speedup comparison.
"""

from __future__ import annotations

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.experiments.perf_log import (  # noqa: E402
    PerfLogSchemaError,
    SECTION_FIELDS,
    load_trajectory,
)

DEFAULT_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            "..", "BENCH_PERF.json")


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else DEFAULT_PATH
    if not os.path.exists(path):
        print(f"{path}: missing — the perf trajectory should be committed")
        return 1
    try:
        trajectory = load_trajectory(path)
    except PerfLogSchemaError as exc:
        print(f"{path}: SCHEMA VIOLATION: {exc}")
        return 1
    if not trajectory:
        print(f"{path}: empty trajectory — expected recorded entries")
        return 1
    for entry in trajectory:
        sections = [name for name in SECTION_FIELDS if name in entry]
        print(f"  {entry['label']}: {', '.join(sections)}")
    print(f"{os.path.basename(path)}: {len(trajectory)} entries, schema ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
