"""Repository-level pytest configuration.

Ensures the ``src`` layout is importable even when the package has not been
installed (offline environments without the ``wheel`` package cannot run
``pip install -e .``), and defines the test tiers:

* ``tier1`` — fast correctness tests; what ``python -m pytest -x -q`` runs.
* ``slow``  — long-running tests, skipped by default; enable with
  ``--runslow`` (or ``RUN_SLOW=1``).
* ``property`` — hypothesis property suites.  They run in the default tier
  with a small example budget; ``scripts/run_property_suite.sh`` re-runs
  them with the ``thorough`` hypothesis profile for real coverage.
"""

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

try:
    from hypothesis import HealthCheck, settings as _hypothesis_settings

    _hypothesis_settings.register_profile(
        "fast", max_examples=15, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    _hypothesis_settings.register_profile(
        "thorough", max_examples=200, deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    _hypothesis_settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "fast"))
except ImportError:  # pragma: no cover - hypothesis is part of the toolchain
    pass


def pytest_addoption(parser):
    parser.addoption(
        "--runslow", action="store_true", default=False,
        help="also run tests marked slow (the full suite)",
    )


def pytest_configure(config):
    config.addinivalue_line("markers", "tier1: fast correctness test; runs by default")
    config.addinivalue_line("markers", "slow: long-running; needs --runslow or RUN_SLOW=1")
    config.addinivalue_line("markers", "property: hypothesis property suite")


def pytest_collection_modifyitems(config, items):
    run_slow = os.environ.get("RUN_SLOW") not in (None, "", "0")
    if config.getoption("--runslow") or run_slow:
        return
    skip_slow = pytest.mark.skip(reason="slow test: pass --runslow (or RUN_SLOW=1)")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)
