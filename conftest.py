"""Repository-level pytest configuration.

Ensures the ``src`` layout is importable even when the package has not been
installed (offline environments without the ``wheel`` package cannot run
``pip install -e .``).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
