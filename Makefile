# Test tiers (see conftest.py):
#   make test      - tier-1: fast correctness suite (what CI gates on)
#   make test-all  - everything, including slow-marked tests
#   make property  - hypothesis property suites at the thorough profile
#   make bench     - the paper's experiment benchmarks (E1..E13, figures)

PYTEST := python -m pytest

.PHONY: test test-all property bench

test:
	$(PYTEST) -x -q

test-all:
	$(PYTEST) -q --runslow

property:
	sh scripts/run_property_suite.sh

bench:
	$(PYTEST) benchmarks/ -q -s
