# Test tiers (see conftest.py):
#   make test        - tier-1: fast correctness suite (what CI gates on)
#   make test-all    - everything, including slow-marked tests
#   make property    - hypothesis property suites at the thorough profile
#   make bench       - the paper's experiment benchmarks (E1..E14, figures)
#   make bench-smoke - every benchmark in fast smoke mode (BENCH_SMOKE=1:
#                      shortened workloads, relative-economics assertions
#                      skipped) — a cheap crash/regression sweep
#   make perf        - simulator-throughput harness; appends an entry to
#                      BENCH_PERF.json (see PERFORMANCE.md)
#   make sweep       - the standard scenario suite across all cores via the
#                      parallel experiment fabric (see PERFORMANCE.md)
#   make sweep-smoke - tiny sweep grid on 2 workers; also runs inside
#                      make bench-smoke via the bench_*.py glob
#   make grid        - the default-on validation grid: scenario corpus x
#                      {baseline, repartition, cache, both} cells with paired
#                      seeds, gated by the pass/fail verdict table (exits
#                      non-zero on any gate; see PERFORMANCE.md)
#   make grid-smoke  - the grid's seconds-long smoke tier (what CI gates on;
#                      economics/dominance gate skipped, SLA + consistency
#                      gates kept)
#   make lint        - ruff when installed, else compileall as the floor
#   make perf-check  - validate BENCH_PERF.json against the perf-log schema
#                      without recording anything (CI's report-only job)
#   make ci          - the local mirror of every CI job, in CI's order
#   make bench-provisioning - the provisioning-loop benchmarks (E6 scale-down
#                      economics, fig4 consistency axes, E11 planner/forecast
#                      ablations) in smoke mode — the quick check that the
#                      planner backends still close the loop
#   make bench-spot  - E15 mixed-fleet economics at full length: spot surge
#                      + interruption storm vs all on-demand (the smoke tier
#                      of the same scenario already rides in grid-smoke)
#   make bench-noisy - E16 noisy-neighbor economics at full length:
#                      placement-aware diagnosis + host evacuation vs the
#                      capacity-only ablation that rents unhelpful nodes
#                      (the smoke tier of the same scenario already rides
#                      in grid-smoke)
#   make trace-demo  - end-to-end request tracing demo: slowest traces with
#                      per-span attribution, per-window p99 breakdown, and
#                      the provisioning decision timeline (see repro.obs)

PYTEST := python -m pytest

.PHONY: test test-all property bench bench-smoke bench-provisioning \
	bench-spot bench-noisy perf sweep sweep-smoke grid grid-smoke lint \
	perf-check ci trace-demo

test:
	$(PYTEST) -x -q

test-all:
	$(PYTEST) -q --runslow

property:
	sh scripts/run_property_suite.sh

# bench_*.py does not match pytest's default test_*.py collection pattern, so
# the files are passed explicitly (a bare directory collects nothing).
bench:
	$(PYTEST) benchmarks/bench_*.py -q -s

bench-smoke:
	BENCH_SMOKE=1 $(PYTEST) benchmarks/bench_*.py -q -s

bench-provisioning:
	BENCH_SMOKE=1 $(PYTEST) benchmarks/bench_e6_scale_down_cost.py \
		benchmarks/bench_fig4_consistency_axes.py \
		benchmarks/bench_e11_ml_ablation.py -q -s

bench-spot:
	$(PYTEST) benchmarks/bench_e15_spot_fleet.py -q -s

bench-noisy:
	$(PYTEST) benchmarks/bench_e16_noisy_neighbor.py -q -s

perf:
	BENCH_PERF_RECORD=1 $(PYTEST) benchmarks/bench_perf_throughput.py -q -s

sweep:
	python scripts/run_sweep.py --suite standard --workers auto

sweep-smoke:
	BENCH_SMOKE=1 $(PYTEST) benchmarks/bench_perf_throughput.py -q -s -k sweep

grid:
	python scripts/run_grid.py --workers auto

grid-smoke:
	python scripts/run_grid.py --smoke --workers auto

# Lint floor that works without network access: ruff when the runner has it
# (CI does), byte-compilation as the always-available fallback.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check . && echo "ruff: clean"; \
	else \
		echo "ruff not installed; falling back to compileall"; \
	fi
	python -m compileall -q src scripts benchmarks tests

perf-check:
	python scripts/validate_perf_log.py

# The local mirror of .github/workflows/ci.yml, job by job.
ci: lint test perf-check bench-smoke grid-smoke

trace-demo:
	python examples/trace_demo.py
