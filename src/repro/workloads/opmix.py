"""CloudStone-like Web 2.0 operation mix.

The real CloudStone benchmark drives a social-events application with a mix
of browse-heavy interactive operations and a minority of writes.  This module
reproduces the *shape* of that workload against the SCADS social-network
schema: profile and friend-list reads dominate, with status posts, friend
additions, and profile edits forming the write tail.  The Halloween-spike
experiment (E5) raises the write fraction, matching the paper's observation
that photo-upload spikes are "particularly interesting, and difficult,
because they involve a significant percentage of writes."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.sim.randomness import ZipfGenerator
from repro.workloads.social_graph import SocialGraph


class OperationKind(enum.Enum):
    """The operation types the workload issues against the SCADS API."""

    READ_PROFILE = "read_profile"
    READ_FRIENDS = "read_friends"
    READ_FRIEND_BIRTHDAYS = "read_friend_birthdays"
    READ_FRIENDS_OF_FRIENDS = "read_friends_of_friends"
    POST_STATUS = "post_status"
    ADD_FRIEND = "add_friend"
    UPDATE_PROFILE = "update_profile"


# Default interactive mix: ~90 % reads / 10 % writes, browse-heavy.
DEFAULT_MIX: Dict[OperationKind, float] = {
    OperationKind.READ_PROFILE: 0.35,
    OperationKind.READ_FRIENDS: 0.25,
    OperationKind.READ_FRIEND_BIRTHDAYS: 0.20,
    OperationKind.READ_FRIENDS_OF_FRIENDS: 0.10,
    OperationKind.POST_STATUS: 0.06,
    OperationKind.ADD_FRIEND: 0.02,
    OperationKind.UPDATE_PROFILE: 0.02,
}

# Post-Halloween style mix: a much larger write share (photo/status uploads).
WRITE_HEAVY_MIX: Dict[OperationKind, float] = {
    OperationKind.READ_PROFILE: 0.25,
    OperationKind.READ_FRIENDS: 0.15,
    OperationKind.READ_FRIEND_BIRTHDAYS: 0.10,
    OperationKind.READ_FRIENDS_OF_FRIENDS: 0.05,
    OperationKind.POST_STATUS: 0.35,
    OperationKind.ADD_FRIEND: 0.05,
    OperationKind.UPDATE_PROFILE: 0.05,
}

# Cache-hostile scan: every operation is a read, but user popularity is
# *uniform* (pair with ``zipf_theta=0.0``), so no working set concentrates and
# a front-tier cache keeps missing.  The validation grid uses this to prove
# the cache tier degrades gracefully when its premise (skew) is absent.
UNIFORM_READ_MIX: Dict[OperationKind, float] = {
    OperationKind.READ_PROFILE: 0.50,
    OperationKind.READ_FRIENDS: 0.30,
    OperationKind.READ_FRIEND_BIRTHDAYS: 0.20,
}

WRITE_KINDS = {
    OperationKind.POST_STATUS,
    OperationKind.ADD_FRIEND,
    OperationKind.UPDATE_PROFILE,
}


@dataclass(frozen=True, slots=True)
class Operation:
    """One workload operation: what to do and on behalf of which user."""

    kind: OperationKind
    user_id: str
    target_id: Optional[str] = None
    payload: Optional[dict] = None

    @property
    def is_write(self) -> bool:
        return self.kind in WRITE_KINDS


class CloudStoneMix:
    """Draws operations against a social graph with Zipfian user popularity.

    Kind selection is a ``searchsorted`` against a cached cumulative mix over
    *pooled* uniforms rather than a per-operation ``Generator.choice`` call —
    same draw distribution and, for a dedicated stream, the identical kind
    sequence, at a tiny fraction of the cost (``choice(p=...)`` re-validates
    and re-normalises the weights on every call).
    """

    POOL_BLOCK = 1024

    def __init__(
        self,
        graph: SocialGraph,
        rng: np.random.Generator,
        mix: Optional[Dict[OperationKind, float]] = None,
        zipf_theta: float = 0.8,
    ) -> None:
        self.graph = graph
        self._rng = rng
        self._mix: Dict[OperationKind, float] = {}
        self._kinds: List[OperationKind] = []
        self._kind_cdf = np.empty(0)
        self._pool: List[OperationKind] = []
        self._pool_index = 0
        self.set_mix(mix or DEFAULT_MIX)
        self._zipf = ZipfGenerator(graph.n_users, zipf_theta, rng)
        self._users = graph.users()
        self._status_counter = 0

    def write_fraction(self) -> float:
        """The fraction of operations that are writes under the current mix."""
        return sum(weight for kind, weight in self._mix.items() if kind in WRITE_KINDS)

    def set_mix(self, mix: Dict[OperationKind, float]) -> None:
        """Swap the operation mix (e.g. to the write-heavy spike mix) mid-run."""
        total = sum(mix.values())
        if total <= 0:
            raise ValueError("operation mix weights must sum to a positive value")
        if any(weight < 0 for weight in mix.values()):
            raise ValueError("operation mix weights must be non-negative")
        self._mix = {kind: weight / total for kind, weight in mix.items()}
        self._kinds = list(self._mix.keys())
        cdf = np.cumsum(np.fromiter(self._mix.values(), dtype=float))
        cdf /= cdf[-1]  # exact 1.0 endpoint: searchsorted can never overrun
        self._kind_cdf = cdf
        # Pre-drawn kind choices were made under the old mix; drop them so a
        # mid-run mix swap (the Halloween spike) takes effect immediately.
        self._pool = []
        self._pool_index = 0

    def _pick_user(self) -> str:
        return self._users[self._zipf.draw()]

    def _pick_kind(self) -> OperationKind:
        index = self._pool_index
        pool = self._pool
        if index >= len(pool):
            # searchsorted runs vectorized over the whole refill block, so a
            # per-operation kind choice is two list lookups.
            kinds = self._kinds
            indices = np.searchsorted(self._kind_cdf, self._rng.random(self.POOL_BLOCK))
            pool = self._pool = [kinds[i] for i in indices.tolist()]
            index = 0
        self._pool_index = index + 1
        return pool[index]

    def next_operation(self) -> Operation:
        """Draw the next operation from the mix."""
        kind = self._pick_kind()
        user_id = self._pick_user()
        if kind is OperationKind.READ_PROFILE:
            target = self._pick_user()
            return Operation(kind=kind, user_id=user_id, target_id=target)
        if kind in (OperationKind.READ_FRIENDS, OperationKind.READ_FRIEND_BIRTHDAYS,
                    OperationKind.READ_FRIENDS_OF_FRIENDS):
            return Operation(kind=kind, user_id=user_id)
        if kind is OperationKind.POST_STATUS:
            self._status_counter += 1
            return Operation(
                kind=kind,
                user_id=user_id,
                payload={"text": f"status #{self._status_counter} from {user_id}"},
            )
        if kind is OperationKind.ADD_FRIEND:
            target = self._pick_user()
            while target == user_id and self.graph.n_users > 1:
                target = self._pick_user()
            return Operation(kind=kind, user_id=user_id, target_id=target)
        # UPDATE_PROFILE: change hometown (keeps birthday stable so the
        # birthday-index maintenance path is driven by ADD_FRIEND instead).
        return Operation(
            kind=kind,
            user_id=user_id,
            payload={"hometown": f"town-{int(self._rng.integers(0, 50))}"},
        )
