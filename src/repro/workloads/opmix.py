"""CloudStone-like Web 2.0 operation mix.

The real CloudStone benchmark drives a social-events application with a mix
of browse-heavy interactive operations and a minority of writes.  This module
reproduces the *shape* of that workload against the SCADS social-network
schema: profile and friend-list reads dominate, with status posts, friend
additions, and profile edits forming the write tail.  The Halloween-spike
experiment (E5) raises the write fraction, matching the paper's observation
that photo-upload spikes are "particularly interesting, and difficult,
because they involve a significant percentage of writes."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.sim.randomness import ZipfGenerator, weighted_choice
from repro.workloads.social_graph import SocialGraph


class OperationKind(enum.Enum):
    """The operation types the workload issues against the SCADS API."""

    READ_PROFILE = "read_profile"
    READ_FRIENDS = "read_friends"
    READ_FRIEND_BIRTHDAYS = "read_friend_birthdays"
    READ_FRIENDS_OF_FRIENDS = "read_friends_of_friends"
    POST_STATUS = "post_status"
    ADD_FRIEND = "add_friend"
    UPDATE_PROFILE = "update_profile"


# Default interactive mix: ~90 % reads / 10 % writes, browse-heavy.
DEFAULT_MIX: Dict[OperationKind, float] = {
    OperationKind.READ_PROFILE: 0.35,
    OperationKind.READ_FRIENDS: 0.25,
    OperationKind.READ_FRIEND_BIRTHDAYS: 0.20,
    OperationKind.READ_FRIENDS_OF_FRIENDS: 0.10,
    OperationKind.POST_STATUS: 0.06,
    OperationKind.ADD_FRIEND: 0.02,
    OperationKind.UPDATE_PROFILE: 0.02,
}

# Post-Halloween style mix: a much larger write share (photo/status uploads).
WRITE_HEAVY_MIX: Dict[OperationKind, float] = {
    OperationKind.READ_PROFILE: 0.25,
    OperationKind.READ_FRIENDS: 0.15,
    OperationKind.READ_FRIEND_BIRTHDAYS: 0.10,
    OperationKind.READ_FRIENDS_OF_FRIENDS: 0.05,
    OperationKind.POST_STATUS: 0.35,
    OperationKind.ADD_FRIEND: 0.05,
    OperationKind.UPDATE_PROFILE: 0.05,
}

WRITE_KINDS = {
    OperationKind.POST_STATUS,
    OperationKind.ADD_FRIEND,
    OperationKind.UPDATE_PROFILE,
}


@dataclass(frozen=True)
class Operation:
    """One workload operation: what to do and on behalf of which user."""

    kind: OperationKind
    user_id: str
    target_id: Optional[str] = None
    payload: Optional[dict] = None

    @property
    def is_write(self) -> bool:
        return self.kind in WRITE_KINDS


class CloudStoneMix:
    """Draws operations against a social graph with Zipfian user popularity."""

    def __init__(
        self,
        graph: SocialGraph,
        rng: np.random.Generator,
        mix: Optional[Dict[OperationKind, float]] = None,
        zipf_theta: float = 0.8,
    ) -> None:
        self.graph = graph
        self._rng = rng
        self._mix = dict(mix or DEFAULT_MIX)
        total = sum(self._mix.values())
        if total <= 0:
            raise ValueError("operation mix weights must sum to a positive value")
        self._mix = {kind: weight / total for kind, weight in self._mix.items()}
        self._zipf = ZipfGenerator(graph.n_users, zipf_theta, rng)
        self._users = graph.users()
        self._status_counter = 0

    def write_fraction(self) -> float:
        """The fraction of operations that are writes under the current mix."""
        return sum(weight for kind, weight in self._mix.items() if kind in WRITE_KINDS)

    def set_mix(self, mix: Dict[OperationKind, float]) -> None:
        """Swap the operation mix (e.g. to the write-heavy spike mix) mid-run."""
        total = sum(mix.values())
        if total <= 0:
            raise ValueError("operation mix weights must sum to a positive value")
        self._mix = {kind: weight / total for kind, weight in mix.items()}

    def _pick_user(self) -> str:
        return self._users[self._zipf.draw()]

    def next_operation(self) -> Operation:
        """Draw the next operation from the mix."""
        weights = {kind.value: weight for kind, weight in self._mix.items()}
        kind = OperationKind(weighted_choice(self._rng, weights))
        user_id = self._pick_user()
        if kind is OperationKind.READ_PROFILE:
            target = self._pick_user()
            return Operation(kind=kind, user_id=user_id, target_id=target)
        if kind in (OperationKind.READ_FRIENDS, OperationKind.READ_FRIEND_BIRTHDAYS,
                    OperationKind.READ_FRIENDS_OF_FRIENDS):
            return Operation(kind=kind, user_id=user_id)
        if kind is OperationKind.POST_STATUS:
            self._status_counter += 1
            return Operation(
                kind=kind,
                user_id=user_id,
                payload={"text": f"status #{self._status_counter} from {user_id}"},
            )
        if kind is OperationKind.ADD_FRIEND:
            target = self._pick_user()
            while target == user_id and self.graph.n_users > 1:
                target = self._pick_user()
            return Operation(kind=kind, user_id=user_id, target_id=target)
        # UPDATE_PROFILE: change hometown (keeps birthday stable so the
        # birthday-index maintenance path is driven by ADD_FRIEND instead).
        return Operation(
            kind=kind,
            user_id=user_id,
            payload={"hometown": f"town-{int(self._rng.integers(0, 50))}"},
        )
