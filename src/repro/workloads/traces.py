"""Load traces: request rate as a function of simulated time.

Each trace answers "what aggregate request rate (ops/sec) does the site see at
time t?".  The shapes reproduce the load patterns the paper names:

* :class:`AnimotoViralTrace` — Figure 1's viral growth, where load grows by
  nearly two orders of magnitude over three days.
* :class:`DiurnalTrace` — ordinary day/night cycles, the scale-down economics
  workload.
* :class:`HalloweenSpikeTrace` — a sudden, write-heavy event spike layered on
  a baseline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple


class LoadTrace:
    """Base class: a deterministic request-rate curve over simulated time."""

    def rate_at(self, time: float) -> float:
        """Aggregate request rate (ops/sec) at simulated time ``time``."""
        raise NotImplementedError

    def peak_rate_over(self, duration: float, resolution: float = 60.0) -> float:
        """Maximum rate over ``[0, duration]`` sampled every ``resolution`` seconds."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        best = 0.0
        t = 0.0
        while t <= duration:
            best = max(best, self.rate_at(t))
            t += resolution
        return best

    def mean_rate_over(self, duration: float, resolution: float = 60.0) -> float:
        """Mean rate over ``[0, duration]`` sampled every ``resolution`` seconds."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        total = 0.0
        samples = 0
        t = 0.0
        while t <= duration:
            total += self.rate_at(t)
            samples += 1
            t += resolution
        return total / samples if samples else 0.0


@dataclass
class ConstantTrace(LoadTrace):
    """A flat request rate."""

    rate: float

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError("rate must be non-negative")

    def rate_at(self, time: float) -> float:
        return self.rate


@dataclass
class StepTrace(LoadTrace):
    """Piecewise-constant rate: a list of (start_time, rate) steps."""

    steps: Sequence[Tuple[float, float]]

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("at least one step is required")
        times = [t for t, _ in self.steps]
        if times != sorted(times):
            raise ValueError("steps must be sorted by start time")
        if any(rate < 0 for _, rate in self.steps):
            raise ValueError("rates must be non-negative")

    def rate_at(self, time: float) -> float:
        rate = self.steps[0][1]
        for start, step_rate in self.steps:
            if time >= start:
                rate = step_rate
            else:
                break
        return rate


@dataclass
class DiurnalTrace(LoadTrace):
    """A sinusoidal day/night cycle.

    Rate oscillates between ``base_rate`` and ``peak_rate`` with a period of
    one day, peaking at ``peak_hour`` (default 20:00 — evening traffic).
    """

    base_rate: float
    peak_rate: float
    peak_hour: float = 20.0
    period_hours: float = 24.0

    def __post_init__(self) -> None:
        if self.base_rate < 0 or self.peak_rate < self.base_rate:
            raise ValueError("need 0 <= base_rate <= peak_rate")
        if self.period_hours <= 0:
            raise ValueError("period must be positive")

    def rate_at(self, time: float) -> float:
        hours = time / 3600.0
        phase = 2.0 * math.pi * (hours - self.peak_hour) / self.period_hours
        # cos(0) = 1 at the peak hour.
        amplitude = (self.peak_rate - self.base_rate) / 2.0
        midpoint = (self.peak_rate + self.base_rate) / 2.0
        return midpoint + amplitude * math.cos(phase)


@dataclass
class AnimotoViralTrace(LoadTrace):
    """Figure 1's viral growth: exponential ramp over ~3 days, then plateau.

    Animoto went from about 50 servers to 3 400+ in three days.  Interpreting
    one 2008-era server as roughly ``rate_per_server_equivalent`` ops/sec of
    storage traffic gives a load curve with the same two-orders-of-magnitude
    ramp; the reproduction only depends on the *ratio* between start and peak.
    """

    start_rate: float = 500.0
    peak_multiplier: float = 68.0  # 3400 / 50
    ramp_duration: float = 3 * 86400.0
    ramp_start: float = 6 * 3600.0

    def __post_init__(self) -> None:
        if self.start_rate <= 0:
            raise ValueError("start_rate must be positive")
        if self.peak_multiplier < 1:
            raise ValueError("peak_multiplier must be >= 1")
        if self.ramp_duration <= 0:
            raise ValueError("ramp_duration must be positive")

    def rate_at(self, time: float) -> float:
        if time <= self.ramp_start:
            return self.start_rate
        progress = min((time - self.ramp_start) / self.ramp_duration, 1.0)
        # Exponential interpolation start -> start * multiplier.
        return self.start_rate * (self.peak_multiplier ** progress)


@dataclass
class HalloweenSpikeTrace(LoadTrace):
    """A sudden spike on top of a baseline, with a sharp rise and slower decay."""

    base_rate: float
    spike_multiplier: float = 5.0
    spike_start: float = 12 * 3600.0
    rise_duration: float = 1800.0
    hold_duration: float = 4 * 3600.0
    decay_duration: float = 6 * 3600.0

    def __post_init__(self) -> None:
        if self.base_rate <= 0:
            raise ValueError("base_rate must be positive")
        if self.spike_multiplier < 1:
            raise ValueError("spike_multiplier must be >= 1")
        for name in ("rise_duration", "hold_duration", "decay_duration"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    def rate_at(self, time: float) -> float:
        peak = self.base_rate * self.spike_multiplier
        rise_end = self.spike_start + self.rise_duration
        hold_end = rise_end + self.hold_duration
        decay_end = hold_end + self.decay_duration
        if time < self.spike_start or time >= decay_end:
            return self.base_rate
        if time < rise_end:
            progress = (time - self.spike_start) / self.rise_duration
            return self.base_rate + (peak - self.base_rate) * progress
        if time < hold_end:
            return peak
        progress = (time - hold_end) / self.decay_duration
        return peak - (peak - self.base_rate) * progress


@dataclass
class FlashCrowdTrace(LoadTrace):
    """A diurnal cycle with a flash crowd erupting on top of it.

    The validation grid's hardest mixed shape: ordinary day/night traffic
    (deep troughs the controller should scale down into) interrupted by a
    sudden crowd — a news link, a celebrity post — that rises in minutes,
    holds, and decays.  Expressed as one registered trace kind (rather than a
    nested composite) so scenario specs stay flat, human-readable data.
    """

    base_rate: float
    peak_rate: float
    period_hours: float = 24.0
    peak_hour: float = 20.0
    crowd_start: float = 12 * 3600.0
    crowd_multiplier: float = 4.0
    rise_duration: float = 300.0
    hold_duration: float = 1800.0
    decay_duration: float = 1800.0

    def __post_init__(self) -> None:
        self._diurnal = DiurnalTrace(
            base_rate=self.base_rate, peak_rate=self.peak_rate,
            peak_hour=self.peak_hour, period_hours=self.period_hours,
        )
        # The crowd multiplies the diurnal baseline at its start instant, so
        # the spike's absolute height tracks whatever the cycle was doing.
        crowd_base = self._diurnal.rate_at(self.crowd_start)
        self._crowd = HalloweenSpikeTrace(
            base_rate=crowd_base,
            spike_multiplier=self.crowd_multiplier,
            spike_start=self.crowd_start,
            rise_duration=self.rise_duration,
            hold_duration=self.hold_duration,
            decay_duration=self.decay_duration,
        )

    def rate_at(self, time: float) -> float:
        # The crowd trace contributes only its excess over its own baseline;
        # the diurnal curve supplies the ambient rate throughout.
        excess = self._crowd.rate_at(time) - self._crowd.base_rate
        return self._diurnal.rate_at(time) + excess


@dataclass
class CompositeTrace(LoadTrace):
    """The sum of several traces (e.g. diurnal baseline + event spike)."""

    traces: List[LoadTrace] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.traces:
            raise ValueError("a composite trace needs at least one component")

    def rate_at(self, time: float) -> float:
        return sum(trace.rate_at(time) for trace in self.traces)
