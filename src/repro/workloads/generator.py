"""Open-loop load generator.

Drives an operation-executor callback at the aggregate rate a
:class:`~repro.workloads.traces.LoadTrace` prescribes.  To keep simulated
experiments tractable at paper-scale request rates, the generator supports a
*sampling fraction*: it issues ``sampling_fraction`` of the nominal requests
and the storage nodes are told the true offered rate through their utilisation
model (the router still records genuine per-request latencies).  With the
default fraction of 1.0 every request is simulated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.sim.simulator import Simulator
from repro.workloads.opmix import CloudStoneMix, Operation
from repro.workloads.traces import LoadTrace


@dataclass
class GeneratorStats:
    """Counters describing what the generator issued."""

    operations_issued: int = 0
    reads_issued: int = 0
    writes_issued: int = 0


class LoadGenerator:
    """Issues operations from an op mix at a trace-driven rate.

    Args:
        simulator: shared discrete-event simulator.
        trace: request-rate curve.
        mix: operation generator.
        execute: callback invoked with each :class:`Operation`; the SCADS
            engine (or a baseline) supplies this.
        sampling_fraction: fraction of nominal operations actually simulated.
        max_interarrival: upper bound on the gap between issued operations so
            rate changes are noticed even when the current rate is near zero.
    """

    def __init__(
        self,
        simulator: Simulator,
        trace: LoadTrace,
        mix: CloudStoneMix,
        execute: Callable[[Operation], None],
        sampling_fraction: float = 1.0,
        max_interarrival: float = 30.0,
    ) -> None:
        if not 0.0 < sampling_fraction <= 1.0:
            raise ValueError(f"sampling_fraction must be in (0, 1], got {sampling_fraction}")
        if max_interarrival <= 0:
            raise ValueError("max_interarrival must be positive")
        self._sim = simulator
        self._trace = trace
        self._mix = mix
        self._execute = execute
        self._sampling_fraction = sampling_fraction
        self._max_interarrival = max_interarrival
        self._rng = simulator.random.get("load-generator")
        self._running = False
        self.stats = GeneratorStats()
        # Pooled unit-exponential block: ``exponential(scale)`` is exactly
        # ``scale * standard_exponential()`` on the same stream, so drawing
        # the unit variates in blocks and scaling by the current 1/rate per
        # arrival emits the identical gap sequence at a fraction of the
        # per-call generator overhead.
        self._exp_pool = None
        self._exp_index = 0

    @property
    def trace(self) -> LoadTrace:
        return self._trace

    def nominal_rate(self) -> float:
        """The trace's request rate at the current simulated time."""
        return self._trace.rate_at(self._sim.now)

    def effective_rate(self) -> float:
        """The rate at which the generator actually issues simulated operations."""
        return self.nominal_rate() * self._sampling_fraction

    def start(self) -> None:
        """Begin issuing operations (idempotent)."""
        if self._running:
            return
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        """Stop issuing operations after the currently scheduled one."""
        self._running = False

    POOL_BLOCK = 1024

    def _schedule_next(self) -> None:
        if not self._running:
            return
        rate = self._trace.rate_at(self._sim.clock.now) * self._sampling_fraction
        if rate <= 0:
            delay = self._max_interarrival
        else:
            pool = self._exp_pool
            index = self._exp_index
            if pool is None or index >= len(pool):
                pool = self._exp_pool = self._rng.standard_exponential(self.POOL_BLOCK).tolist()
                index = 0
            self._exp_index = index + 1
            delay = pool[index] / rate
            if delay > self._max_interarrival:
                delay = self._max_interarrival
        self._sim.schedule(delay, self._tick, name="load-generator")

    def _tick(self) -> None:
        if not self._running:
            return
        operation = self._mix.next_operation()
        self.stats.operations_issued += 1
        if operation.is_write:
            self.stats.writes_issued += 1
        else:
            self.stats.reads_issued += 1
        self._execute(operation)
        self._schedule_next()
