"""Synthetic social graph with bounded per-user degree.

The paper's scale-independence argument rests on per-user fan-out being
bounded by an application constant (Facebook's 5 000-friend limit is its
example), while the *population* grows without bound.  The generator produces
exactly that: heavy-tailed friend counts truncated at a configurable cap,
plus per-user profile fields (birthday, hometown) used by the Figure-3
query templates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

import numpy as np


@dataclass
class UserProfile:
    """Profile fields for one synthetic user."""

    user_id: str
    name: str
    birthday: str  # "MM-DD" — what the upcoming-birthdays query sorts on
    hometown: str
    signup_day: int


class SocialGraph:
    """An undirected friendship graph with a hard per-user degree cap.

    Args:
        n_users: number of users to generate.
        max_friends: hard cap on any user's friend count (the paper's K).
        mean_friends: target mean degree before capping.
        rng: numpy random generator (pass one derived from the experiment seed).
    """

    def __init__(
        self,
        n_users: int,
        rng: np.random.Generator,
        max_friends: int = 5000,
        mean_friends: float = 50.0,
        hometowns: Optional[List[str]] = None,
    ) -> None:
        if n_users < 1:
            raise ValueError(f"n_users must be >= 1, got {n_users}")
        if max_friends < 1:
            raise ValueError(f"max_friends must be >= 1, got {max_friends}")
        if mean_friends <= 0:
            raise ValueError(f"mean_friends must be positive, got {mean_friends}")
        self.n_users = n_users
        self.max_friends = max_friends
        self.mean_friends = mean_friends
        self._rng = rng
        self._hometowns = hometowns or [
            "berkeley", "san-francisco", "oakland", "palo-alto", "seattle",
            "new-york", "austin", "chicago", "boston", "portland",
        ]
        self.profiles: Dict[str, UserProfile] = {}
        self._friends: Dict[str, Set[str]] = {}
        self._generate()

    # --------------------------------------------------------------- generation

    def _user_id(self, index: int) -> str:
        return f"u{index:08d}"

    def _generate(self) -> None:
        months_days = [(m, d) for m in range(1, 13) for d in range(1, 29)]
        for i in range(self.n_users):
            user_id = self._user_id(i)
            month, day = months_days[int(self._rng.integers(0, len(months_days)))]
            self.profiles[user_id] = UserProfile(
                user_id=user_id,
                name=f"user-{i}",
                birthday=f"{month:02d}-{day:02d}",
                hometown=self._hometowns[int(self._rng.integers(0, len(self._hometowns)))],
                signup_day=int(self._rng.integers(0, 365)),
            )
            self._friends[user_id] = set()
        self._generate_edges()

    def _generate_edges(self) -> None:
        """Preferential-attachment-flavoured edges with a hard degree cap.

        Each user draws a target degree from a geometric distribution (heavy
        tail of very social users), then connects to users chosen with a bias
        toward earlier (already well-connected) users, skipping anyone at the
        cap.  For single-user graphs there is nothing to connect.
        """
        if self.n_users == 1:
            return
        user_ids = list(self.profiles.keys())
        p = 1.0 / self.mean_friends
        for i, user_id in enumerate(user_ids):
            target = int(min(self._rng.geometric(p), self.max_friends))
            attempts = 0
            while len(self._friends[user_id]) < target and attempts < target * 4:
                attempts += 1
                if self._rng.random() < 0.7 and i > 0:
                    # Bias toward earlier users: preferential-attachment flavour.
                    j = int(self._rng.integers(0, i))
                else:
                    j = int(self._rng.integers(0, self.n_users))
                other = user_ids[j]
                if other == user_id:
                    continue
                if len(self._friends[other]) >= self.max_friends:
                    continue
                if len(self._friends[user_id]) >= self.max_friends:
                    break
                self._friends[user_id].add(other)
                self._friends[other].add(user_id)

    # ------------------------------------------------------------------ queries

    def users(self) -> List[str]:
        """All user ids, in generation order."""
        return list(self.profiles.keys())

    def profile(self, user_id: str) -> UserProfile:
        return self.profiles[user_id]

    def friends_of(self, user_id: str) -> List[str]:
        """The user's friends, sorted for determinism."""
        return sorted(self._friends[user_id])

    def friend_count(self, user_id: str) -> int:
        return len(self._friends[user_id])

    def friendships(self) -> Iterator[Tuple[str, str]]:
        """Every undirected friendship exactly once (smaller id first)."""
        for user_id, friends in self._friends.items():
            for other in friends:
                if user_id < other:
                    yield user_id, other

    def add_friendship(self, a: str, b: str) -> bool:
        """Add a friendship respecting the degree cap.  Returns False if rejected."""
        if a == b:
            raise ValueError("a user cannot befriend themselves")
        if a not in self._friends or b not in self._friends:
            raise KeyError("both users must exist in the graph")
        if len(self._friends[a]) >= self.max_friends or len(self._friends[b]) >= self.max_friends:
            return False
        self._friends[a].add(b)
        self._friends[b].add(a)
        return True

    def remove_friendship(self, a: str, b: str) -> bool:
        """Remove a friendship; returns False if it did not exist."""
        if b not in self._friends.get(a, set()):
            return False
        self._friends[a].discard(b)
        self._friends[b].discard(a)
        return True

    def max_degree(self) -> int:
        """The largest friend count in the graph (always <= max_friends)."""
        return max((len(f) for f in self._friends.values()), default=0)

    def mean_degree(self) -> float:
        """The average friend count."""
        if not self._friends:
            return 0.0
        return float(np.mean([len(f) for f in self._friends.values()]))

    def random_user(self, rng: Optional[np.random.Generator] = None) -> str:
        """A uniformly random user id."""
        generator = rng if rng is not None else self._rng
        return self._user_id(int(generator.integers(0, self.n_users)))
