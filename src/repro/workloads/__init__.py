"""Workload substrate: social graphs, operation mixes, load traces, generators.

These stand in for the CloudStone benchmark and the production traces
(Animoto's viral growth, Facebook's post-Halloween photo spike, ordinary
diurnal cycles) that the paper's evaluation plan relies on.
"""

from repro.workloads.social_graph import SocialGraph, UserProfile
from repro.workloads.opmix import CloudStoneMix, Operation, OperationKind
from repro.workloads.traces import (
    AnimotoViralTrace,
    CompositeTrace,
    ConstantTrace,
    DiurnalTrace,
    HalloweenSpikeTrace,
    LoadTrace,
    StepTrace,
)
from repro.workloads.generator import LoadGenerator

__all__ = [
    "SocialGraph",
    "UserProfile",
    "CloudStoneMix",
    "Operation",
    "OperationKind",
    "LoadTrace",
    "ConstantTrace",
    "StepTrace",
    "DiurnalTrace",
    "AnimotoViralTrace",
    "HalloweenSpikeTrace",
    "CompositeTrace",
    "LoadGenerator",
]
