"""Admission and bypass policy: what may be cached, and for how long.

The policy is where the declarative consistency specification becomes a cache
contract:

* **Admission** — only reads whose governing
  :class:`~repro.core.consistency.spec.ReadConsistency` grants a staleness
  budget larger than the propagation headroom are cacheable at all.  The
  headroom absorbs the asynchronous machinery between a write and its
  visibility (replica propagation, invalidation ordering), so a cached answer
  served at the very end of its TTL still sits inside the declared bound.

* **TTL derivation** — a spec saying "stale data gone within B seconds" makes
  an entry servable for ``B - headroom`` seconds *minus any staleness the
  value already carried when it was read*.  The engine's consistency-aware
  read path knows that carried staleness exactly (it peeks the primary to
  enforce the bound), and reports it as the read's ``known_staleness``; a
  value that was already ``a`` seconds behind the primary may only be served
  from cache for ``B - a - headroom`` more seconds.  Reads whose staleness
  could not be verified (primary unreachable) are never admitted.

* **Session bypass** — Terry-style session guarantees outrank the staleness
  budget.  A read-your-writes session that has written a key must not be
  handed a cached value older than its own write, and a monotonic-reads
  session must never go backwards; both checks reuse the
  :class:`~repro.core.consistency.sessions.Session` version history, forcing
  a per-session cache bypass exactly where the guarantee demands it.
"""

from __future__ import annotations

from typing import Optional

from repro.core.consistency.sessions import Session
from repro.core.consistency.spec import ConsistencySpec
from repro.storage.records import Key


class AdmissionPolicy:
    """Derives cacheability, TTLs, and session bypasses from a spec.

    Args:
        spec: the declarative consistency specification governing the data.
        propagation_headroom: seconds subtracted from the staleness bound when
            deriving TTLs.  Defaults to 10% of the bound, capped at 2 seconds
            — enough to cover replica propagation in the simulation while
            leaving most of the declared budget exploitable.
    """

    DEFAULT_HEADROOM_FRACTION = 0.1
    DEFAULT_HEADROOM_CAP = 2.0

    def __init__(self, spec: ConsistencySpec,
                 propagation_headroom: Optional[float] = None) -> None:
        if propagation_headroom is None:
            propagation_headroom = min(
                self.DEFAULT_HEADROOM_FRACTION * spec.read.staleness_bound,
                self.DEFAULT_HEADROOM_CAP,
            )
        if propagation_headroom < 0:
            raise ValueError(
                f"propagation_headroom must be non-negative, got {propagation_headroom}"
            )
        self.spec = spec
        self.propagation_headroom = propagation_headroom

    # -------------------------------------------------------------- admission

    @property
    def servable_budget(self) -> float:
        """Seconds a freshly-read value may be served from cache."""
        return self.spec.read.staleness_bound - self.propagation_headroom

    def cacheable(self) -> bool:
        """True when the spec grants any exploitable staleness at all."""
        return self.servable_budget > 0.0

    def entity_ttl(self, known_staleness: Optional[float]) -> float:
        """TTL for an entity read that was ``known_staleness`` seconds behind
        the primary when it was served (None = unverified, never admitted)."""
        if known_staleness is None or known_staleness < 0:
            return 0.0
        return max(self.servable_budget - known_staleness, 0.0)

    def range_ttl(self) -> float:
        """TTL for a compiled-query range read.

        Sound because of two engine-side guarantees: cache fills scan the
        *primary* (so the rows can only be missing index writes that are
        still pending in the updater's deadline queue — staleness the
        declared bound already grants), and the moment any such pending write
        is applied, :meth:`~repro.cache.tier.CacheTier.note_index_write`
        drops the covering cached scans.  A cached range therefore never
        outlives the maintenance that would change it; the headroom absorbs
        the remaining propagation asynchrony.
        """
        return max(self.servable_budget, 0.0)

    # ---------------------------------------------------------------- bypasses

    def session_allows(self, session: Optional[Session], namespace: str,
                       key: Key, cached_value) -> bool:
        """May a cached entity value be served to this session?

        False forces a cluster read, which re-runs the guarantee enforcement
        (primary re-read) the session axes require.  Sessions without
        guarantees always accept.
        """
        if session is None or not session.guarantee.any_enabled:
            return True
        return session.acceptable(namespace, key, cached_value, count=False)
