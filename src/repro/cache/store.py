"""Capacity-bounded cache store with LRU and TTL eviction.

The store holds two kinds of entries in one LRU order:

* **entity entries** — one :class:`~repro.storage.records.VersionedValue`
  (or a negative result) under its ``(namespace, key)``;
* **range entries** — the materialised rows of one bounded contiguous range
  read (a compiled query's index scan), remembered together with the
  :class:`~repro.storage.records.KeyRange` they cover so a point write can
  invalidate exactly the cached scans whose range contains the written key.

Every entry carries an absolute expiry time derived by the admission policy
from the governing staleness bound (see :mod:`repro.cache.policy`); expired
entries are treated as misses and reclaimed lazily.  Capacity is measured in
*rows* (a range entry costs as many units as it holds rows) so a handful of
wide scans cannot silently dwarf thousands of entity entries.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Optional, Tuple

from repro.storage.records import Key, KeyRange

EntryToken = Tuple[Hashable, ...]


@dataclass
class CacheStats:
    """Counters the hit-rate feature and the benchmarks report from."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    ttl_expirations: int = 0
    lru_evictions: int = 0
    invalidations: int = 0
    # Range lookups served by *containment* — a narrower scan answered from a
    # wider cached entry (a subset of ``hits``).
    containment_hits: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class CacheEntry:
    """One cached result plus the metadata its freshness contract needs."""

    token: EntryToken
    namespace: str
    value: Any
    inserted_at: float
    expires_at: float
    key: Optional[Key] = None
    key_range: Optional[KeyRange] = None
    cost: int = 1

    def expired(self, now: float) -> bool:
        return now >= self.expires_at

    def remaining_ttl(self, now: float) -> float:
        return max(self.expires_at - now, 0.0)


def entity_token(namespace: str, key: Key) -> EntryToken:
    """Stable store token for an entity entry."""
    return ("entity", namespace, key)


def range_token(namespace: str, start: Optional[Key], end: Optional[Key],
                limit: Optional[int], reverse: bool) -> EntryToken:
    """Stable store token for one bounded range read's parameters."""
    return ("range", namespace, start, end, limit, reverse)


class StalenessBudgetCache:
    """An LRU + TTL cache over entity and range-read results.

    Args:
        capacity: maximum total cost (rows) held; least-recently-used entries
            are evicted past it.  Entity entries cost 1, range entries cost
            ``max(1, len(rows))``.
    """

    # Containment lookups examine at most this many range entries per miss:
    # the scan is Python-loop work on the read hot path, so its worst case
    # must stay bounded even when a namespace accumulates thousands of
    # distinct cached scans.  Entries beyond the cap simply cannot serve by
    # containment (the exact-token path is unaffected).
    CONTAINMENT_SCAN_CAP = 128

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[EntryToken, CacheEntry]" = OrderedDict()
        # Token "sets" are insertion-ordered dicts, NOT sets: containment
        # picks the first covering entry, and set iteration order varies with
        # the interpreter's hash seed — which would let two invocations of
        # the same seeded run serve (and LRU-refresh) different entries,
        # breaking the sweep fabric's serial/parallel reproducibility.
        self._ranges_by_namespace: Dict[str, Dict[EntryToken, None]] = {}
        self._cost_total = 0
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def cost_total(self) -> int:
        """Current total cost (rows) of everything held."""
        return self._cost_total

    # ------------------------------------------------------------------ lookups

    def get(self, token: EntryToken, now: float) -> Optional[CacheEntry]:
        """Return the live entry under ``token``, or None (counted as a miss).

        A hit refreshes the entry's LRU position; an expired entry is
        reclaimed and reported as a miss.
        """
        entry = self._entries.get(token)
        if entry is None:
            self.stats.misses += 1
            return None
        if entry.expired(now):
            self._remove(token)
            self.stats.ttl_expirations += 1
            self.stats.misses += 1
            return None
        self._entries.move_to_end(token)
        self.stats.hits += 1
        return entry

    def peek(self, token: EntryToken) -> Optional[CacheEntry]:
        """The entry under ``token`` regardless of expiry, without counting
        a lookup or touching LRU order (tests and introspection)."""
        return self._entries.get(token)

    def get_range(self, namespace: str, start: Optional[Key], end: Optional[Key],
                  limit: Optional[int], reverse: bool, now: float) -> Optional[list]:
        """Rows for one bounded range read, exact-token or by containment.

        The exact parameter token is tried first (the common repeated-query
        case).  On an exact miss, a *wider* cached entry whose range contains
        the requested one can serve it — the paginated-query pattern, where a
        ``limit 20`` scan should hit on the rows a ``limit 50`` scan of the
        same prefix already fetched — provided the wider entry is **complete**
        (it was not truncated by its own limit, so its rows are the full
        contents of its range; a truncated entry's coverage ends at an unknown
        key and serving from it could fabricate a gap).  The derived answer
        filters the wider entry's rows to the requested bounds, reorients if
        the scan directions differ, and applies the requested limit.

        One hit or one miss is counted per call; a containment serve also
        refreshes the serving entry's LRU position and counts in
        ``stats.containment_hits``.  When several cached entries could serve,
        the oldest-admitted one wins (insertion order — deterministic across
        interpreter invocations, unlike set order); the scan examines at most
        ``CONTAINMENT_SCAN_CAP`` entries per miss to bound its hot-path cost.
        """
        entry = self._entries.get(range_token(namespace, start, end, limit, reverse))
        if entry is not None:
            if entry.expired(now):
                self._remove(entry.token)
                self.stats.ttl_expirations += 1
            else:
                self._entries.move_to_end(entry.token)
                self.stats.hits += 1
                return list(entry.value)
        served = self._containment_lookup(namespace, start, end, limit, reverse, now)
        if served is not None:
            self.stats.hits += 1
            self.stats.containment_hits += 1
            return served
        self.stats.misses += 1
        return None

    def _containment_lookup(self, namespace: str, start: Optional[Key],
                            end: Optional[Key], limit: Optional[int],
                            reverse: bool, now: float) -> Optional[list]:
        tokens = self._ranges_by_namespace.get(namespace)
        if not tokens:
            return None
        doomed = []
        served: Optional[list] = None
        examined = 0
        for rtoken in tokens:
            if examined >= self.CONTAINMENT_SCAN_CAP:
                break
            examined += 1
            entry = self._entries.get(rtoken)
            if entry is None or entry.key_range is None:
                continue
            if entry.expired(now):
                doomed.append(rtoken)
                continue
            entry_limit = rtoken[4]
            complete = entry_limit is None or len(entry.value) < entry_limit
            if not complete:
                continue
            covers_low = entry.key_range.start is None or (
                start is not None and entry.key_range.start <= start)
            covers_high = entry.key_range.end is None or (
                end is not None and end <= entry.key_range.end)
            if not (covers_low and covers_high):
                continue
            rows = [(key, value) for key, value in entry.value
                    if (start is None or key >= start)
                    and (end is None or key < end)]
            if bool(rtoken[5]) != reverse:
                rows.reverse()
            if limit is not None:
                rows = rows[:limit]
            self._entries.move_to_end(rtoken)
            served = rows
            break
        for rtoken in doomed:
            self._remove(rtoken)
            self.stats.ttl_expirations += 1
        return served

    # --------------------------------------------------------------- admission

    def put_entity(self, namespace: str, key: Key, value: Any,
                   now: float, ttl: float) -> Optional[CacheEntry]:
        """Admit one entity read result; returns the entry, or None when the
        derived TTL grants no servable window."""
        if ttl <= 0:
            return None
        entry = CacheEntry(
            token=entity_token(namespace, key),
            namespace=namespace,
            value=value,
            inserted_at=now,
            expires_at=now + ttl,
            key=key,
            cost=1,
        )
        self._insert(entry)
        return entry

    def put_range(self, namespace: str, start: Optional[Key], end: Optional[Key],
                  limit: Optional[int], reverse: bool, rows: Any,
                  now: float, ttl: float) -> Optional[CacheEntry]:
        """Admit one bounded range read's rows under its exact parameters."""
        if ttl <= 0:
            return None
        cost = max(1, len(rows))
        if cost > self.capacity:
            return None  # a scan wider than the whole cache is not admissible
        entry = CacheEntry(
            token=range_token(namespace, start, end, limit, reverse),
            namespace=namespace,
            value=rows,
            inserted_at=now,
            expires_at=now + ttl,
            key_range=KeyRange(namespace=namespace, start=start, end=end),
            cost=cost,
        )
        self._insert(entry)
        return entry

    def _insert(self, entry: CacheEntry) -> None:
        if entry.token in self._entries:
            self._remove(entry.token)
        self._entries[entry.token] = entry
        self._cost_total += entry.cost
        if entry.key_range is not None:
            self._ranges_by_namespace.setdefault(entry.namespace, {})[entry.token] = None
        self.stats.insertions += 1
        while self._cost_total > self.capacity and self._entries:
            victim_token = next(iter(self._entries))
            if victim_token == entry.token and len(self._entries) == 1:
                break  # never evict the sole, just-inserted entry
            self._remove(victim_token)
            self.stats.lru_evictions += 1

    # ------------------------------------------------------------- invalidation

    def invalidate_key(self, namespace: str, key: Key) -> int:
        """Drop the entity entry for ``key`` and every cached range read in
        the same namespace whose range contains ``key``.

        This is the write-through hook: called for the written key on entity
        writes, and for the written *index* key when the asynchronous updater
        applies index maintenance (so cached query scans covering the changed
        index region are dropped too).  Returns the number of entries dropped.
        """
        dropped = 0
        token = entity_token(namespace, key)
        if token in self._entries:
            self._remove(token)
            dropped += 1
        for rtoken in list(self._ranges_by_namespace.get(namespace, ())):
            entry = self._entries.get(rtoken)
            if entry is None or entry.key_range is None:
                continue
            if entry.key_range.contains(key):
                self._remove(rtoken)
                dropped += 1
        self.stats.invalidations += dropped
        return dropped

    def invalidate_namespace(self, namespace: str) -> int:
        """Drop every entry (entity and range) in one namespace."""
        doomed = [token for token, entry in self._entries.items()
                  if entry.namespace == namespace]
        for token in doomed:
            self._remove(token)
        self.stats.invalidations += len(doomed)
        return len(doomed)

    def clear(self) -> None:
        """Drop everything (stats are preserved)."""
        self._entries.clear()
        self._ranges_by_namespace.clear()
        self._cost_total = 0

    # ----------------------------------------------------------------- internal

    def _remove(self, token: EntryToken) -> None:
        entry = self._entries.pop(token, None)
        if entry is None:
            return
        self._cost_total -= entry.cost
        if entry.key_range is not None:
            tokens = self._ranges_by_namespace.get(entry.namespace)
            if tokens is not None:
                tokens.pop(token, None)
                if not tokens:
                    del self._ranges_by_namespace[entry.namespace]
