"""The cache tier facade the engine embeds (``Scads(cache=...)``).

:class:`CacheTier` bundles the store, the admission policy, and the
write-through invalidator, and owns the *latency model* of a cache hit: a hit
is served from the front tier's memory without touching the cluster, so it
samples a sub-millisecond log-normal service time from
:mod:`repro.sim.latency` instead of paying network hops plus node service
time.  The engine records that latency under the same read SLA as cluster
reads — the cache is part of the serving system, not an accounting trick.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.cache.invalidation import WriteThroughInvalidator
from repro.cache.policy import AdmissionPolicy
from repro.cache.store import CacheEntry, StalenessBudgetCache, entity_token
from repro.core.consistency.sessions import Session
from repro.core.consistency.spec import ConsistencySpec
from repro.sim.latency import LogNormalLatency
from repro.sim.simulator import Simulator
from repro.storage.records import Key


@dataclass(frozen=True)
class CacheConfig:
    """Knobs for the staleness-budget cache tier.

    Args:
        capacity: maximum rows held (LRU evicts past it).
        propagation_headroom: seconds subtracted from the staleness bound when
            deriving TTLs; None derives it from the bound (see
            :class:`~repro.cache.policy.AdmissionPolicy`).
        hit_latency_median / hit_latency_sigma: log-normal service time of a
            cache hit — a front-tier memory lookup, orders of magnitude below
            a routed cluster read.
        cache_ranges: also cache compiled-query range reads (entity gets are
            always eligible).
    """

    capacity: int = 4096
    propagation_headroom: Optional[float] = None
    hit_latency_median: float = 0.0005
    hit_latency_sigma: float = 0.3
    cache_ranges: bool = True

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {self.capacity}")
        if self.hit_latency_median <= 0:
            raise ValueError("hit_latency_median must be positive")


class CacheTier:
    """Read-through cache in front of the router, bound to one engine's spec."""

    def __init__(self, config: CacheConfig, spec: ConsistencySpec,
                 simulator: Simulator) -> None:
        self.config = config
        self.store = StalenessBudgetCache(capacity=config.capacity)
        self.policy = AdmissionPolicy(
            spec, propagation_headroom=config.propagation_headroom
        )
        self.invalidator = WriteThroughInvalidator(self.store)
        self._sim = simulator
        self._hit_latency = LogNormalLatency(
            median=config.hit_latency_median, sigma=config.hit_latency_sigma
        )
        self._rng = simulator.random.get("cache:hit-latency")
        self.session_bypasses = 0

    # ------------------------------------------------------------------ serving

    def sample_hit_latency(self) -> float:
        """Service time of one cache hit (no cluster involvement)."""
        return self._hit_latency.sample(self._rng)

    def lookup_entity(self, namespace: str, key: Key,
                      session: Optional[Session]) -> Optional[CacheEntry]:
        """The live cached entry for an entity get, or None on miss/bypass.

        A value the caller's session guarantees reject is a *bypass*: the
        entry stays cached for other sessions, but this read must go to the
        cluster (whose read path enforces the guarantee).
        """
        if not self.policy.cacheable():
            return None
        entry = self.store.get(entity_token(namespace, key), self._sim.now)
        if entry is None:
            return None
        if not self.policy.session_allows(session, namespace, key, entry.value):
            self.session_bypasses += 1
            # The lookup was counted as a hit, but this read goes to the
            # cluster; reclassify so the hit-rate feature the provisioning
            # loop sees reflects cluster-absorbed reads only.
            self.store.stats.hits -= 1
            self.store.stats.misses += 1
            return None
        return entry

    def admit_entity(self, namespace: str, key: Key, value: Any,
                     known_staleness: Optional[float]) -> Optional[CacheEntry]:
        """Read-through fill after a cluster read of known freshness."""
        if not self.policy.cacheable():
            return None
        ttl = self.policy.entity_ttl(known_staleness)
        return self.store.put_entity(namespace, key, value, self._sim.now, ttl)

    def lookup_range(self, namespace: str, start: Optional[Key],
                     end: Optional[Key], limit: Optional[int],
                     reverse: bool) -> Optional[List[Tuple[Key, Any]]]:
        """Cached rows for one bounded range read, or None on miss.

        Served under the exact scan parameters when possible, otherwise by
        *containment* from a wider complete cached scan (see
        :meth:`~repro.cache.store.StalenessBudgetCache.get_range`) — the
        narrower answer inherits the wider entry's TTL, which is at least as
        conservative as the one a fresh fill would get.
        """
        if not self.config.cache_ranges or not self.policy.cacheable():
            return None
        return self.store.get_range(namespace, start, end, limit, reverse,
                                    self._sim.now)

    def admits_ranges(self) -> bool:
        """Would :meth:`admit_range` accept a fill right now?

        The engine consults this *before* issuing the scan: rows destined for
        the cache must be read from the primary, because apply-time index
        invalidation has already fired for writes a lagging replica may still
        be missing — caching a replica's view could keep superseded rows
        alive for a full TTL with nothing left to evict them.
        """
        return self.config.cache_ranges and self.policy.cacheable()

    def admit_range(self, namespace: str, start: Optional[Key],
                    end: Optional[Key], limit: Optional[int], reverse: bool,
                    rows: List[Tuple[Key, Any]]) -> Optional[CacheEntry]:
        """Read-through fill of one compiled-query range read.

        The rows must come from a primary read (see :meth:`admits_ranges`);
        the TTL derivation in :meth:`AdmissionPolicy.range_ttl` relies on it.
        """
        if not self.admits_ranges():
            return None
        return self.store.put_range(
            namespace, start, end, limit, reverse, list(rows),
            self._sim.now, self.policy.range_ttl(),
        )

    # ------------------------------------------------------------- invalidation

    def note_entity_write(self, namespace: str, key: Key) -> None:
        self.invalidator.note_entity_write(namespace, key)

    def note_index_write(self, namespace: str, key: Key) -> None:
        self.invalidator.note_index_write(namespace, key)

    # ---------------------------------------------------------------- reporting

    def hit_counts(self) -> Tuple[int, int]:
        """Cumulative (hits, misses) — the provisioning monitor diffs these
        per window to compute the cache-hit-rate feature."""
        return self.store.stats.hits, self.store.stats.misses

    def hit_rate(self) -> float:
        return self.store.stats.hit_rate()
