"""Write-through invalidation: the cache's view of the engine's write paths.

Two kinds of writes can make a cached answer wrong, and both are wired here:

* **entity writes** (``Scads.put`` / ``Scads.delete``) — drop the written
  key's entity entry immediately, plus any cached *entity-namespace* range
  read covering the key;
* **index writes** — when the asynchronous index updater applies maintenance
  it rewrites index/reverse-index entries through the engine's storage
  adapter; each such write drops the cached query scans whose
  :class:`~repro.storage.records.KeyRange` contains the written index key.

The split matters for the staleness contract: a cached query scan keeps
serving the *pre-write* rows between the base write and the moment its index
maintenance is applied — which is precisely the asynchrony the declared
staleness bound already permits (the updater's deadline is that bound), and
the TTL derived in :mod:`repro.cache.policy` caps the exposure independently.
"""

from __future__ import annotations

from repro.cache.store import StalenessBudgetCache
from repro.storage.records import Key


class WriteThroughInvalidator:
    """Routes write notifications from the engine into cache invalidations."""

    def __init__(self, store: StalenessBudgetCache) -> None:
        self._store = store
        self.entity_invalidations = 0
        self.index_invalidations = 0

    def note_entity_write(self, namespace: str, key: Key) -> int:
        """An entity row was written or deleted; drop everything it could
        have served: its entity entry and covering cached ranges."""
        dropped = self._store.invalidate_key(namespace, key)
        self.entity_invalidations += dropped
        return dropped

    def note_index_write(self, namespace: str, key: Key) -> int:
        """An index (or reverse-index) entry was applied by the asynchronous
        updater; drop the cached scans whose range covers it."""
        dropped = self._store.invalidate_key(namespace, key)
        self.index_invalidations += dropped
        return dropped
