"""Staleness-budget cache tier.

A front-tier read-through cache whose freshness contract is *derived from the
declarative consistency specification*: an application that declared "stale
data gone within 10 seconds" has explicitly granted the system a 10-second
window in which a cached answer is just as correct as a cluster read.  The
cache tier exploits that slack — entity gets and compiled-query range reads
that hit the cache bypass the storage cluster entirely — while write-through
invalidation and TTLs derived from the staleness bound guarantee that no read
is ever served beyond its declared budget.

Pieces:

* :mod:`repro.cache.store` — capacity-bounded LRU + TTL store;
* :mod:`repro.cache.policy` — admission/bypass policy derived from the
  :class:`~repro.core.consistency.spec.ConsistencySpec` and the caller's
  session guarantees;
* :mod:`repro.cache.invalidation` — write-through invalidation wired into the
  engine's entity write path and the asynchronous index updater;
* :mod:`repro.cache.tier` — the :class:`~repro.cache.tier.CacheTier` facade
  the engine embeds (``Scads(cache=...)``).
"""

from repro.cache.invalidation import WriteThroughInvalidator
from repro.cache.policy import AdmissionPolicy
from repro.cache.store import CacheEntry, CacheStats, StalenessBudgetCache
from repro.cache.tier import CacheConfig, CacheTier

__all__ = [
    "AdmissionPolicy",
    "CacheConfig",
    "CacheEntry",
    "CacheStats",
    "CacheTier",
    "StalenessBudgetCache",
    "WriteThroughInvalidator",
]
