"""Experiment harness shared by the benchmark suite and the examples.

The functions here wire a complete closed-loop run: build an engine, declare
the social-network application, bulk-load a synthetic graph, drive it with a
trace through the load generator, and report SLA attainment, cost, and
scaling behaviour.  Every benchmark in ``benchmarks/`` is a thin wrapper
around these helpers so that the numbers in EXPERIMENTS.md are produced by
exactly one code path.
"""

from repro.experiments.harness import (
    ClosedLoopResult,
    SCALED_DOWN_INSTANCE,
    build_engine_and_app,
    run_closed_loop,
)

__all__ = [
    "ClosedLoopResult",
    "SCALED_DOWN_INSTANCE",
    "build_engine_and_app",
    "run_closed_loop",
]
