"""Shared result-table rendering.

One fixed-width formatter for everything that prints experiment tables —
the benchmark suite's ``table_printer`` fixture and the sweep runner — so
the layout cannot silently diverge between surfaces.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def print_table(title: str, header: Sequence[str],
                rows: Iterable[Sequence[object]]) -> None:
    """Print one experiment's result table in a fixed-width layout."""
    rows = [list(map(str, row)) for row in rows]
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(header))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
