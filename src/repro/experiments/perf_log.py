"""``BENCH_PERF.json`` access with schema validation.

The perf trajectory is append-only measurement history: every entry a future
PR reads to judge a speedup claim.  A malformed recording (a typoed section
name, a string where a number belongs, a forgotten field) used to be
discovered only when some later comparison crashed or — worse — silently
skipped the entry.  This module makes the schema explicit and *fails fast*:
entries are validated both when appended and when loaded, so a bad recording
dies in the run that produced it.

Schema: a JSON list of entries, oldest first.  Each entry is an object with
a non-empty ``label``, an optional free-text ``notes`` string (hardware
caveats and the like), and at least one known measurement section:

* ``scenario`` — the frozen single-run closed-loop scenario;
* ``event_queue`` — the bare discrete-event kernel microbench;
* ``sweep`` — the suite-level serial-vs-parallel sweep comparison;
* ``telemetry`` — observability-on vs -off overhead on the scenario.

Unknown entry keys, unknown section fields, and missing section fields are
all rejected.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List

# field name -> required type family: "int" (exact integers), "number"
# (int or float), "bool".
SECTION_FIELDS: Dict[str, Dict[str, str]] = {
    "scenario": {
        "ops": "int",
        "events": "int",
        "wall_seconds": "number",
        "ops_per_wall_sec": "number",
    },
    "event_queue": {
        "events": "int",
        "wall_seconds": "number",
        "events_per_wall_sec": "number",
    },
    "sweep": {
        "runs": "int",
        "workers": "int",
        "cpus": "int",
        "per_run_sim_seconds": "number",
        "serial_wall_seconds": "number",
        "parallel_wall_seconds": "number",
        "speedup": "number",
        "results_identical": "bool",
    },
    "telemetry": {
        "off_wall_seconds": "number",
        "on_wall_seconds": "number",
        "on_off_ratio": "number",
        "traces": "int",
        "results_identical": "bool",
    },
    # E15's mixed-fleet economics (bench_e15_spot_fleet): dollars for the
    # spot-surge fleet vs the all-on-demand arm of the same scenario, and
    # the interruption-handling counters behind the savings.
    "spot_fleet": {
        "mixed_dollars": "number",
        "on_demand_dollars": "number",
        "spot_dollars": "number",
        "savings_fraction": "number",
        "interruptions": "int",
        "hibernated": "int",
        "fallbacks": "int",
    },
    # E16's noisy-neighbor economics (bench_e16_noisy_neighbor): SLA
    # recovery time and dollars for the placement-aware controller vs the
    # capacity-only ablation on the same contention episode, and the
    # diagnosis/remediation counters behind the gap.
    "contention": {
        "placement_dollars": "number",
        "capacity_dollars": "number",
        "placement_recovery_seconds": "number",
        "capacity_recovery_seconds": "number",
        "contention_windows": "int",
        "evacuations": "int",
        "capacity_scale_ups": "int",
    },
}

ENTRY_KEYS = {"label", "notes", *SECTION_FIELDS}


class PerfLogSchemaError(ValueError):
    """A BENCH_PERF.json entry does not match the recording schema."""


def _check_field(section: str, name: str, value: Any, kind: str) -> None:
    if kind == "bool":
        if not isinstance(value, bool):
            raise PerfLogSchemaError(
                f"{section}.{name} must be a boolean, got {value!r}")
        return
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise PerfLogSchemaError(
            f"{section}.{name} must be a number, got {value!r}")
    if kind == "int" and not isinstance(value, int):
        raise PerfLogSchemaError(
            f"{section}.{name} must be an integer, got {value!r}")
    if value < 0:
        raise PerfLogSchemaError(
            f"{section}.{name} must be non-negative, got {value!r}")


def validate_entry(entry: Any) -> Dict[str, Any]:
    """Check one trajectory entry against the schema; returns it unchanged."""
    if not isinstance(entry, dict):
        raise PerfLogSchemaError(f"entry must be an object, got {type(entry).__name__}")
    label = entry.get("label")
    if not isinstance(label, str) or not label:
        raise PerfLogSchemaError(f"entry needs a non-empty string label, got {label!r}")
    if "notes" in entry and not isinstance(entry["notes"], str):
        raise PerfLogSchemaError("notes must be a string when present")
    unknown = set(entry) - ENTRY_KEYS
    if unknown:
        raise PerfLogSchemaError(
            f"entry {label!r} has unknown keys {sorted(unknown)} "
            f"(known: {sorted(ENTRY_KEYS)})")
    sections = [name for name in SECTION_FIELDS if name in entry]
    if not sections:
        raise PerfLogSchemaError(
            f"entry {label!r} records no measurement section "
            f"(expected one of {sorted(SECTION_FIELDS)})")
    for name in sections:
        section = entry[name]
        if not isinstance(section, dict):
            raise PerfLogSchemaError(f"{label!r}.{name} must be an object")
        fields = SECTION_FIELDS[name]
        missing = set(fields) - set(section)
        if missing:
            raise PerfLogSchemaError(
                f"{label!r}.{name} is missing fields {sorted(missing)}")
        extra = set(section) - set(fields)
        if extra:
            raise PerfLogSchemaError(
                f"{label!r}.{name} has unknown fields {sorted(extra)}")
        for field_name, kind in fields.items():
            _check_field(name, field_name, section[field_name], kind)
    return entry


def load_trajectory(path: str, validate: bool = True) -> List[Dict[str, Any]]:
    """Load the trajectory list ([] when the file does not exist yet)."""
    if not os.path.exists(path):
        return []
    with open(path) as fh:
        trajectory = json.load(fh)
    if not isinstance(trajectory, list):
        raise PerfLogSchemaError("BENCH_PERF.json must hold a JSON list of entries")
    if validate:
        for entry in trajectory:
            validate_entry(entry)
    return trajectory


def append_entry(path: str, entry: Dict[str, Any]) -> None:
    """Validate ``entry`` and append it to the trajectory file."""
    validate_entry(entry)
    trajectory = load_trajectory(path)
    trajectory.append(entry)
    with open(path, "w") as fh:
        json.dump(trajectory, fh, indent=2)
        fh.write("\n")
