"""Closed-loop experiment harness.

Simulated experiments run at a reduced absolute scale so that a full
benchmark suite finishes in minutes on a laptop: the harness uses a
scaled-down instance type (low per-node capacity) and request rates in the
tens-to-hundreds of operations per second.  Because every claim the paper
makes is about *relative* behaviour — latency percentiles vs. load, cost of
autoscaled vs. static provisioning, who wins and by how much — the scale-down
preserves the phenomena while keeping wall-clock time reasonable.  The knobs
are all exposed so a larger run only needs different arguments.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.apps.social_network import SocialNetworkApp
from repro.cloud.instances import InstanceType
from repro.core.consistency.spec import (
    ConsistencySpec,
    PerformanceSLA,
    ReadConsistency,
    SessionGuarantee,
)
from repro.core.engine import Scads
from repro.metrics.cost import CostReport
from repro.metrics.percentiles import PercentileEstimator
from repro.metrics.sla import SLAReport
from repro.storage.failure import FailureInjector
from repro.workloads.generator import LoadGenerator
from repro.workloads.opmix import (
    UNIFORM_READ_MIX,
    WRITE_HEAVY_MIX,
    CloudStoneMix,
    )
from repro.workloads.social_graph import SocialGraph
from repro.workloads.traces import LoadTrace

# A deliberately small machine class: 60 storage ops/sec per node and a
# one-minute boot delay.  Low capacity means interesting scaling dynamics
# appear at simulated request rates the test suite can afford to run.
SCALED_DOWN_INSTANCE = InstanceType(
    name="sim.small",
    hourly_cost=0.10,
    boot_delay=60.0,
    capacity_ops_per_sec=60.0,
)


def smoke_mode() -> bool:
    """True when ``BENCH_SMOKE=1``: benchmarks run shortened workloads.

    ``make bench-smoke`` sets this to sweep every ``bench_*.py`` quickly as a
    crash/regression check.  The paper's *relative* claims (who wins and by
    how much) need the full durations to manifest, so benchmarks skip their
    economics assertions in smoke mode — the run still exercises the whole
    closed loop end to end.
    """
    return os.environ.get("BENCH_SMOKE", "") not in ("", "0")


def smoke_scaled(full: float, smoke: float) -> float:
    """``full`` normally, ``smoke`` under ``BENCH_SMOKE=1`` (durations, rates)."""
    return smoke if smoke_mode() else full


def _result_summary(result) -> Dict[str, object]:
    """Flat dictionary used by the benchmark harnesses' printed tables.

    Shared by :class:`ClosedLoopResult` (in-process, carries the live engine)
    and :class:`ClosedLoopSummary` (the picklable subset a sweep worker ships
    back), so both render identically.
    """
    return {
        "duration_s": round(result.duration, 1),
        "operations": result.operations,
        "read_p_latency_ms": round(result.read_report.observed_percentile_latency * 1000, 2),
        "read_sla_met": result.read_report.satisfied,
        "write_p_latency_ms": round(result.write_report.observed_percentile_latency * 1000, 2),
        "peak_nodes": result.peak_nodes,
        "final_nodes": result.final_nodes,
        "scale_ups": result.scale_ups,
        "scale_downs": result.scale_downs,
        "dollars": round(result.cost.dollars, 3),
        "machine_hours": round(result.cost.machine_hours, 1),
        "max_replication_lag_s": round(result.max_replication_lag, 3),
        "deadline_miss_rate": round(result.deadline_miss_rate, 4),
    }


@dataclass(slots=True)
class ClosedLoopSummary:
    """The cross-process-portable summary of one closed-loop run.

    Everything here is plain data (dataclasses, numpy arrays, dicts of
    primitives) so a sweep worker can pickle it back to the parent process —
    no engine, app, or simulator references.  The latency estimators carry
    the run's full sample distributions, which is what makes grid cells and
    replicates *mergeable* (exact combined percentiles via
    :meth:`~repro.metrics.percentiles.PercentileEstimator.merge`) without
    shipping or re-sorting raw sample streams per query.
    """

    duration: float
    operations: int
    read_report: SLAReport
    write_report: SLAReport
    cost: CostReport
    peak_nodes: int
    final_nodes: int
    scale_ups: int
    scale_downs: int
    max_replication_lag: float
    deadline_miss_rate: float
    operation_counts: Dict[str, int]
    read_latency: Optional[PercentileEstimator]
    write_latency: Optional[PercentileEstimator]
    cache_hit_rate: float = 0.0
    # Reads served stale under arbitration (staleness bound unverifiable).
    # The validation grid's staleness check gates on this staying 0 in
    # fault-free cells.
    stale_reads: int = 0
    # Fixed-clock windowed SLA compliance series (see
    # metrics.sla.WindowedComplianceTracker) — the substrate the grid's
    # declared SLA policy (violation budget + re-attainment) gates on.
    read_windows: list = field(default_factory=list)
    write_windows: list = field(default_factory=list)
    # Observability payloads (populated only when the run's engine had
    # ``telemetry=`` on; all picklable and exactly mergeable, see repro.obs).
    telemetry: Optional[object] = None  # obs.Telemetry
    traces: Optional[list] = None  # List[obs.TraceRecord]
    decision_timeline: Optional[object] = None  # obs.DecisionTimeline
    # Acknowledged writes no alive owner still held at run end (None when the
    # engine's write audit was off — see Scads ``write_audit``).  The
    # interruption-storm grid scenario gates on this staying 0.
    lost_acked_writes: Optional[int] = None
    # Dollars split by purchase option ({"on_demand": ..., "spot": ...}).
    cost_by_purchase_option: Dict[str, float] = field(default_factory=dict)
    # Interruption drain outcomes ({"hibernated": 3, "aborted": 1, ...});
    # empty without a spot fleet.
    interruption_outcomes: Dict[str, int] = field(default_factory=dict)

    def summary(self) -> Dict[str, object]:
        return _result_summary(self)


@dataclass(slots=True)
class ClosedLoopResult:
    """Everything a benchmark needs to report about one closed-loop run."""

    engine: Scads
    app: SocialNetworkApp
    duration: float
    operations: int
    read_report: SLAReport
    write_report: SLAReport
    cost: CostReport
    peak_nodes: int
    final_nodes: int
    scale_ups: int
    scale_downs: int
    max_replication_lag: float
    deadline_miss_rate: float

    def summary(self) -> Dict[str, object]:
        """Flat dictionary used by the benchmark harnesses' printed tables."""
        return _result_summary(self)

    def portable(self) -> ClosedLoopSummary:
        """Extract the picklable summary (drops the engine/app references)."""

        def estimator(op_type: str) -> Optional[PercentileEstimator]:
            recorder = self.engine.latencies
            return (recorder.all_time(op_type)
                    if op_type in recorder.op_types() else None)

        return ClosedLoopSummary(
            duration=self.duration,
            operations=self.operations,
            read_report=self.read_report,
            write_report=self.write_report,
            cost=self.cost,
            peak_nodes=self.peak_nodes,
            final_nodes=self.final_nodes,
            scale_ups=self.scale_ups,
            scale_downs=self.scale_downs,
            max_replication_lag=self.max_replication_lag,
            deadline_miss_rate=self.deadline_miss_rate,
            operation_counts=dict(self.engine.cumulative_operation_counts()),
            read_latency=estimator("read"),
            write_latency=estimator("write"),
            cache_hit_rate=self.engine.cache_hit_rate(),
            stale_reads=self.engine.stale_read_count(),
            read_windows=self.engine.sla_compliance_windows("read"),
            write_windows=self.engine.sla_compliance_windows("write"),
            telemetry=self.engine.collect_telemetry(),
            traces=self.engine.traces() if self.engine.tracer is not None else None,
            decision_timeline=self.engine.timeline,
            lost_acked_writes=self.engine.lost_write_count(),
            cost_by_purchase_option=self.engine.pool.cost_by_purchase_option(),
            interruption_outcomes=_interruption_outcomes(self.engine),
        )


def _interruption_outcomes(engine: Scads) -> Dict[str, int]:
    """Histogram of drain outcomes across the run's interruption notices."""
    if engine.spot_fleet is None:
        return {}
    outcomes: Dict[str, int] = {}
    for record in engine.spot_fleet.records():
        outcomes[record.outcome] = outcomes.get(record.outcome, 0) + 1
    return outcomes


def default_spec(
    latency: float = 0.150,
    percentile: float = 99.0,
    staleness_bound: float = 120.0,
    read_your_writes: bool = False,
) -> ConsistencySpec:
    """The consistency spec the harness uses unless an experiment overrides it."""
    return ConsistencySpec(
        performance=PerformanceSLA(percentile=percentile, latency=latency),
        read=ReadConsistency(staleness_bound=staleness_bound),
        session=SessionGuarantee(read_your_writes=read_your_writes),
    )


def build_engine_and_app(
    seed: int = 0,
    n_users: int = 200,
    friend_cap: int = 20,
    mean_friends: float = 4.0,
    spec: Optional[ConsistencySpec] = None,
    autoscale: bool = True,
    predictive_scaling: bool = True,
    initial_groups: int = 1,
    control_interval: float = 30.0,
    instance_type: InstanceType = SCALED_DOWN_INSTANCE,
    register_friends_of_friends: bool = False,
    updates_per_second_per_node: float = 100.0,
    fifo_updates: bool = False,
    engine_kwargs: Optional[Dict[str, object]] = None,
) -> Tuple[Scads, SocialNetworkApp, SocialGraph]:
    """Build an engine + social app and bulk-load a synthetic graph.

    ``engine_kwargs`` are forwarded verbatim to :class:`Scads` — this is how
    declarative sweep specs reach knobs the harness does not name explicitly
    (``cache=...``, ``repartition=...``, ``partitioner_kind=...``).
    """
    engine = Scads(
        seed=seed,
        consistency=spec or default_spec(),
        instance_type=instance_type,
        initial_groups=initial_groups,
        autoscale=autoscale,
        predictive_scaling=predictive_scaling,
        control_interval=control_interval,
        updates_per_second_per_node=updates_per_second_per_node,
        fifo_updates=fifo_updates,
        **(engine_kwargs or {}),
    )
    app = SocialNetworkApp(
        engine,
        friend_cap=friend_cap,
        page_size=10,
        register_friends_of_friends=register_friends_of_friends,
    )
    graph = SocialGraph(
        n_users,
        np.random.default_rng(seed),
        max_friends=friend_cap,
        mean_friends=mean_friends,
    )
    app.load_graph(graph)
    return engine, app, graph


def build_mix(kind: str, graph: SocialGraph,
              rng: np.random.Generator) -> CloudStoneMix:
    """The registered operation mixes, by name.

    ``cloudstone`` is the default interactive mix, ``write_heavy`` the
    Halloween-style upload mix, and ``uniform_read`` the cache-hostile
    read-only mix with *uniform* user popularity (no skew for a front tier
    to exploit).  RNG consumption is identical across kinds up to the first
    draw, so swapping the mix never perturbs other streams.
    """
    if kind == "uniform_read":
        return CloudStoneMix(graph, rng, mix=UNIFORM_READ_MIX, zipf_theta=0.0)
    mix = CloudStoneMix(graph, rng)
    if kind == "write_heavy":
        mix.set_mix(WRITE_HEAVY_MIX)
    elif kind != "cloudstone":
        raise ValueError(
            f"unknown mix kind {kind!r} "
            "(registered: cloudstone, write_heavy, uniform_read)")
    return mix


def install_fault_plan(engine: Scads, plan: Sequence,
                       start_time: Optional[float] = None) -> FailureInjector:
    """Schedule a declarative fault plan against a running engine.

    ``plan`` items carry ``kind`` / ``at`` / ``duration`` / ``params`` (see
    :class:`repro.parallel.spec.FaultSpec`); ``at`` is relative to
    ``start_time`` (default: the engine's current simulated time, i.e. the
    moment the closed loop starts).  Two kinds are registered:

    * ``zone_outage`` — the ``zone_index``-th member of every replica group
      crashes simultaneously and recovers after ``duration`` (regional
      failover: read capacity drains, replicas fail over, primaries live);
    * ``crash_random`` — ``count`` random alive nodes crash for ``duration``;
    * ``interruption_storm`` — correlated spot revocations: every registered
      spot instance gets its two-minute notice at ``at`` and new spot
      launches are refused for ``duration`` (needs an engine built with
      ``spot=True``);
    * ``host_degradation`` — a noisy-neighbor episode: co-tenant load on one
      physical host inflates every colocated node's *service* times by
      ``intensity`` for ``duration`` (needs an engine built with
      ``contention=...``).
    """
    injector = FailureInjector(engine.cluster,
                               market=getattr(engine, "market", None),
                               contention=getattr(engine, "contention", None))
    offset = engine.now if start_time is None else start_time
    for fault in plan:
        params = dict(getattr(fault, "params", {}) or {})
        if fault.kind == "zone_outage":
            injector.zone_outage(at=offset + fault.at, duration=fault.duration,
                                 **params)
        elif fault.kind == "crash_random":
            injector.crash_random_nodes(count=int(params.pop("count", 1)),
                                        at=offset + fault.at,
                                        duration=fault.duration)
        elif fault.kind == "interruption_storm":
            injector.interruption_storm(at=offset + fault.at,
                                        duration=fault.duration)
        elif fault.kind == "host_degradation":
            injector.host_degradation(at=offset + fault.at,
                                      duration=fault.duration, **params)
        else:
            raise ValueError(
                f"unknown fault kind {fault.kind!r} "
                "(registered: zone_outage, crash_random, interruption_storm, "
                "host_degradation)")
    return injector


def run_closed_loop(
    trace: LoadTrace,
    duration: float,
    seed: int = 0,
    n_users: int = 200,
    friend_cap: int = 20,
    spec: Optional[ConsistencySpec] = None,
    autoscale: bool = True,
    predictive_scaling: bool = True,
    initial_groups: int = 1,
    control_interval: float = 30.0,
    sampling_fraction: float = 1.0,
    write_heavy: bool = False,
    instance_type: InstanceType = SCALED_DOWN_INSTANCE,
    fifo_updates: bool = False,
    engine_kwargs: Optional[Dict[str, object]] = None,
    mix_kind: Optional[str] = None,
    faults: Sequence = (),
) -> ClosedLoopResult:
    """Run one complete closed-loop experiment and collect its results.

    ``mix_kind`` names a registered operation mix (see :func:`build_mix`) and
    supersedes the older ``write_heavy`` flag when given; ``faults`` is a
    declarative fault plan installed via :func:`install_fault_plan` before
    the load starts.
    """
    engine, app, graph = build_engine_and_app(
        seed=seed,
        n_users=n_users,
        friend_cap=friend_cap,
        spec=spec,
        autoscale=autoscale,
        predictive_scaling=predictive_scaling,
        initial_groups=initial_groups,
        control_interval=control_interval,
        instance_type=instance_type,
        fifo_updates=fifo_updates,
        engine_kwargs=engine_kwargs,
    )
    engine.start()
    kind = mix_kind or ("write_heavy" if write_heavy else "cloudstone")
    mix = build_mix(kind, graph, engine.sim.random.get("workload-mix"))
    generator = LoadGenerator(
        engine.sim, trace, mix, app.execute, sampling_fraction=sampling_fraction
    )
    start_time = engine.now
    if faults:
        install_fault_plan(engine, faults, start_time=start_time)
    generator.start()
    engine.run_for(duration)
    generator.stop()

    node_series = engine.controller.series()
    peak_nodes = int(node_series.get("nodes").max()) if "nodes" in node_series \
        else engine.cluster.node_count()
    instance_series = engine.pool.count_series()
    mean_instances = (
        instance_series.integrate() / max(engine.now - start_time, 1.0)
        if len(instance_series) > 1 else float(engine.pool.active_count())
    )
    cost = CostReport(
        machine_hours=engine.pool.total_machine_hours(),
        dollars=engine.pool.total_cost(),
        requests_served=sum(engine.cumulative_operation_counts().values()),
        peak_instances=int(instance_series.max()) if len(instance_series) else 0,
        mean_instances=mean_instances,
    )
    updater_stats = engine.updater.stats()
    return ClosedLoopResult(
        engine=engine,
        app=app,
        duration=duration,
        operations=generator.stats.operations_issued,
        read_report=engine.sla_report("read"),
        write_report=engine.sla_report("write"),
        cost=cost,
        peak_nodes=peak_nodes,
        final_nodes=engine.cluster.node_count(),
        scale_ups=engine.controller.scale_up_count(),
        scale_downs=engine.controller.scale_down_count(),
        max_replication_lag=engine.cluster.replication.max_observed_lag(),
        deadline_miss_rate=updater_stats.miss_rate,
    )
