"""Simple time-series recording for experiment output.

Benchmarks record (time, value) series — server counts, request rates, window
percentiles — and print or summarise them the way the paper's figures do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np


@dataclass
class TimeSeries:
    """An append-only (timestamp, value) series."""

    name: str
    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def append(self, time: float, value: float) -> None:
        """Append one observation; timestamps must be non-decreasing."""
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"timestamps must be non-decreasing: {time} after {self.times[-1]}"
            )
        self.times.append(float(time))
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.times)

    def last(self) -> Tuple[float, float]:
        """The most recent (time, value) pair."""
        if not self.times:
            raise ValueError(f"time series {self.name!r} is empty")
        return self.times[-1], self.values[-1]

    def max(self) -> float:
        if not self.values:
            raise ValueError(f"time series {self.name!r} is empty")
        return float(np.max(self.values))

    def min(self) -> float:
        if not self.values:
            raise ValueError(f"time series {self.name!r} is empty")
        return float(np.min(self.values))

    def mean(self) -> float:
        if not self.values:
            raise ValueError(f"time series {self.name!r} is empty")
        return float(np.mean(self.values))

    def value_at(self, time: float) -> float:
        """Step-function lookup: the last value recorded at or before ``time``."""
        if not self.times:
            raise ValueError(f"time series {self.name!r} is empty")
        idx = int(np.searchsorted(self.times, time, side="right")) - 1
        if idx < 0:
            raise ValueError(f"no observation at or before time {time}")
        return self.values[idx]

    def integrate(self) -> float:
        """Time-weighted integral of the step function (e.g. machine-seconds)."""
        if len(self.times) < 2:
            return 0.0
        total = 0.0
        for i in range(len(self.times) - 1):
            total += self.values[i] * (self.times[i + 1] - self.times[i])
        return total

    def resample(self, interval: float) -> "TimeSeries":
        """Step-resample onto a regular grid with the given interval."""
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if not self.times:
            return TimeSeries(name=self.name)
        out = TimeSeries(name=self.name)
        t = self.times[0]
        while t <= self.times[-1]:
            out.append(t, self.value_at(t))
            t += interval
        return out


class TimeSeriesRecorder:
    """A named collection of time series sharing one clock."""

    def __init__(self) -> None:
        self._series: Dict[str, TimeSeries] = {}

    def record(self, name: str, time: float, value: float) -> None:
        """Append an observation to the named series (creating it on first use)."""
        if name not in self._series:
            self._series[name] = TimeSeries(name=name)
        self._series[name].append(time, value)

    def get(self, name: str) -> TimeSeries:
        """Return the named series; raises KeyError if it was never recorded."""
        return self._series[name]

    def names(self) -> List[str]:
        return sorted(self._series.keys())

    def __contains__(self, name: str) -> bool:
        return name in self._series
