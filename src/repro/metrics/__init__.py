"""Measurement substrate: latency percentiles, SLA attainment, time series.

Every experiment in ``benchmarks/`` reports through these classes so the
numbers in ``EXPERIMENTS.md`` are computed the same way everywhere.
"""

from repro.metrics.percentiles import LatencyRecorder, PercentileEstimator
from repro.metrics.sla import SLAReport, SLATracker
from repro.metrics.timeseries import TimeSeries, TimeSeriesRecorder
from repro.metrics.cost import CostReport

__all__ = [
    "PercentileEstimator",
    "LatencyRecorder",
    "SLATracker",
    "SLAReport",
    "TimeSeries",
    "TimeSeriesRecorder",
    "CostReport",
]
