"""Latency percentile estimation.

The SLAs in the paper are expressed over high percentiles (99.9th), so the
recorder keeps exact samples within a window rather than a lossy sketch; the
simulated request volumes make this affordable, and it removes sketch error
as a confound when we report SLA attainment.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np


class PercentileEstimator:
    """Collects samples and answers percentile queries over them."""

    def __init__(self) -> None:
        self._samples: List[float] = []
        self._sorted_cache: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self._samples)

    def add(self, value: float) -> None:
        """Record one sample (e.g. one request latency in seconds)."""
        if value < 0:
            raise ValueError(f"samples must be non-negative, got {value}")
        self._samples.append(float(value))
        self._sorted_cache = None

    def extend(self, values) -> None:
        """Record many samples at once."""
        for value in values:
            self.add(value)

    def percentile(self, p: float) -> float:
        """Return the ``p``-th percentile (0 < p <= 100) of recorded samples."""
        if not self._samples:
            raise ValueError("no samples recorded")
        if not 0.0 < p <= 100.0:
            raise ValueError(f"percentile must be in (0, 100], got {p}")
        if self._sorted_cache is None:
            self._sorted_cache = np.sort(np.asarray(self._samples))
        return float(np.percentile(self._sorted_cache, p))

    def mean(self) -> float:
        """Mean of recorded samples."""
        if not self._samples:
            raise ValueError("no samples recorded")
        return float(np.mean(self._samples))

    def max(self) -> float:
        """Maximum recorded sample."""
        if not self._samples:
            raise ValueError("no samples recorded")
        return float(np.max(self._samples))

    def fraction_below(self, threshold: float) -> float:
        """Fraction of samples strictly below ``threshold``.

        This is the quantity an SLA like "99.9 % of requests under 100 ms"
        asks about.
        """
        if not self._samples:
            raise ValueError("no samples recorded")
        arr = np.asarray(self._samples)
        return float(np.mean(arr < threshold))

    def reset(self) -> None:
        """Drop all recorded samples."""
        self._samples.clear()
        self._sorted_cache = None

    def snapshot(self) -> Dict[str, float]:
        """Common summary statistics in one dictionary."""
        if not self._samples:
            return {"count": 0}
        return {
            "count": float(len(self._samples)),
            "mean": self.mean(),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "p999": self.percentile(99.9),
            "max": self.max(),
        }


class LatencyRecorder:
    """Per-operation-type latency recording with windowing support.

    The provisioning loop trains its ML models on *recent* behaviour, so the
    recorder can be drained window-by-window while an all-time estimator keeps
    the experiment-level summary.
    """

    def __init__(self) -> None:
        self._all_time: Dict[str, PercentileEstimator] = {}
        self._window: Dict[str, PercentileEstimator] = {}

    def record(self, op_type: str, latency: float) -> None:
        """Record one latency for an operation type ('read', 'write', ...)."""
        for bucket in (self._all_time, self._window):
            if op_type not in bucket:
                bucket[op_type] = PercentileEstimator()
            bucket[op_type].add(latency)

    def op_types(self) -> List[str]:
        """Operation types seen so far."""
        return sorted(self._all_time.keys())

    def all_time(self, op_type: str) -> PercentileEstimator:
        """All-time estimator for an operation type."""
        if op_type not in self._all_time:
            raise KeyError(f"no latencies recorded for operation type {op_type!r}")
        return self._all_time[op_type]

    def window(self, op_type: str) -> PercentileEstimator:
        """Current-window estimator for an operation type."""
        if op_type not in self._window:
            raise KeyError(f"no latencies recorded for operation type {op_type!r}")
        return self._window[op_type]

    def window_count(self, op_type: str) -> int:
        """Number of samples in the current window for ``op_type`` (0 if none)."""
        est = self._window.get(op_type)
        return len(est) if est is not None else 0

    def roll_window(self) -> Dict[str, Dict[str, float]]:
        """Close the current window, returning its per-op summary, and start a new one."""
        summary = {op: est.snapshot() for op, est in self._window.items()}
        self._window = {}
        return summary

    def summary(self) -> Dict[str, Dict[str, float]]:
        """All-time per-operation summaries."""
        return {op: est.snapshot() for op, est in self._all_time.items()}
