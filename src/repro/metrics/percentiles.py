"""Latency percentile estimation.

The SLAs in the paper are expressed over high percentiles (99.9th), so the
recorder keeps exact samples within a window rather than a lossy sketch; the
simulated request volumes make this affordable, and it removes sketch error
as a confound when we report SLA attainment.

Storage is an *append buffer plus an incrementally merged sorted array*: new
samples land in a plain list (O(1) per request — the hot path), and the
first percentile query after a batch of appends merge-sorts only the new
samples into the cached sorted array (``searchsorted`` + one ``insert``
pass, O(history + new·log new)).  The all-time estimators in long
closed-loop runs are queried every control window; a full re-sort of the
entire history there is what used to make long runs quadratic.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

_EMPTY = np.empty(0)


class PercentileEstimator:
    """Collects samples and answers percentile queries over them."""

    __slots__ = ("_pending", "_sorted", "_sum", "_max")

    def __init__(self) -> None:
        self._pending: List[float] = []
        self._sorted: np.ndarray = _EMPTY
        self._sum = 0.0
        self._max = 0.0

    def __len__(self) -> int:
        return len(self._pending) + self._sorted.shape[0]

    def add(self, value: float) -> None:
        """Record one sample (e.g. one request latency in seconds)."""
        if value < 0:
            raise ValueError(f"samples must be non-negative, got {value}")
        value = float(value)
        self._pending.append(value)
        self._sum += value
        if value > self._max:
            self._max = value

    def extend(self, values) -> None:
        """Record many samples at once (vectorized validation and append)."""
        arr = np.asarray(values if isinstance(values, np.ndarray) else list(values),
                         dtype=float)
        if arr.size == 0:
            return
        if np.any(arr < 0):
            raise ValueError("samples must be non-negative")
        self._pending.extend(arr.tolist())
        self._sum += float(arr.sum())
        self._max = max(self._max, float(arr.max()))

    def _merged(self) -> np.ndarray:
        """The sorted sample array, merging any pending appends in.

        Pending samples are sorted on their own and merge-inserted at their
        ``searchsorted`` positions, so the cost is linear in the history
        rather than ``O(n log n)`` over it.
        """
        if self._pending:
            fresh = np.sort(np.asarray(self._pending))
            base = self._sorted
            if base.shape[0] == 0:
                self._sorted = fresh
            else:
                self._sorted = np.insert(base, np.searchsorted(base, fresh), fresh)
            self._pending.clear()
        if self._sorted.shape[0] == 0:
            raise ValueError("no samples recorded")
        return self._sorted

    @staticmethod
    def _percentile_of_sorted(arr: np.ndarray, p: float) -> float:
        """Linear-interpolated percentile of an already-sorted array.

        Matches ``np.percentile(arr, p)`` (default 'linear' method) without
        re-partitioning the array per call.
        """
        rank = (arr.shape[0] - 1) * (p / 100.0)
        lo = int(rank)
        hi = min(lo + 1, arr.shape[0] - 1)
        lo_value = float(arr[lo])
        return lo_value + (float(arr[hi]) - lo_value) * (rank - lo)

    def percentile(self, p: float) -> float:
        """Return the ``p``-th percentile (0 < p <= 100) of recorded samples."""
        if not len(self):
            raise ValueError("no samples recorded")
        if not 0.0 < p <= 100.0:
            raise ValueError(f"percentile must be in (0, 100], got {p}")
        return self._percentile_of_sorted(self._merged(), p)

    def mean(self) -> float:
        """Mean of recorded samples."""
        count = len(self)
        if not count:
            raise ValueError("no samples recorded")
        return self._sum / count

    def max(self) -> float:
        """Maximum recorded sample."""
        if not len(self):
            raise ValueError("no samples recorded")
        return self._max

    def fraction_below(self, threshold: float) -> float:
        """Fraction of samples strictly below ``threshold``.

        This is the quantity an SLA like "99.9 % of requests under 100 ms"
        asks about.  Answered with one ``searchsorted`` against the sorted
        cache instead of materialising the full history per call.
        """
        if not len(self):
            raise ValueError("no samples recorded")
        arr = self._merged()
        return float(np.searchsorted(arr, threshold, side="left")) / arr.shape[0]

    def merge(self, other: "PercentileEstimator") -> "PercentileEstimator":
        """Fold another estimator's samples into this one and return ``self``.

        Both sides' sorted caches are combined with one ``searchsorted`` +
        ``insert`` pass (O(n + m)), never a re-sort of the concatenated raw
        samples — this is what lets a parallel sweep aggregate per-run
        estimators into grid-cell summaries cheaply.  The result answers
        every query exactly as an estimator fed the concatenation of both
        sample streams would (asserted by the sweep determinism tests).
        ``other`` is not modified beyond flushing its pending buffer into its
        own sorted cache.
        """
        if len(other) == 0:
            return self
        incoming = other._merged()
        if len(self) == 0:
            self._sorted = incoming.copy()
        else:
            base = self._merged()
            self._sorted = np.insert(base, np.searchsorted(base, incoming), incoming)
        self._sum += other._sum
        if other._max > self._max:
            self._max = other._max
        return self

    @classmethod
    def merged(cls, estimators) -> "PercentileEstimator":
        """A new estimator holding the union of all given estimators' samples."""
        result = cls()
        for estimator in estimators:
            result.merge(estimator)
        return result

    def fraction_at_or_below(self, threshold: float) -> float:
        """Fraction of samples less than *or equal to* ``threshold``.

        The inclusive counterpart of :meth:`fraction_below`, matching the
        ``latency <= target`` comparison :class:`~repro.metrics.sla.SLATracker`
        uses — e.g. for asking a merged sweep cell's estimator what
        attainment a *different* SLA target would have had.
        """
        if not len(self):
            raise ValueError("no samples recorded")
        arr = self._merged()
        return float(np.searchsorted(arr, threshold, side="right")) / arr.shape[0]

    def reset(self) -> None:
        """Drop all recorded samples."""
        self._pending.clear()
        self._sorted = _EMPTY
        self._sum = 0.0
        self._max = 0.0

    def snapshot(self) -> Dict[str, float]:
        """Common summary statistics in one dictionary.

        One merge, then every percentile reads the same sorted array — the
        cost per control window is O(new samples), not O(all history · log).
        """
        count = len(self)
        if not count:
            return {"count": 0}
        arr = self._merged()
        return {
            "count": float(count),
            "mean": self._sum / count,
            "p50": self._percentile_of_sorted(arr, 50),
            "p95": self._percentile_of_sorted(arr, 95),
            "p99": self._percentile_of_sorted(arr, 99),
            "p999": self._percentile_of_sorted(arr, 99.9),
            "max": self._max,
        }


class LatencyRecorder:
    """Per-operation-type latency recording with windowing support.

    The provisioning loop trains its ML models on *recent* behaviour, so the
    recorder can be drained window-by-window while an all-time estimator keeps
    the experiment-level summary.
    """

    def __init__(self) -> None:
        self._all_time: Dict[str, PercentileEstimator] = {}
        self._window: Dict[str, PercentileEstimator] = {}

    def record(self, op_type: str, latency: float) -> None:
        """Record one latency for an operation type ('read', 'write', ...)."""
        estimator = self._all_time.get(op_type)
        if estimator is None:
            estimator = self._all_time[op_type] = PercentileEstimator()
        estimator.add(latency)
        estimator = self._window.get(op_type)
        if estimator is None:
            estimator = self._window[op_type] = PercentileEstimator()
        estimator.add(latency)

    def op_types(self) -> List[str]:
        """Operation types seen so far."""
        return sorted(self._all_time.keys())

    def all_time(self, op_type: str) -> PercentileEstimator:
        """All-time estimator for an operation type."""
        if op_type not in self._all_time:
            raise KeyError(f"no latencies recorded for operation type {op_type!r}")
        return self._all_time[op_type]

    def window(self, op_type: str) -> PercentileEstimator:
        """Current-window estimator for an operation type."""
        if op_type not in self._window:
            raise KeyError(f"no latencies recorded for operation type {op_type!r}")
        return self._window[op_type]

    def window_count(self, op_type: str) -> int:
        """Number of samples in the current window for ``op_type`` (0 if none)."""
        est = self._window.get(op_type)
        return len(est) if est is not None else 0

    def roll_window(self) -> Dict[str, Dict[str, float]]:
        """Close the current window, returning its per-op summary, and start a new one."""
        summary = {op: est.snapshot() for op, est in self._window.items()}
        self._window = {}
        return summary

    def summary(self) -> Dict[str, Dict[str, float]]:
        """All-time per-operation summaries."""
        return {op: est.snapshot() for op, est in self._all_time.items()}
