"""Cost reporting helpers tying cloud billing to workload volume.

The paper defines scaling as "servicing more (or fewer) users while keeping
the cost per user constant", so experiment output needs cost per user and
cost per request alongside raw machine-hours.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CostReport:
    """Cost summary for one experiment run."""

    machine_hours: float
    dollars: float
    requests_served: int
    peak_instances: int
    mean_instances: float

    def cost_per_request(self) -> float:
        """Dollars per request served (0 if no requests were served)."""
        if self.requests_served == 0:
            return 0.0
        return self.dollars / self.requests_served

    def cost_per_million_requests(self) -> float:
        """Dollars per million requests — the unit used in EXPERIMENTS.md."""
        return self.cost_per_request() * 1_000_000

    def savings_vs(self, other: "CostReport") -> float:
        """Fractional savings of this run relative to ``other`` (positive = cheaper)."""
        if other.dollars == 0:
            return 0.0
        return 1.0 - self.dollars / other.dollars

    def as_dict(self) -> dict:
        """Plain-dict form for printing in benchmark harnesses."""
        return {
            "machine_hours": round(self.machine_hours, 3),
            "dollars": round(self.dollars, 4),
            "requests_served": self.requests_served,
            "peak_instances": self.peak_instances,
            "mean_instances": round(self.mean_instances, 2),
            "cost_per_million_requests": round(self.cost_per_million_requests(), 4),
        }
