"""Cost reporting helpers tying cloud billing to workload volume.

The paper defines scaling as "servicing more (or fewer) users while keeping
the cost per user constant", so experiment output needs cost per user and
cost per request alongside raw machine-hours.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CostReport:
    """Cost summary for one experiment run."""

    machine_hours: float
    dollars: float
    requests_served: int
    peak_instances: int
    mean_instances: float

    def cost_per_request(self) -> float:
        """Dollars per request served (0 if no requests were served)."""
        if self.requests_served == 0:
            return 0.0
        return self.dollars / self.requests_served

    def cost_per_million_requests(self) -> float:
        """Dollars per million requests — the unit used in EXPERIMENTS.md."""
        return self.cost_per_request() * 1_000_000

    def merge(self, other: "CostReport") -> "CostReport":
        """Combine the bills of two independent runs (or grid cells).

        Machine-hours, dollars, and request counts are additive.  Peak
        instances is the max (the runs did not share a cluster, so the
        interesting peak is the worst single run's).  Mean instances is
        weighted by machine-hours — instance-count integrated over time is
        what machine-hours measures, so this reproduces the mean over the
        combined machine-time.
        """
        hours = self.machine_hours + other.machine_hours
        if hours > 0:
            mean = (self.mean_instances * self.machine_hours
                    + other.mean_instances * other.machine_hours) / hours
        else:
            mean = (self.mean_instances + other.mean_instances) / 2.0
        return CostReport(
            machine_hours=hours,
            dollars=self.dollars + other.dollars,
            requests_served=self.requests_served + other.requests_served,
            peak_instances=max(self.peak_instances, other.peak_instances),
            mean_instances=mean,
        )

    def savings_vs(self, other: "CostReport") -> float:
        """Fractional savings of this run relative to ``other`` (positive = cheaper)."""
        if other.dollars == 0:
            return 0.0
        return 1.0 - self.dollars / other.dollars

    def as_dict(self) -> dict:
        """Plain-dict form for printing in benchmark harnesses."""
        return {
            "machine_hours": round(self.machine_hours, 3),
            "dollars": round(self.dollars, 4),
            "requests_served": self.requests_served,
            "peak_instances": self.peak_instances,
            "mean_instances": round(self.mean_instances, 2),
            "cost_per_million_requests": round(self.cost_per_million_requests(), 4),
        }
