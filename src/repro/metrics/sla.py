"""SLA attainment accounting.

An SLA in SCADS is of the form "P percent of requests of type T must succeed
within L seconds".  The tracker turns a stream of (success, latency)
observations into attainment numbers, both per reporting window (what the
provisioning loop reacts to) and for the whole experiment (what
``EXPERIMENTS.md`` reports).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass
class SLAReport:
    """Attainment of one SLA over one interval."""

    op_type: str
    target_percentile: float
    target_latency: float
    observed_fraction_within: float
    observed_percentile_latency: float
    request_count: int
    satisfied: bool

    def violation_margin(self) -> float:
        """How far the observed percentile latency exceeds the target (<= 0 if met)."""
        return self.observed_percentile_latency - self.target_latency

    def merge(self, other: "SLAReport",
              merged_percentile_latency: Optional[float] = None) -> "SLAReport":
        """Combine two reports over disjoint request populations.

        ``observed_fraction_within`` combines exactly (it is a
        request-count-weighted mean).  The percentile latency of a union
        cannot be recovered from two summary percentiles; pass
        ``merged_percentile_latency`` computed from merged
        :class:`~repro.metrics.percentiles.PercentileEstimator` samples (what
        the sweep aggregator does) for the exact value, otherwise the
        pessimistic ``max`` of the two is reported.  ``satisfied`` is
        recomputed from the combined fraction, matching
        :meth:`SLATracker._report_over`.
        """
        if (self.op_type != other.op_type
                or self.target_percentile != other.target_percentile
                or self.target_latency != other.target_latency):
            raise ValueError(
                "can only merge SLAReports for the same op type and target "
                f"({self.op_type}@p{self.target_percentile}<{self.target_latency}s vs "
                f"{other.op_type}@p{other.target_percentile}<{other.target_latency}s)"
            )
        total = self.request_count + other.request_count
        if total == 0:
            return SLAReport(
                op_type=self.op_type,
                target_percentile=self.target_percentile,
                target_latency=self.target_latency,
                observed_fraction_within=1.0,
                observed_percentile_latency=0.0,
                request_count=0,
                satisfied=True,
            )
        within = (self.observed_fraction_within * self.request_count
                  + other.observed_fraction_within * other.request_count) / total
        if merged_percentile_latency is None:
            merged_percentile_latency = max(self.observed_percentile_latency,
                                            other.observed_percentile_latency)
        return SLAReport(
            op_type=self.op_type,
            target_percentile=self.target_percentile,
            target_latency=self.target_latency,
            observed_fraction_within=within,
            observed_percentile_latency=merged_percentile_latency,
            request_count=total,
            satisfied=within >= self.target_percentile / 100.0,
        )


class SLATracker:
    """Tracks one latency/availability SLA for one operation type."""

    def __init__(
        self,
        op_type: str,
        target_percentile: float,
        target_latency: float,
        availability_target: float = 0.999,
    ) -> None:
        if not 0.0 < target_percentile < 100.0:
            raise ValueError(
                f"target percentile must be in (0, 100), got {target_percentile}"
            )
        if target_latency <= 0:
            raise ValueError(f"target latency must be positive, got {target_latency}")
        if not 0.0 < availability_target <= 1.0:
            raise ValueError(
                f"availability target must be in (0, 1], got {availability_target}"
            )
        self.op_type = op_type
        self.target_percentile = target_percentile
        self.target_latency = target_latency
        self.availability_target = availability_target
        self._window_latencies: List[float] = []
        self._window_failures = 0
        self._all_latencies: List[float] = []
        self._all_failures = 0
        self._window_reports: List[SLAReport] = []

    def observe(self, latency: Optional[float], success: bool = True) -> None:
        """Record one request outcome.

        Failed requests (success=False) count against availability; their
        latency, if any, is ignored for the latency percentile.
        """
        if not success:
            self._window_failures += 1
            self._all_failures += 1
            return
        if latency is None:
            raise ValueError("successful requests must report a latency")
        if latency < 0:
            raise ValueError(f"latency must be non-negative, got {latency}")
        self._window_latencies.append(float(latency))
        self._all_latencies.append(float(latency))

    def _report_over(self, latencies: List[float], failures: int) -> SLAReport:
        import numpy as np

        total = len(latencies) + failures
        if not latencies:
            return SLAReport(
                op_type=self.op_type,
                target_percentile=self.target_percentile,
                target_latency=self.target_latency,
                observed_fraction_within=0.0 if total else 1.0,
                observed_percentile_latency=float("inf") if total else 0.0,
                request_count=total,
                satisfied=total == 0,
            )
        arr = np.asarray(latencies)
        within = float(np.sum(arr <= self.target_latency)) / total
        observed_pct = float(np.percentile(arr, self.target_percentile))
        satisfied = within >= self.target_percentile / 100.0
        return SLAReport(
            op_type=self.op_type,
            target_percentile=self.target_percentile,
            target_latency=self.target_latency,
            observed_fraction_within=within,
            observed_percentile_latency=observed_pct,
            request_count=total,
            satisfied=satisfied,
        )

    def close_window(self) -> SLAReport:
        """Produce a report for the current window and start a new one."""
        report = self._report_over(self._window_latencies, self._window_failures)
        self._window_reports.append(report)
        self._window_latencies = []
        self._window_failures = 0
        return report

    def overall_report(self) -> SLAReport:
        """Report over every observation since construction."""
        return self._report_over(self._all_latencies, self._all_failures)

    def availability(self) -> float:
        """Fraction of all requests that succeeded."""
        total = len(self._all_latencies) + self._all_failures
        if total == 0:
            return 1.0
        return len(self._all_latencies) / total

    def window_history(self) -> List[SLAReport]:
        """Reports for every closed window, in order."""
        return list(self._window_reports)

    def violation_rate(self) -> float:
        """Fraction of closed windows in which the SLA was violated."""
        if not self._window_reports:
            return 0.0
        violated = sum(1 for r in self._window_reports if not r.satisfied)
        return violated / len(self._window_reports)


# --------------------------------------------------- fixed-clock compliance

#: Width of the fixed compliance windows every engine tracks (seconds of
#: simulated time).  Unlike :meth:`SLATracker.close_window`, which only fires
#: when the provisioning monitor ticks (autoscale on), these windows are a
#: pure function of the sim clock — every run yields the same per-window
#: compliance series for the validation grid's SLA policy to gate on.
COMPLIANCE_WINDOW_SECONDS = 60.0


@dataclass(slots=True)
class ComplianceWindow:
    """Request-level SLA compliance counters for one fixed clock window."""

    start: float
    total: int
    within: int

    @property
    def fraction_within(self) -> float:
        return self.within / self.total if self.total else 1.0

    def compliant(self, target_percentile: float) -> bool:
        """Did this window meet "P percent of requests within L seconds"?"""
        return self.fraction_within >= target_percentile / 100.0


class WindowedComplianceTracker:
    """Per-window "requests within target latency" counts, always on.

    Two integers per (window, op type) — cheap enough for the hot request
    path — which is all the validation grid's windowed SLA policy needs:
    whether each window's within-fraction met the declared percentile.
    Failed requests count toward the window total but never as within.
    """

    __slots__ = ("window_seconds", "target_latency", "_buckets")

    def __init__(self, window_seconds: float, target_latency: float) -> None:
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        self.window_seconds = window_seconds
        self.target_latency = target_latency
        self._buckets: dict = {}

    def observe(self, now: float, latency: Optional[float]) -> None:
        """Record one request; ``latency=None`` means the request failed."""
        bucket = self._buckets.setdefault(int(now // self.window_seconds), [0, 0])
        bucket[0] += 1
        if latency is not None and latency <= self.target_latency:
            bucket[1] += 1

    def windows(self) -> List[ComplianceWindow]:
        """Traffic windows in clock order (empty windows are absent)."""
        return [
            ComplianceWindow(start=index * self.window_seconds,
                             total=total, within=within)
            for index, (total, within) in sorted(self._buckets.items())
        ]
