"""The paper's core contribution: scale-independent storage.

Subpackages:

* :mod:`repro.core.schema` — entity sets, typed fields, cardinality bounds.
* :mod:`repro.core.query` — the performance-safe (restricted SQL) query
  language: parsing, scale-independence analysis, and compilation to
  pre-computed index plans.
* :mod:`repro.core.index` — index specifications, the maintenance-function
  table, and the deadline-ordered asynchronous update engine.
* :mod:`repro.core.consistency` — the declarative consistency axes of
  Figure 4, session guarantees, conflict handling, and partition arbitration.
* :mod:`repro.core.provisioning` — the SLA monitor, workload forecaster,
  capacity planner, and scale-up/down controller (Figure 2's feedback loop).
* :mod:`repro.core.engine` — the public :class:`~repro.core.engine.Scads` API.
"""

from repro.core.engine import Scads

__all__ = ["Scads"]
