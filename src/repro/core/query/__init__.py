"""The performance-safe query language.

Developers declare query *templates* ahead of time in a restricted subset of
SQL.  The pipeline is::

    SQL text --lexer/parser--> QueryTemplate (AST)
             --analyzer-->     AnalyzedQuery (or QueryRejected)
             --compiler-->     CompiledQuery: IndexSpec + QueryPlan
                               + maintenance rules (the Figure-3 table)

Only templates whose execution cost and maintenance cost are provably bounded
by application constants are admitted; everything else is rejected at
declaration time with a machine-readable reason.
"""

from repro.core.query.ast import (
    ColumnRef,
    JoinClause,
    Literal,
    OrderBy,
    Parameter,
    Predicate,
    QueryTemplate,
    SelectItem,
)
from repro.core.query.lexer import Token, TokenType, tokenize
from repro.core.query.parser import ParseError, parse_query
from repro.core.query.analyzer import (
    AnalyzedQuery,
    ChainStep,
    QueryAnalyzer,
    QueryRejected,
    RejectionReason,
)
from repro.core.query.compiler import CompiledQuery, QueryCompiler
from repro.core.query.plans import IndexSpec, MaintenanceRule, QueryPlan
from repro.core.query.executor import QueryExecutor, QueryResult

__all__ = [
    "tokenize",
    "Token",
    "TokenType",
    "parse_query",
    "ParseError",
    "ColumnRef",
    "Parameter",
    "Literal",
    "Predicate",
    "JoinClause",
    "OrderBy",
    "SelectItem",
    "QueryTemplate",
    "QueryAnalyzer",
    "AnalyzedQuery",
    "ChainStep",
    "QueryRejected",
    "RejectionReason",
    "QueryCompiler",
    "CompiledQuery",
    "IndexSpec",
    "QueryPlan",
    "MaintenanceRule",
    "QueryExecutor",
    "QueryResult",
]
