"""Recursive-descent parser for the restricted SQL dialect.

Grammar (keywords case-insensitive)::

    query      := SELECT select_list FROM table_ref join* where? order? limit?
    select_list:= '*' | item (',' item)*
    item       := alias '.' '*' | column_ref
    table_ref  := identifier [identifier]
    join       := JOIN table_ref ON column_ref '=' column_ref
    where      := WHERE predicate (AND predicate)*
    predicate  := column_ref op value | column_ref BETWEEN value AND value
    op         := '=' | '<' | '<=' | '>' | '>='
    value      := parameter | string | number
    order      := ORDER BY column_ref [ASC|DESC]
    limit      := LIMIT number

``OR`` is rejected with a pointer toward the SCADS idiom (declare two
templates, or store both directions of a symmetric relationship), because a
disjunction cannot be answered from one contiguous index range.
"""

from __future__ import annotations

from typing import List, Union

from repro.core.query.ast import (
    ColumnRef,
    JoinClause,
    Literal,
    OrderBy,
    Parameter,
    Predicate,
    QueryTemplate,
    SelectItem,
)
from repro.core.query.lexer import Token, TokenType, tokenize


class ParseError(ValueError):
    """Raised when query text does not conform to the restricted grammar."""


class _Parser:
    def __init__(self, tokens: List[Token], text: str) -> None:
        self._tokens = tokens
        self._index = 0
        self._text = text

    # ----------------------------------------------------------------- helpers

    def _peek(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.token_type is not TokenType.EOF:
            self._index += 1
        return token

    def _expect_keyword(self, word: str) -> Token:
        token = self._advance()
        if not token.is_keyword(word):
            raise ParseError(f"expected {word.upper()!r} at position {token.position}, "
                             f"got {token.value!r}")
        return token

    def _expect(self, token_type: TokenType) -> Token:
        token = self._advance()
        if token.token_type is not token_type:
            raise ParseError(f"expected {token_type.value} at position {token.position}, "
                             f"got {token.value!r}")
        return token

    def _check_keyword(self, word: str) -> bool:
        return self._peek().is_keyword(word)

    # ------------------------------------------------------------------- parse

    def parse(self) -> QueryTemplate:
        self._expect_keyword("select")
        select = self._parse_select_list()
        self._expect_keyword("from")
        from_table, from_alias = self._parse_table_ref()
        joins = []
        while self._check_keyword("join"):
            joins.append(self._parse_join())
        where: List[Predicate] = []
        if self._check_keyword("where"):
            self._advance()
            where = self._parse_predicates()
        order_by = None
        if self._check_keyword("order"):
            order_by = self._parse_order_by()
        limit = None
        if self._check_keyword("limit"):
            self._advance()
            limit_token = self._expect(TokenType.NUMBER)
            if not isinstance(limit_token.value, int) or limit_token.value < 1:
                raise ParseError(f"LIMIT must be a positive integer, got {limit_token.value!r}")
            limit = limit_token.value
        trailing = self._peek()
        if trailing.token_type is not TokenType.EOF:
            raise ParseError(f"unexpected trailing input at position {trailing.position}: "
                             f"{trailing.value!r}")
        return QueryTemplate(
            select=select,
            from_table=from_table,
            from_alias=from_alias,
            joins=joins,
            where=where,
            order_by=order_by,
            limit=limit,
            text=self._text,
        )

    def _parse_select_list(self) -> List[SelectItem]:
        items: List[SelectItem] = []
        while True:
            token = self._peek()
            if token.token_type is TokenType.STAR:
                self._advance()
                items.append(SelectItem(is_star=True))
            elif token.token_type is TokenType.IDENTIFIER:
                first = self._advance().value
                if self._peek().token_type is TokenType.DOT:
                    self._advance()
                    nxt = self._peek()
                    if nxt.token_type is TokenType.STAR:
                        self._advance()
                        items.append(SelectItem(is_star=True, star_alias=str(first)))
                    else:
                        column = self._expect(TokenType.IDENTIFIER).value
                        items.append(SelectItem(column=ColumnRef(str(first), str(column))))
                else:
                    items.append(SelectItem(column=ColumnRef(None, str(first))))
            else:
                raise ParseError(f"expected a column or '*' at position {token.position}")
            if self._peek().token_type is TokenType.COMMA:
                self._advance()
                continue
            return items

    def _parse_table_ref(self):
        table = self._expect(TokenType.IDENTIFIER).value
        alias = table
        if self._peek().token_type is TokenType.IDENTIFIER:
            alias = self._advance().value
        return str(table), str(alias)

    def _parse_join(self) -> JoinClause:
        self._expect_keyword("join")
        table, alias = self._parse_table_ref()
        self._expect_keyword("on")
        left = self._parse_column_ref()
        operator = self._expect(TokenType.OPERATOR)
        if operator.value != "=":
            raise ParseError(f"JOIN conditions must be equalities, got {operator.value!r}")
        right = self._parse_column_ref()
        return JoinClause(table=table, alias=alias, left=left, right=right)

    def _parse_column_ref(self) -> ColumnRef:
        first = self._expect(TokenType.IDENTIFIER).value
        if self._peek().token_type is TokenType.DOT:
            self._advance()
            column = self._expect(TokenType.IDENTIFIER).value
            return ColumnRef(str(first), str(column))
        return ColumnRef(None, str(first))

    def _parse_predicates(self) -> List[Predicate]:
        predicates = [self._parse_predicate()]
        while True:
            if self._check_keyword("and"):
                self._advance()
                predicates.append(self._parse_predicate())
                continue
            if self._check_keyword("or"):
                raise ParseError(
                    "OR is not supported: a disjunction cannot be answered from one "
                    "contiguous index range; declare separate query templates (or store "
                    "both directions of a symmetric relationship) instead"
                )
            return predicates

    def _parse_predicate(self) -> Predicate:
        column = self._parse_column_ref()
        token = self._peek()
        if token.is_keyword("between"):
            self._advance()
            low = self._parse_value()
            self._expect_keyword("and")
            high = self._parse_value()
            return Predicate(column=column, op="between", value=low, value_high=high)
        operator = self._expect(TokenType.OPERATOR)
        value = self._parse_value()
        return Predicate(column=column, op=str(operator.value), value=value)

    def _parse_value(self) -> Union[Parameter, Literal]:
        token = self._advance()
        if token.token_type is TokenType.PARAMETER:
            return Parameter(str(token.value))
        if token.token_type is TokenType.STRING:
            return Literal(str(token.value))
        if token.token_type is TokenType.NUMBER:
            return Literal(token.value)
        raise ParseError(f"expected a parameter or literal at position {token.position}, "
                         f"got {token.value!r}")

    def _parse_order_by(self) -> OrderBy:
        self._expect_keyword("order")
        self._expect_keyword("by")
        column = self._parse_column_ref()
        descending = False
        if self._check_keyword("desc"):
            self._advance()
            descending = True
        elif self._check_keyword("asc"):
            self._advance()
        return OrderBy(column=column, descending=descending)


def parse_query(text: str) -> QueryTemplate:
    """Parse query-template text into a :class:`QueryTemplate` AST."""
    if not text or not text.strip():
        raise ParseError("query text is empty")
    tokens = tokenize(text)
    return _Parser(tokens, text.strip()).parse()
