"""Semantic analysis and scale-independence checking of query templates.

This is where SCADS enforces the paper's central restriction: a query is
admitted only if

* it can be answered by a lookup over a **bounded contiguous range** of one
  pre-computed index (Section 3.1), and
* maintaining that index costs **O(K)** work per base-table update for an
  application constant K (Section 3.2).

The analyzer resolves the template against the schema, arranges its tables
into a linear join chain anchored at the parameterised equality predicate,
computes read-work and update-work bounds from the declared cardinality
bounds, and rejects anything whose bounds do not exist or exceed the
configured limits.  Every rejection carries a :class:`RejectionReason` so the
admission experiment (E2) can report *why* each template was refused — the
"introspective" part of the paper's query interface.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.core.query.ast import (
    ColumnRef,
    Literal,
    Parameter,
    Predicate,
    QueryTemplate,
)
from repro.core.schema import EntitySchema, SchemaRegistry


class RejectionReason(enum.Enum):
    """Machine-readable reasons a query template can be refused."""

    UNKNOWN_ENTITY = "unknown_entity"
    UNKNOWN_COLUMN = "unknown_column"
    UNKNOWN_ALIAS = "unknown_alias"
    NO_PARAMETERISED_EQUALITY = "no_parameterised_equality"
    MULTIPLE_ANCHORS = "multiple_anchors"
    ANCHOR_NOT_KEY_PREFIX = "anchor_not_key_prefix"
    PARAMETER_OFF_ANCHOR = "parameter_off_anchor"
    NON_LINEAR_JOIN = "non_linear_join"
    JOIN_NOT_KEY_PREFIX = "join_not_key_prefix"
    UNBOUNDED_ANCHOR = "unbounded_anchor"
    UNBOUNDED_JOIN = "unbounded_join"
    UNBOUNDED_REVERSE_TRAVERSAL = "unbounded_reverse_traversal"
    RANGE_NOT_ON_SORT = "range_not_on_sort"
    MULTIPLE_RANGE_PREDICATES = "multiple_range_predicates"
    ORDER_BY_OFF_CHAIN_END = "order_by_off_chain_end"
    READ_WORK_UNBOUNDED = "read_work_unbounded"
    READ_WORK_EXCEEDED = "read_work_exceeded"
    UPDATE_WORK_EXCEEDED = "update_work_exceeded"


class QueryRejected(ValueError):
    """Raised when a template fails scale-independence analysis."""

    def __init__(self, reason: RejectionReason, message: str) -> None:
        super().__init__(f"[{reason.value}] {message}")
        self.reason = reason
        self.message = message


@dataclass
class ChainStep:
    """One entity in the linear join chain.

    ``forward_fanout`` bounds how many rows of this entity one row of the
    previous entity (or one anchor parameter value, for step 0) can reach.
    ``reverse_fanout`` bounds the opposite direction, which is what index
    maintenance traverses when a row of a *later* entity changes.
    ``reverse_needs_index`` is True when the reverse traversal cannot use the
    entity's own primary key and an auxiliary reverse index must be built.
    """

    alias: str
    entity: EntitySchema
    join_from_column: Optional[str]  # column on the previous entity (None at step 0)
    join_to_column: Optional[str]  # column on this entity (anchor column at step 0)
    forward_fanout: int
    reverse_fanout: int = 1
    reverse_needs_index: bool = False


@dataclass
class AnalyzedQuery:
    """The analyzer's output: everything the compiler needs."""

    template: QueryTemplate
    chain: List[ChainStep]
    anchor_parameter: str
    anchor_column: str
    extra_anchor_equalities: List[Tuple[str, Union[Parameter, Literal]]]
    sort_column: Optional[Tuple[str, str]]  # (alias, column)
    sort_descending: bool
    range_predicate: Optional[Predicate]
    residual_filters: List[Predicate]
    limit: Optional[int]
    result_bound: int
    read_work_bound: int
    update_work_bound: int

    @property
    def anchor(self) -> ChainStep:
        return self.chain[0]

    @property
    def final(self) -> ChainStep:
        return self.chain[-1]

    def entities(self) -> List[str]:
        """Entity names along the chain, anchor first."""
        return [step.entity.name for step in self.chain]


class QueryAnalyzer:
    """Checks templates against the schema and the scale-independence rules.

    Args:
        registry: the application's schema registry.
        max_read_work: largest admissible per-query read cost (index entries
            touched).  The paper's "constant cost per user" K for reads.
        max_update_work: largest admissible per-update maintenance cost
            (lookups plus index writes).  The paper's O(K) for updates.
    """

    def __init__(
        self,
        registry: SchemaRegistry,
        max_read_work: int = 10_000,
        max_update_work: int = 50_000,
    ) -> None:
        if max_read_work < 1 or max_update_work < 1:
            raise ValueError("work bounds must be positive")
        self.registry = registry
        self.max_read_work = max_read_work
        self.max_update_work = max_update_work

    # ----------------------------------------------------------------- analyse

    def analyze(self, template: QueryTemplate) -> AnalyzedQuery:
        """Analyse a parsed template; raises :class:`QueryRejected` on failure."""
        alias_to_entity = self._resolve_aliases(template)
        predicates_by_alias = self._resolve_predicates(template, alias_to_entity)
        anchor_alias, anchor_column, anchor_parameter, extra_equalities = self._find_anchor(
            template, alias_to_entity, predicates_by_alias
        )
        chain = self._build_chain(template, alias_to_entity, anchor_alias, anchor_column)
        sort_column, sort_descending = self._resolve_sort(template, alias_to_entity, chain)
        range_predicate, residual_filters, sort_column = self._classify_predicates(
            template, alias_to_entity, anchor_alias, anchor_column,
            extra_equalities, sort_column, chain,
        )
        sort_on_final = (
            sort_column is not None
            and len(chain) > 1
            and sort_column[0] == chain[-1].alias
        )
        result_bound, read_work, update_work = self._compute_bounds(
            chain, template.limit, sort_on_final
        )
        self._enforce_bounds(result_bound, read_work, update_work, template)
        return AnalyzedQuery(
            template=template,
            chain=chain,
            anchor_parameter=anchor_parameter,
            anchor_column=anchor_column,
            extra_anchor_equalities=extra_equalities,
            sort_column=sort_column,
            sort_descending=sort_descending,
            range_predicate=range_predicate,
            residual_filters=residual_filters,
            limit=template.limit,
            result_bound=result_bound,
            read_work_bound=read_work,
            update_work_bound=update_work,
        )

    # ------------------------------------------------------------- resolution

    def _resolve_aliases(self, template: QueryTemplate) -> Dict[str, EntitySchema]:
        alias_to_entity: Dict[str, EntitySchema] = {}
        for alias, table in template.aliases().items():
            if not self.registry.has_entity(table):
                raise QueryRejected(
                    RejectionReason.UNKNOWN_ENTITY,
                    f"query references unknown entity {table!r}",
                )
            alias_to_entity[alias] = self.registry.entity(table)
        return alias_to_entity

    def _resolve_column(
        self,
        column: ColumnRef,
        alias_to_entity: Dict[str, EntitySchema],
        context: str,
    ) -> Tuple[str, EntitySchema, str]:
        """Resolve a column reference to (alias, entity, column name)."""
        if column.table_alias is not None:
            if column.table_alias not in alias_to_entity:
                raise QueryRejected(
                    RejectionReason.UNKNOWN_ALIAS,
                    f"{context}: unknown table alias {column.table_alias!r}",
                )
            entity = alias_to_entity[column.table_alias]
            if not entity.has_field(column.column):
                raise QueryRejected(
                    RejectionReason.UNKNOWN_COLUMN,
                    f"{context}: entity {entity.name!r} has no field {column.column!r}",
                )
            return column.table_alias, entity, column.column
        # Bare column: find the unique alias whose entity has the field.
        owners = [
            (alias, entity)
            for alias, entity in alias_to_entity.items()
            if entity.has_field(column.column)
        ]
        if not owners:
            raise QueryRejected(
                RejectionReason.UNKNOWN_COLUMN,
                f"{context}: no table in the query has a field {column.column!r}",
            )
        if len(owners) > 1:
            raise QueryRejected(
                RejectionReason.UNKNOWN_COLUMN,
                f"{context}: field {column.column!r} is ambiguous across "
                f"{sorted(alias for alias, _ in owners)}",
            )
        alias, entity = owners[0]
        return alias, entity, column.column

    def _resolve_predicates(
        self,
        template: QueryTemplate,
        alias_to_entity: Dict[str, EntitySchema],
    ) -> Dict[str, List[Tuple[str, Predicate]]]:
        """Group predicates by the alias they constrain (validating columns)."""
        grouped: Dict[str, List[Tuple[str, Predicate]]] = {}
        for predicate in template.where:
            alias, _, column = self._resolve_column(
                predicate.column, alias_to_entity, f"WHERE {predicate}"
            )
            grouped.setdefault(alias, []).append((column, predicate))
        return grouped

    # ----------------------------------------------------------------- anchor

    def _find_anchor(
        self,
        template: QueryTemplate,
        alias_to_entity: Dict[str, EntitySchema],
        predicates_by_alias: Dict[str, List[Tuple[str, Predicate]]],
    ) -> Tuple[str, str, str, List[Tuple[str, Union[Parameter, Literal]]]]:
        """Locate the anchor: the parameterised equality that seeds the index prefix."""
        anchored_aliases: Dict[str, List[Tuple[str, Predicate]]] = {}
        for alias, items in predicates_by_alias.items():
            parameterised = [
                (column, predicate)
                for column, predicate in items
                if predicate.is_equality and isinstance(predicate.value, Parameter)
            ]
            if parameterised:
                anchored_aliases[alias] = parameterised
        if not anchored_aliases:
            raise QueryRejected(
                RejectionReason.NO_PARAMETERISED_EQUALITY,
                "the template has no parameterised equality predicate, so its result "
                "set would grow with the total user population",
            )
        if len(anchored_aliases) > 1:
            raise QueryRejected(
                RejectionReason.MULTIPLE_ANCHORS,
                f"parameterised equality predicates appear on multiple tables "
                f"({sorted(anchored_aliases)}); SCADS indexes are anchored at one table",
            )
        anchor_alias = next(iter(anchored_aliases))
        entity = alias_to_entity[anchor_alias]
        parameterised = anchored_aliases[anchor_alias]
        # All parameterised equalities must sit on a prefix of the primary key.
        columns = [column for column, _ in parameterised]
        positions = []
        for column in columns:
            if not entity.is_key_field(column):
                raise QueryRejected(
                    RejectionReason.ANCHOR_NOT_KEY_PREFIX,
                    f"anchor column {column!r} is not a key field of {entity.name!r}; "
                    f"an index on it would grow without bound as users join",
                )
            positions.append(entity.key_position(column))
        positions_sorted = sorted(positions)
        if positions_sorted != list(range(len(positions_sorted))):
            raise QueryRejected(
                RejectionReason.ANCHOR_NOT_KEY_PREFIX,
                f"anchor columns {columns} do not form a prefix of {entity.name!r}'s key "
                f"{entity.key_field_names}",
            )
        # The primary anchor parameter is the first key column; further anchor
        # equalities (parameterised or literal) extend the prefix.
        by_position = sorted(zip(positions, parameterised), key=lambda item: item[0])
        primary_column, primary_predicate = by_position[0][1]
        assert isinstance(primary_predicate.value, Parameter)
        extras: List[Tuple[str, Union[Parameter, Literal]]] = [
            (column, predicate.value) for _, (column, predicate) in by_position[1:]
        ]
        # Parameterised equalities on any other alias are not supported.
        for alias, items in predicates_by_alias.items():
            if alias == anchor_alias:
                continue
            for column, predicate in items:
                if predicate.is_parameterised and predicate.is_equality:
                    raise QueryRejected(
                        RejectionReason.PARAMETER_OFF_ANCHOR,
                        f"parameterised equality on {alias}.{column} is not on the anchor table",
                    )
        return anchor_alias, primary_column, primary_predicate.value.name, extras

    # ------------------------------------------------------------------- chain

    def _build_chain(
        self,
        template: QueryTemplate,
        alias_to_entity: Dict[str, EntitySchema],
        anchor_alias: str,
        anchor_column: str,
    ) -> List[ChainStep]:
        anchor_entity = alias_to_entity[anchor_alias]
        anchor_fanout = anchor_entity.rows_per_value_bound(anchor_column)
        if anchor_fanout is None:
            raise QueryRejected(
                RejectionReason.UNBOUNDED_ANCHOR,
                f"entity {anchor_entity.name!r} declares no bound on rows per "
                f"{anchor_column!r} value; declare max_per_partition (the paper's "
                f"application constant K) to admit this template",
            )
        chain = [
            ChainStep(
                alias=anchor_alias,
                entity=anchor_entity,
                join_from_column=None,
                join_to_column=anchor_column,
                forward_fanout=anchor_fanout,
            )
        ]
        remaining = list(template.joins)
        in_chain = {anchor_alias}
        while remaining:
            tail = chain[-1]
            progressed = False
            for join in list(remaining):
                left_alias, left_entity, left_column = self._resolve_column(
                    join.left, alias_to_entity, f"{join}"
                )
                right_alias, right_entity, right_column = self._resolve_column(
                    join.right, alias_to_entity, f"{join}"
                )
                if left_alias == tail.alias and right_alias not in in_chain:
                    from_column, new_alias, new_entity, to_column = (
                        left_column, right_alias, right_entity, right_column
                    )
                elif right_alias == tail.alias and left_alias not in in_chain:
                    from_column, new_alias, new_entity, to_column = (
                        right_column, left_alias, left_entity, left_column
                    )
                else:
                    continue
                chain.append(self._make_step(tail, from_column, new_alias, new_entity, to_column))
                in_chain.add(new_alias)
                remaining.remove(join)
                progressed = True
                break
            if not progressed:
                raise QueryRejected(
                    RejectionReason.NON_LINEAR_JOIN,
                    "the JOIN clauses do not form a single linear chain starting at the "
                    "anchor table; SCADS pre-computed indexes materialise linear paths",
                )
        return chain

    def _make_step(
        self,
        tail: ChainStep,
        from_column: str,
        new_alias: str,
        new_entity: EntitySchema,
        to_column: str,
    ) -> ChainStep:
        # Forward traversal: previous-entity row -> rows of the new entity.
        if not new_entity.is_key_field(to_column) or new_entity.key_position(to_column) != 0:
            raise QueryRejected(
                RejectionReason.JOIN_NOT_KEY_PREFIX,
                f"join column {new_entity.name}.{to_column} is not the leading key "
                f"field, so the forward lookup is not a bounded contiguous range",
            )
        forward = new_entity.rows_per_value_bound(to_column)
        if forward is None:
            raise QueryRejected(
                RejectionReason.UNBOUNDED_JOIN,
                f"entity {new_entity.name!r} declares no bound on rows per "
                f"{to_column!r} value (the Twitter-follower case); this join's fan-out "
                f"grows with the user population",
            )
        # Reverse traversal (used by index maintenance): new-entity row -> rows
        # of the previous entity whose `from_column` matches.
        reverse = tail.entity.rows_per_value_bound(from_column)
        if reverse is None:
            raise QueryRejected(
                RejectionReason.UNBOUNDED_REVERSE_TRAVERSAL,
                f"entity {tail.entity.name!r} declares no bound on rows per "
                f"{from_column!r} value, so maintaining the index when "
                f"{new_entity.name!r} rows change would take unbounded work; declare a "
                f"column bound for {from_column!r}",
            )
        reverse_needs_index = not (
            tail.entity.is_key_field(from_column)
            and tail.entity.key_position(from_column) == 0
        )
        return ChainStep(
            alias=new_alias,
            entity=new_entity,
            join_from_column=from_column,
            join_to_column=to_column,
            forward_fanout=forward,
            reverse_fanout=reverse,
            reverse_needs_index=reverse_needs_index,
        )

    # -------------------------------------------------------------------- sort

    def _resolve_sort(
        self,
        template: QueryTemplate,
        alias_to_entity: Dict[str, EntitySchema],
        chain: List[ChainStep],
    ) -> Tuple[Optional[Tuple[str, str]], bool]:
        if template.order_by is None:
            return None, False
        alias, entity, column = self._resolve_column(
            template.order_by.column, alias_to_entity, f"{template.order_by}"
        )
        allowed_aliases = {chain[0].alias, chain[-1].alias}
        if alias not in allowed_aliases:
            raise QueryRejected(
                RejectionReason.ORDER_BY_OFF_CHAIN_END,
                f"ORDER BY {alias}.{column} refers to a mid-chain table; SCADS can only "
                f"embed a sort key from the anchor or final entity in the index",
            )
        return (alias, column), template.order_by.descending

    # -------------------------------------------------------------- predicates

    def _classify_predicates(
        self,
        template: QueryTemplate,
        alias_to_entity: Dict[str, EntitySchema],
        anchor_alias: str,
        anchor_column: str,
        extra_equalities: List[Tuple[str, Union[Parameter, Literal]]],
        sort_column: Optional[Tuple[str, str]],
        chain: List[ChainStep],
    ) -> Tuple[Optional[Predicate], List[Predicate], Optional[Tuple[str, str]]]:
        """Split WHERE into the anchor prefix, one optional range, and residual filters."""
        extra_columns = {column for column, _ in extra_equalities}
        range_predicate: Optional[Predicate] = None
        residual: List[Predicate] = []
        for predicate in template.where:
            alias, _, column = self._resolve_column(
                predicate.column, alias_to_entity, f"WHERE {predicate}"
            )
            is_anchor_equality = (
                alias == anchor_alias
                and predicate.is_equality
                and (column == anchor_column or column in extra_columns)
                and isinstance(predicate.value, (Parameter, Literal))
                and predicate.is_parameterised
            )
            if is_anchor_equality:
                continue
            if predicate.op in ("<", "<=", ">", ">=", "between"):
                if range_predicate is not None:
                    raise QueryRejected(
                        RejectionReason.MULTIPLE_RANGE_PREDICATES,
                        "only one range predicate can be mapped onto a contiguous index range",
                    )
                if sort_column is None:
                    # The range column becomes the sort column if it sits on an
                    # admissible entity (anchor or final).
                    if alias not in {chain[0].alias, chain[-1].alias}:
                        raise QueryRejected(
                            RejectionReason.RANGE_NOT_ON_SORT,
                            f"range predicate on mid-chain column {alias}.{column} cannot "
                            f"be part of the index key",
                        )
                    sort_column = (alias, column)
                elif (alias, column) != sort_column:
                    raise QueryRejected(
                        RejectionReason.RANGE_NOT_ON_SORT,
                        f"range predicate on {alias}.{column} does not match the ORDER BY "
                        f"column {sort_column[0]}.{sort_column[1]}, so it cannot be a "
                        f"contiguous range of the same index",
                    )
                range_predicate = predicate
                continue
            # Literal equality filters elsewhere become residual (post-)filters.
            residual.append(predicate)
        return range_predicate, residual, sort_column

    # ------------------------------------------------------------------ bounds

    def _compute_bounds(
        self, chain: List[ChainStep], limit: Optional[int], sort_on_final: bool
    ) -> Tuple[int, int, int]:
        result_bound = 1
        for step in chain:
            result_bound *= step.forward_fanout
        read_work = result_bound if limit is None else min(result_bound, limit)
        # Update work: for a change in chain entity k, maintenance walks
        # backwards to the anchor (product of reverse fan-outs) and forwards to
        # the final entity (product of forward fan-outs).  The admission bound
        # is the worst case over k.
        #
        # The final entity is exempt when it is a pure pointer target — joined
        # on its full primary key and contributing no sort field to the index
        # key.  Changes to such an entity never move existing index entries
        # (the index stores a pointer to it, exactly as Figure 3's
        # friends-of-friends row implies), so no maintenance is dispatched on
        # it and its huge backward product is irrelevant.
        update_work = 0
        last = len(chain) - 1
        for k in range(len(chain)):
            if (
                k == last
                and k > 0
                and chain[k].forward_fanout == 1
                and not sort_on_final
            ):
                continue
            backward = 1
            for j in range(1, k + 1):
                backward *= chain[j].reverse_fanout
            forward = 1
            for j in range(k + 1, len(chain)):
                forward *= chain[j].forward_fanout
            update_work = max(update_work, backward * forward)
        return result_bound, read_work, update_work

    def _enforce_bounds(
        self,
        result_bound: int,
        read_work: int,
        update_work: int,
        template: QueryTemplate,
    ) -> None:
        if template.limit is None and result_bound > self.max_read_work:
            raise QueryRejected(
                RejectionReason.READ_WORK_UNBOUNDED,
                f"the template's result bound is {result_bound} rows per execution and it "
                f"carries no LIMIT; add a LIMIT so each execution reads a bounded range "
                f"(admission cap is {self.max_read_work})",
            )
        if read_work > self.max_read_work:
            raise QueryRejected(
                RejectionReason.READ_WORK_EXCEEDED,
                f"per-execution read work {read_work} exceeds the admission cap "
                f"{self.max_read_work}",
            )
        if update_work > self.max_update_work:
            raise QueryRejected(
                RejectionReason.UPDATE_WORK_EXCEEDED,
                f"worst-case index maintenance work per base-table update is {update_work} "
                f"operations, exceeding the admission cap {self.max_update_work}; lower the "
                f"declared cardinality bounds or drop a join",
            )
