"""Tokenizer for the restricted SQL dialect.

The only unusual piece is parameter syntax: ``<user_id>`` denotes a template
parameter (as in the paper's example query), so ``<`` followed immediately by
an identifier and ``>`` lexes as a single PARAMETER token rather than a
comparison operator.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import List, Union


class LexError(ValueError):
    """Raised when the query text contains something the lexer cannot tokenize."""


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    PARAMETER = "parameter"
    OPERATOR = "operator"  # = < <= > >=
    STAR = "star"
    COMMA = "comma"
    DOT = "dot"
    LPAREN = "lparen"
    RPAREN = "rparen"
    EOF = "eof"


KEYWORDS = {
    "select", "from", "join", "on", "where", "and", "or",
    "order", "by", "asc", "desc", "limit", "between",
}


@dataclass(frozen=True)
class Token:
    """One lexical token with its original position for error messages."""

    token_type: TokenType
    value: Union[str, int, float]
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.token_type is TokenType.KEYWORD and self.value == word.lower()


_IDENTIFIER_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_NUMBER_RE = re.compile(r"\d+(\.\d+)?")
_PARAMETER_RE = re.compile(r"<\s*([A-Za-z_][A-Za-z0-9_]*)\s*>")
_WHITESPACE = " \t\r\n"


def tokenize(text: str) -> List[Token]:
    """Tokenize query text; raises :class:`LexError` on unknown characters."""
    tokens: List[Token] = []
    position = 0
    length = len(text)
    while position < length:
        char = text[position]
        if char in _WHITESPACE:
            position += 1
            continue
        parameter_match = _PARAMETER_RE.match(text, position)
        if parameter_match:
            tokens.append(Token(TokenType.PARAMETER, parameter_match.group(1), position))
            position = parameter_match.end()
            continue
        if char == "*":
            tokens.append(Token(TokenType.STAR, "*", position))
            position += 1
            continue
        if char == ",":
            tokens.append(Token(TokenType.COMMA, ",", position))
            position += 1
            continue
        if char == ".":
            tokens.append(Token(TokenType.DOT, ".", position))
            position += 1
            continue
        if char == "(":
            tokens.append(Token(TokenType.LPAREN, "(", position))
            position += 1
            continue
        if char == ")":
            tokens.append(Token(TokenType.RPAREN, ")", position))
            position += 1
            continue
        if char in "<>=":
            two = text[position:position + 2]
            if two in ("<=", ">="):
                tokens.append(Token(TokenType.OPERATOR, two, position))
                position += 2
                continue
            tokens.append(Token(TokenType.OPERATOR, char, position))
            position += 1
            continue
        if char in "'\"":
            end = text.find(char, position + 1)
            if end == -1:
                raise LexError(f"unterminated string literal at position {position}")
            tokens.append(Token(TokenType.STRING, text[position + 1:end], position))
            position = end + 1
            continue
        number_match = _NUMBER_RE.match(text, position)
        if number_match:
            raw = number_match.group(0)
            value: Union[int, float] = float(raw) if "." in raw else int(raw)
            tokens.append(Token(TokenType.NUMBER, value, position))
            position = number_match.end()
            continue
        identifier_match = _IDENTIFIER_RE.match(text, position)
        if identifier_match:
            word = identifier_match.group(0)
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, lowered, position))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, word, position))
            position = identifier_match.end()
            continue
        raise LexError(f"unexpected character {char!r} at position {position}")
    tokens.append(Token(TokenType.EOF, "", length))
    return tokens
