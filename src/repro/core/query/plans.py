"""Compiled artefacts: index specifications, query plans, maintenance rules.

A compiled query template yields

* an :class:`IndexSpec` — the materialised view that will answer the query,
* a :class:`QueryPlan` — how to turn bound parameters into one bounded
  contiguous range read of that index (plus bounded pointer dereferences),
* a list of :class:`MaintenanceRule` — the Figure-3 table rows saying which
  base-table changes must update the index, and
* zero or more :class:`ReverseIndexSpec` — auxiliary single-table indexes the
  maintenance engine needs for bounded reverse traversals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

INDEX_NAMESPACE_PREFIX = "index:"
REVERSE_NAMESPACE_PREFIX = "revidx:"
ENTITY_NAMESPACE_PREFIX = "entity:"


def entity_namespace(entity_name: str) -> str:
    """Storage namespace for an entity set."""
    return ENTITY_NAMESPACE_PREFIX + entity_name


def index_namespace(index_name: str) -> str:
    """Storage namespace for a query index."""
    return INDEX_NAMESPACE_PREFIX + index_name


def reverse_index_namespace(name: str) -> str:
    """Storage namespace for an auxiliary reverse index."""
    return REVERSE_NAMESPACE_PREFIX + name


@dataclass(frozen=True)
class CompiledStep:
    """One hop of the index's join path (mirrors the analyzer's ChainStep)."""

    entity: str
    join_from_column: Optional[str]
    join_to_column: Optional[str]
    forward_fanout: int
    reverse_fanout: int
    reverse_index: Optional[str] = None  # name of the auxiliary reverse index, if needed


@dataclass(frozen=True)
class ReverseIndexSpec:
    """An auxiliary index of ``entity`` keyed by ``column`` then the entity key.

    Needed when index maintenance must answer "which rows of ``entity`` have
    ``column`` = v?" and ``column`` is not the entity's leading key field.
    """

    name: str
    entity: str
    column: str

    @property
    def namespace(self) -> str:
        return reverse_index_namespace(self.name)


@dataclass(frozen=True)
class MaintenanceRule:
    """One row of the paper's Figure-3 maintenance table.

    ``field`` is ``"*"`` when any change to the table (insert/update/delete)
    can affect the index, or a specific field name when only changes to that
    field matter (e.g. ``profiles.birthday`` for the birthday index).
    ``source`` optionally names a narrower registered index that the rule's
    table is itself the base of (the paper's cascading-index presentation of
    the friends-of-friends row).
    """

    index_name: str
    table: str
    field: str
    source: Optional[str] = None

    def display_table(self) -> str:
        """The table name as Figure 3 would print it (cascade source if any)."""
        return self.source if self.source is not None else self.table


@dataclass
class IndexSpec:
    """A materialised view answering one query template.

    Index keys are laid out as::

        (anchor_value, extra_anchor_values..., [sort_value], final_key...)

    and the stored value is ``{"support": n}`` — the number of distinct join
    paths producing the entry, which keeps incremental maintenance correct
    when multiple paths reach the same (anchor, final) pair.
    """

    name: str
    query_name: str
    anchor_entity: str
    anchor_column: str
    extra_anchor_columns: List[str]
    steps: List[CompiledStep]
    final_entity: str
    final_key_fields: List[str]
    sort_owner: Optional[str]  # "anchor" or "final"
    sort_column: Optional[str]
    result_bound: int
    update_work_bound: int

    @property
    def namespace(self) -> str:
        return index_namespace(self.name)

    @property
    def has_sort(self) -> bool:
        return self.sort_column is not None

    def key_length(self) -> int:
        """Number of components in a full index key."""
        return (
            1
            + len(self.extra_anchor_columns)
            + (1 if self.has_sort else 0)
            + len(self.final_key_fields)
        )

    def prefix_length(self) -> int:
        """Number of leading key components fixed by the anchor parameters."""
        return 1 + len(self.extra_anchor_columns)

    def entities(self) -> List[str]:
        """Distinct entity names along the path, anchor first."""
        seen: List[str] = []
        for step in self.steps:
            if step.entity not in seen:
                seen.append(step.entity)
        return seen


@dataclass(frozen=True)
class PrefixComponent:
    """One component of the query plan's index-key prefix."""

    kind: str  # "parameter" or "literal"
    value: Any  # parameter name or literal value


@dataclass(frozen=True)
class RangeBound:
    """A bound on the sort component of the index key."""

    op: str  # '<', '<=', '>', '>=', 'between'
    low: Optional[PrefixComponent] = None
    high: Optional[PrefixComponent] = None


@dataclass
class QueryPlan:
    """How to execute a compiled query: one bounded range read + dereferences."""

    query_name: str
    index_name: str
    prefix: List[PrefixComponent]
    range_bound: Optional[RangeBound]
    limit: Optional[int]
    descending: bool
    dereference: bool
    final_entity: str
    final_key_length: int
    selected_columns: List[str] = field(default_factory=list)  # empty = all fields

    @property
    def namespace(self) -> str:
        return index_namespace(self.index_name)

    def parameter_names(self) -> List[str]:
        """Every parameter the plan needs bound at execution time."""
        names = [c.value for c in self.prefix if c.kind == "parameter"]
        if self.range_bound is not None:
            for component in (self.range_bound.low, self.range_bound.high):
                if component is not None and component.kind == "parameter":
                    names.append(component.value)
        return names


@dataclass
class CompiledQuery:
    """Everything produced by compiling one admitted query template."""

    name: str
    index_spec: IndexSpec
    plan: QueryPlan
    maintenance_rules: List[MaintenanceRule]
    reverse_indexes: List[ReverseIndexSpec]
    text: str = ""
