"""AST node types for the restricted SQL query templates."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union


@dataclass(frozen=True)
class ColumnRef:
    """A reference to ``alias.column`` (or a bare ``column``)."""

    table_alias: Optional[str]
    column: str

    def __str__(self) -> str:
        if self.table_alias:
            return f"{self.table_alias}.{self.column}"
        return self.column


@dataclass(frozen=True)
class Parameter:
    """A query-template parameter, written ``<name>`` in the SQL text."""

    name: str

    def __str__(self) -> str:
        return f"<{self.name}>"


@dataclass(frozen=True)
class Literal:
    """A constant value appearing in the template text."""

    value: Union[str, int, float]

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class SelectItem:
    """One projected item: a column or ``alias.*`` / ``*``."""

    column: Optional[ColumnRef] = None
    star_alias: Optional[str] = None  # alias for "alias.*"; None+is_star for bare "*"
    is_star: bool = False

    def __str__(self) -> str:
        if self.is_star:
            return f"{self.star_alias}.*" if self.star_alias else "*"
        return str(self.column)


@dataclass(frozen=True)
class Predicate:
    """A WHERE condition: ``column op value`` or ``column BETWEEN lo AND hi``."""

    column: ColumnRef
    op: str  # '=', '<', '<=', '>', '>=', 'between'
    value: Union[Parameter, Literal]
    value_high: Optional[Union[Parameter, Literal]] = None  # only for BETWEEN

    @property
    def is_equality(self) -> bool:
        return self.op == "="

    @property
    def is_parameterised(self) -> bool:
        if isinstance(self.value, Parameter):
            return True
        return isinstance(self.value_high, Parameter)

    def __str__(self) -> str:
        if self.op == "between":
            return f"{self.column} BETWEEN {self.value} AND {self.value_high}"
        return f"{self.column} {self.op} {self.value}"


@dataclass(frozen=True)
class JoinClause:
    """``JOIN table alias ON left = right``."""

    table: str
    alias: str
    left: ColumnRef
    right: ColumnRef

    def __str__(self) -> str:
        return f"JOIN {self.table} {self.alias} ON {self.left} = {self.right}"


@dataclass(frozen=True)
class OrderBy:
    """``ORDER BY column [ASC|DESC]``."""

    column: ColumnRef
    descending: bool = False

    def __str__(self) -> str:
        return f"ORDER BY {self.column} {'DESC' if self.descending else 'ASC'}"


@dataclass
class QueryTemplate:
    """A parsed query template, prior to semantic analysis."""

    select: List[SelectItem]
    from_table: str
    from_alias: str
    joins: List[JoinClause] = field(default_factory=list)
    where: List[Predicate] = field(default_factory=list)
    order_by: Optional[OrderBy] = None
    limit: Optional[int] = None
    text: str = ""

    def aliases(self) -> dict:
        """Mapping from alias to table name for every table in the template."""
        mapping = {self.from_alias: self.from_table}
        for join in self.joins:
            mapping[join.alias] = join.table
        return mapping

    def parameters(self) -> List[str]:
        """Parameter names in the order they appear in WHERE."""
        names = []
        for predicate in self.where:
            for value in (predicate.value, predicate.value_high):
                if isinstance(value, Parameter) and value.name not in names:
                    names.append(value.name)
        return names
