"""Execution of compiled query plans.

A plan executes as exactly one bounded contiguous range read of its index
(Section 3.1's guarantee) followed by at most ``limit``/``result_bound``
pointer dereferences of the final entity.  The executor is storage-agnostic:
it is handed two callables by the engine, so the same code runs against the
consistency-aware read path, the quorum baseline, or a plain dict in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.query.plans import PrefixComponent, QueryPlan
from repro.storage.records import Key, key_part_successor, prefix_range

# (namespace, start, end, limit, reverse) -> (list of (key, value_dict), latency)
RangeReadFn = Callable[[str, Optional[Key], Optional[Key], Optional[int], bool],
                       Tuple[List[Tuple[Key, Dict[str, Any]]], float]]
# (entity_name, key) -> (row dict or None, latency)
EntityGetFn = Callable[[str, Key], Tuple[Optional[Dict[str, Any]], float]]
# (entity_name, keys) -> {key: (row dict or None, latency)} — batched variant;
# the engine groups keys by replica group and issues one multiget per group.
EntityGetManyFn = Callable[[str, List[Key]],
                           Dict[Key, Tuple[Optional[Dict[str, Any]], float]]]


class ExecutionError(RuntimeError):
    """Raised when a plan cannot be executed (e.g. missing parameter)."""


@dataclass
class QueryResult:
    """The rows a query returned plus what it cost to produce them."""

    rows: List[Dict[str, Any]]
    latency: float
    index_entries_read: int
    dereferences: int

    def __len__(self) -> int:
        return len(self.rows)


class QueryExecutor:
    """Executes :class:`QueryPlan` objects against pluggable storage callables."""

    def __init__(self, range_read: RangeReadFn, entity_get: EntityGetFn,
                 entity_get_many: Optional[EntityGetManyFn] = None) -> None:
        self._range_read = range_read
        self._entity_get = entity_get
        self._entity_get_many = entity_get_many

    # ----------------------------------------------------------------- execute

    def execute(self, plan: QueryPlan, params: Dict[str, Any]) -> QueryResult:
        """Run a plan with the given parameter bindings."""
        prefix = self._bind_prefix(plan, params)
        start, end = self._range_keys(plan, prefix, params)
        entries, range_latency = self._range_read(
            plan.namespace, start, end, plan.limit, plan.descending
        )
        if plan.limit is not None:
            entries = entries[: plan.limit]
        rows: List[Dict[str, Any]] = []
        dereference_latency = 0.0
        dereferences = 0
        fetched: Optional[Dict[Key, Tuple[Optional[Dict[str, Any]], float]]] = None
        if plan.dereference and self._entity_get_many is not None and entries:
            # Batched dereference: the whole bounded list goes down in one
            # call, letting the storage layer collapse it into per-group
            # multigets instead of one request per entry.
            fetched = self._entity_get_many(
                plan.final_entity,
                [key[-plan.final_key_length:] for key, _ in entries],
            )
        for key, index_value in entries:
            final_key = key[-plan.final_key_length:]
            if plan.dereference:
                if fetched is not None:
                    row, latency = fetched[final_key]
                else:
                    row, latency = self._entity_get(plan.final_entity, final_key)
                dereferences += 1
                # Dereferences of different index entries hit independent
                # replica groups; model them as parallel fetches.
                dereference_latency = max(dereference_latency, latency)
                if row is None:
                    continue
            else:
                row = dict(index_value) if isinstance(index_value, dict) else {}
            if plan.selected_columns:
                row = {column: row.get(column) for column in plan.selected_columns}
            rows.append(row)
        return QueryResult(
            rows=rows,
            latency=range_latency + dereference_latency,
            index_entries_read=len(entries),
            dereferences=dereferences,
        )

    # ------------------------------------------------------------------ binding

    @staticmethod
    def _bind_component(component: PrefixComponent, params: Dict[str, Any]) -> Any:
        if component.kind == "literal":
            return component.value
        if component.value not in params:
            raise ExecutionError(f"missing query parameter {component.value!r}")
        return params[component.value]

    def _bind_prefix(self, plan: QueryPlan, params: Dict[str, Any]) -> Key:
        return tuple(self._bind_component(component, params) for component in plan.prefix)

    def _range_keys(
        self,
        plan: QueryPlan,
        prefix: Key,
        params: Dict[str, Any],
    ) -> Tuple[Optional[Key], Optional[Key]]:
        """Start/end keys for the single contiguous index scan.

        Strict bounds are encoded directly into the key range: a ``>`` low
        bound starts the range at the successor of the bound value, and a
        ``<`` high bound ends it exactly at the bound value (exclusive), so no
        post-filtering is ever needed.
        """
        base = prefix_range(plan.namespace, prefix)
        bound = plan.range_bound
        if bound is None:
            return base.start, base.end
        start: Optional[Key] = base.start
        end: Optional[Key] = base.end
        if bound.low is not None:
            low_value = self._bind_component(bound.low, params)
            if bound.op == ">":
                start = prefix + (key_part_successor(low_value),)
            else:  # '>=' or the low side of BETWEEN (inclusive)
                start = prefix + (low_value,)
        if bound.high is not None:
            high_value = self._bind_component(bound.high, params)
            if bound.op == "<":
                end = prefix + (high_value,)
            else:  # '<=' or the high side of BETWEEN (inclusive)
                end = prefix + (key_part_successor(high_value),)
        return start, end
