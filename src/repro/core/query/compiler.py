"""Compilation of analyzed query templates into index specs, plans, and
maintenance rules.

The compiler is deliberately deterministic: the same template always produces
the same index layout and the same Figure-3 rows, which is what the F3
reproduction bench checks against the paper's table.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.query.analyzer import AnalyzedQuery
from repro.core.query.ast import Parameter, Predicate
from repro.core.query.plans import (
    CompiledQuery,
    CompiledStep,
    IndexSpec,
    MaintenanceRule,
    PrefixComponent,
    QueryPlan,
    RangeBound,
    ReverseIndexSpec,
)


class CompileError(ValueError):
    """Raised when an analyzed query cannot be compiled (internal invariant)."""


class QueryCompiler:
    """Turns :class:`AnalyzedQuery` objects into :class:`CompiledQuery` objects.

    The compiler also remembers every index it has produced so that the
    maintenance table can present cascading sources (an index whose base path
    is a strict prefix of a longer index's path, as the paper's Figure 3 does
    for the friends-of-friends index).
    """

    def __init__(self) -> None:
        self._compiled: Dict[str, CompiledQuery] = {}

    # ----------------------------------------------------------------- compile

    def compile(self, name: str, analyzed: AnalyzedQuery) -> CompiledQuery:
        """Compile an admitted query template under the given template name."""
        if not name:
            raise CompileError("query templates must be registered under a non-empty name")
        if name in self._compiled:
            raise CompileError(f"a query template named {name!r} is already registered")
        index_spec = self._build_index_spec(name, analyzed)
        reverse_indexes = self._build_reverse_indexes(analyzed, index_spec)
        self._attach_reverse_indexes(index_spec, analyzed, reverse_indexes)
        plan = self._build_plan(name, analyzed, index_spec)
        rules = self._build_maintenance_rules(analyzed, index_spec, reverse_indexes)
        compiled = CompiledQuery(
            name=name,
            index_spec=index_spec,
            plan=plan,
            maintenance_rules=rules,
            reverse_indexes=reverse_indexes,
            text=analyzed.template.text,
        )
        self._compiled[name] = compiled
        return compiled

    def compiled_queries(self) -> List[CompiledQuery]:
        return list(self._compiled.values())

    # --------------------------------------------------------------- index spec

    def _build_index_spec(self, name: str, analyzed: AnalyzedQuery) -> IndexSpec:
        anchor = analyzed.anchor
        final = analyzed.final
        sort_owner: Optional[str] = None
        sort_column: Optional[str] = None
        if analyzed.sort_column is not None:
            sort_alias, sort_column = analyzed.sort_column
            sort_owner = "anchor" if sort_alias == anchor.alias else "final"
        steps = [
            CompiledStep(
                entity=step.entity.name,
                join_from_column=step.join_from_column,
                join_to_column=step.join_to_column,
                forward_fanout=step.forward_fanout,
                reverse_fanout=step.reverse_fanout,
            )
            for step in analyzed.chain
        ]
        return IndexSpec(
            name=f"idx_{name}",
            query_name=name,
            anchor_entity=anchor.entity.name,
            anchor_column=analyzed.anchor_column,
            extra_anchor_columns=[column for column, _ in analyzed.extra_anchor_equalities],
            steps=steps,
            final_entity=final.entity.name,
            final_key_fields=list(final.entity.key_field_names),
            sort_owner=sort_owner,
            sort_column=sort_column,
            result_bound=analyzed.result_bound,
            update_work_bound=analyzed.update_work_bound,
        )

    # ---------------------------------------------------------- reverse indexes

    def _build_reverse_indexes(
        self, analyzed: AnalyzedQuery, index_spec: IndexSpec
    ) -> List[ReverseIndexSpec]:
        specs: List[ReverseIndexSpec] = []
        seen = set()
        for position, step in enumerate(analyzed.chain):
            if position == 0 or not step.reverse_needs_index:
                continue
            previous = analyzed.chain[position - 1]
            assert step.join_from_column is not None
            name = f"{previous.entity.name}_by_{step.join_from_column}"
            if name in seen:
                continue
            seen.add(name)
            specs.append(
                ReverseIndexSpec(
                    name=name,
                    entity=previous.entity.name,
                    column=step.join_from_column,
                )
            )
        return specs

    @staticmethod
    def _attach_reverse_indexes(
        index_spec: IndexSpec,
        analyzed: AnalyzedQuery,
        reverse_indexes: List[ReverseIndexSpec],
    ) -> None:
        by_entity_column = {(spec.entity, spec.column): spec.name for spec in reverse_indexes}
        updated_steps = []
        for position, step in enumerate(index_spec.steps):
            reverse_name = None
            if position > 0 and step.join_from_column is not None:
                previous_entity = index_spec.steps[position - 1].entity
                reverse_name = by_entity_column.get((previous_entity, step.join_from_column))
            updated_steps.append(
                CompiledStep(
                    entity=step.entity,
                    join_from_column=step.join_from_column,
                    join_to_column=step.join_to_column,
                    forward_fanout=step.forward_fanout,
                    reverse_fanout=step.reverse_fanout,
                    reverse_index=reverse_name,
                )
            )
        index_spec.steps = updated_steps

    # -------------------------------------------------------------------- plan

    def _build_plan(self, name: str, analyzed: AnalyzedQuery, index_spec: IndexSpec) -> QueryPlan:
        prefix = [PrefixComponent(kind="parameter", value=analyzed.anchor_parameter)]
        for _, value in analyzed.extra_anchor_equalities:
            if isinstance(value, Parameter):
                prefix.append(PrefixComponent(kind="parameter", value=value.name))
            else:
                prefix.append(PrefixComponent(kind="literal", value=value.value))
        range_bound = self._build_range_bound(analyzed.range_predicate)
        selected = self._selected_columns(analyzed)
        return QueryPlan(
            query_name=name,
            index_name=index_spec.name,
            prefix=prefix,
            range_bound=range_bound,
            limit=analyzed.limit,
            descending=analyzed.sort_descending,
            dereference=True,
            final_entity=index_spec.final_entity,
            final_key_length=len(index_spec.final_key_fields),
            selected_columns=selected,
        )

    @staticmethod
    def _build_range_bound(predicate: Optional[Predicate]) -> Optional[RangeBound]:
        if predicate is None:
            return None

        def component(value) -> PrefixComponent:
            if isinstance(value, Parameter):
                return PrefixComponent(kind="parameter", value=value.name)
            return PrefixComponent(kind="literal", value=value.value)

        if predicate.op == "between":
            return RangeBound(op="between", low=component(predicate.value),
                              high=component(predicate.value_high))
        if predicate.op in ("<", "<="):
            return RangeBound(op=predicate.op, high=component(predicate.value))
        if predicate.op in (">", ">="):
            return RangeBound(op=predicate.op, low=component(predicate.value))
        raise CompileError(f"unexpected range operator {predicate.op!r}")

    @staticmethod
    def _selected_columns(analyzed: AnalyzedQuery) -> List[str]:
        columns: List[str] = []
        for item in analyzed.template.select:
            if item.is_star:
                return []  # all fields of the final entity
            if item.column is not None:
                columns.append(item.column.column)
        return columns

    # --------------------------------------------------------------- maintenance

    def _build_maintenance_rules(
        self,
        analyzed: AnalyzedQuery,
        index_spec: IndexSpec,
        reverse_indexes: List[ReverseIndexSpec],
    ) -> List[MaintenanceRule]:
        # Gather, per entity, the non-key fields whose changes affect the index
        # key (join columns, anchor columns, sort column).  Key-field changes
        # are row inserts/deletes and are represented by "*".
        relevant_non_key: Dict[str, List[str]] = {}
        for position, step in enumerate(analyzed.chain):
            entity = step.entity
            columns = set()
            if position == 0:
                columns.add(analyzed.anchor_column)
                columns.update(column for column, _ in analyzed.extra_anchor_equalities)
            if step.join_to_column is not None:
                columns.add(step.join_to_column)
            if position + 1 < len(analyzed.chain):
                next_step = analyzed.chain[position + 1]
                if next_step.join_from_column is not None:
                    columns.add(next_step.join_from_column)
            if (
                analyzed.sort_column is not None
                and analyzed.sort_column[0] == step.alias
            ):
                columns.add(analyzed.sort_column[1])
            non_key = sorted(c for c in columns if not entity.is_key_field(c))
            relevant_non_key.setdefault(entity.name, [])
            for column in non_key:
                if column not in relevant_non_key[entity.name]:
                    relevant_non_key[entity.name].append(column)

        # A final entity that is a pure pointer target (joined on its full key,
        # no sort field in the index key) needs no maintenance rule at all:
        # the index only stores a pointer to it, so its own changes never move
        # existing entries.  This reproduces Figure 3, which has no
        # "friends of friends index / profiles" row.
        pointer_target: Optional[str] = None
        if len(analyzed.chain) > 1:
            final_step = analyzed.chain[-1]
            sort_on_final = (
                analyzed.sort_column is not None
                and analyzed.sort_column[0] == final_step.alias
            )
            final_appears_earlier = any(
                step.entity.name == final_step.entity.name
                for step in analyzed.chain[:-1]
            )
            if (
                final_step.forward_fanout == 1
                and not sort_on_final
                and not final_appears_earlier
                and not relevant_non_key.get(final_step.entity.name)
            ):
                pointer_target = final_step.entity.name

        rules: List[MaintenanceRule] = []
        seen: set = set()
        for step in analyzed.chain:
            entity_name = step.entity.name
            if entity_name in seen or entity_name == pointer_target:
                continue
            seen.add(entity_name)
            non_key = relevant_non_key.get(entity_name, [])
            cascade_source = self._cascade_source(entity_name, index_spec)
            if non_key:
                # Only changes to these specific fields (including setting them
                # at row insert time) can move the entity's contribution to the
                # index key — Figure 3's "profiles / birthday" row.
                for column in non_key:
                    rules.append(
                        MaintenanceRule(
                            index_name=index_spec.name,
                            table=entity_name,
                            field=column,
                            source=cascade_source,
                        )
                    )
            else:
                # Every relevant column is a key column, so any insert/delete
                # of a row changes the set of join paths — Figure 3's "*" rows.
                rules.append(
                    MaintenanceRule(
                        index_name=index_spec.name,
                        table=entity_name,
                        field="*",
                        source=cascade_source,
                    )
                )
        for reverse in reverse_indexes:
            rules.append(
                MaintenanceRule(index_name=reverse.name, table=reverse.entity, field="*")
            )
        return rules

    def _cascade_source(self, entity_name: str, index_spec: IndexSpec) -> Optional[str]:
        """Name of an existing narrower index over the same base entity path.

        Reproduces the paper's Figure-3 presentation where the
        friends-of-friends index is listed as maintained from the friend
        index: when an index's join path traverses the same entity more than
        once (friendships twice for friends-of-friends) and a previously
        compiled, shorter index materialises exactly that entity's per-anchor
        rows, report that index as the cascade source.  Actual maintenance
        still recomputes from base tables (see
        ``repro.core.index.maintenance``), so this is reporting only.
        """
        occurrences = sum(1 for step in index_spec.steps if step.entity == entity_name)
        if occurrences < 2:
            return None
        for other in self._compiled.values():
            other_spec = other.index_spec
            if other_spec.name == index_spec.name:
                continue
            if (
                other_spec.anchor_entity == entity_name
                and other_spec.anchor_entity == index_spec.anchor_entity
                and len(other_spec.steps) < len(index_spec.steps)
                and other_spec.final_entity == entity_name
            ):
                return other_spec.name
        return None
