"""Deadline-ordered asynchronous index maintenance.

Section 3.3.2: "The system will maintain a priority queue of updates, where
the deadline for propagation is used as the priority.  Not only does the
priority queue allow the system to complete important updates first, but it
allows us to easily detect when it is in danger of getting behind schedule."

Every base-table write enqueues an :class:`UpdateTask` whose deadline is the
write time plus the staleness bound declared for the data it touches.  A
drain process (scheduled on the shared simulator) applies tasks in deadline
order at a throughput proportional to the cluster size, so the updater is the
component that actually converts "we bought more machines" into "staleness
bounds hold again."  A FIFO mode exists solely for the ablation experiment.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core.index.maintenance import EntityWrite, IndexMaintainer
from repro.sim.simulator import Simulator


@dataclass(order=True)
class UpdateTask:
    """One pending index-maintenance task, ordered by its propagation deadline."""

    sort_key: float
    seq: int
    write: EntityWrite = field(compare=False)
    enqueue_time: float = field(compare=False, default=0.0)
    deadline: float = field(compare=False, default=0.0)
    completion_time: Optional[float] = field(compare=False, default=None)

    @property
    def lag(self) -> Optional[float]:
        """Seconds between the write and the completed index update."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.enqueue_time

    @property
    def met_deadline(self) -> Optional[bool]:
        if self.completion_time is None:
            return None
        return self.completion_time <= self.deadline


@dataclass
class UpdaterStats:
    """Aggregate statistics over completed maintenance tasks."""

    completed: int = 0
    deadline_misses: int = 0
    max_lag: float = 0.0
    total_lag: float = 0.0

    @property
    def mean_lag(self) -> float:
        return self.total_lag / self.completed if self.completed else 0.0

    @property
    def miss_rate(self) -> float:
        return self.deadline_misses / self.completed if self.completed else 0.0


class AsyncIndexUpdater:
    """Applies index maintenance asynchronously with deadline priorities.

    Args:
        simulator: shared discrete-event simulator.
        maintainer: computes and applies the per-write index deltas.
        updates_per_second_per_node: maintenance throughput contributed by
            each storage node; total capacity is this times ``node_count_fn()``.
        node_count_fn: callable returning the current number of alive storage
            nodes (the cluster supplies this, so scaling changes capacity).
        drain_interval: how often the drain process wakes up.
        default_staleness_bound: deadline used for writes whose data has no
            declared read-consistency bound (the paper's "ten minutes" example).
        fifo: process tasks in arrival order instead of deadline order
            (ablation of the priority queue).
    """

    def __init__(
        self,
        simulator: Simulator,
        maintainer: IndexMaintainer,
        node_count_fn: Callable[[], int],
        updates_per_second_per_node: float = 200.0,
        drain_interval: float = 0.25,
        default_staleness_bound: float = 600.0,
        fifo: bool = False,
    ) -> None:
        if updates_per_second_per_node <= 0:
            raise ValueError("updates_per_second_per_node must be positive")
        if drain_interval <= 0:
            raise ValueError("drain_interval must be positive")
        if default_staleness_bound <= 0:
            raise ValueError("default_staleness_bound must be positive")
        self._sim = simulator
        self._maintainer = maintainer
        self._node_count_fn = node_count_fn
        self.updates_per_second_per_node = updates_per_second_per_node
        self.drain_interval = drain_interval
        self.default_staleness_bound = default_staleness_bound
        self.fifo = fifo
        self._heap: List[UpdateTask] = []
        self._seq = itertools.count()
        self._stats = UpdaterStats()
        self._completed_tasks: List[UpdateTask] = []
        self._cancel_drain: Optional[Callable[[], None]] = None
        self._carryover_capacity = 0.0

    # ------------------------------------------------------------------ control

    def start(self) -> None:
        """Begin the periodic drain process (idempotent)."""
        if self._cancel_drain is None:
            self._cancel_drain = self._sim.schedule_periodic(
                self.drain_interval, self._drain, name="index-updater"
            )

    def stop(self) -> None:
        """Stop draining (pending tasks stay queued)."""
        if self._cancel_drain is not None:
            self._cancel_drain()
            self._cancel_drain = None

    # ------------------------------------------------------------------ enqueue

    def enqueue(self, write: EntityWrite, staleness_bound: Optional[float] = None) -> UpdateTask:
        """Queue the index maintenance implied by one base-table write."""
        bound = self.default_staleness_bound if staleness_bound is None else staleness_bound
        if bound <= 0:
            raise ValueError("staleness bound must be positive")
        now = self._sim.now
        deadline = now + bound
        sort_key = now if self.fifo else deadline
        task = UpdateTask(
            sort_key=sort_key,
            seq=next(self._seq),
            write=write,
            enqueue_time=now,
            deadline=deadline,
        )
        heapq.heappush(self._heap, task)
        return task

    # -------------------------------------------------------------------- drain

    def capacity_per_interval(self) -> float:
        """How many tasks one drain tick can process at current cluster size."""
        nodes = max(self._node_count_fn(), 1)
        return self.updates_per_second_per_node * nodes * self.drain_interval

    def _drain(self) -> None:
        budget = self.capacity_per_interval() + self._carryover_capacity
        processed = 0
        while self._heap and budget >= 1.0:
            task = heapq.heappop(self._heap)
            self._maintainer.apply(task.write)
            task.completion_time = self._sim.now
            self._record_completion(task)
            budget -= 1.0
            processed += 1
        # Fractional leftover capacity carries over so very small clusters
        # still make progress; bound it to one interval's worth.
        self._carryover_capacity = min(budget, self.capacity_per_interval())

    def drain_now(self, max_tasks: Optional[int] = None) -> int:
        """Synchronously process queued tasks (used by tests and flush paths)."""
        processed = 0
        while self._heap and (max_tasks is None or processed < max_tasks):
            task = heapq.heappop(self._heap)
            self._maintainer.apply(task.write)
            task.completion_time = self._sim.now
            self._record_completion(task)
            processed += 1
        return processed

    def _record_completion(self, task: UpdateTask) -> None:
        self._completed_tasks.append(task)
        self._stats.completed += 1
        lag = task.lag or 0.0
        self._stats.total_lag += lag
        self._stats.max_lag = max(self._stats.max_lag, lag)
        if task.met_deadline is False:
            self._stats.deadline_misses += 1

    # ------------------------------------------------------------------- status

    def pending_count(self) -> int:
        """Tasks enqueued but not yet applied."""
        return len(self._heap)

    def stats(self) -> UpdaterStats:
        return self._stats

    def completed_tasks(self) -> List[UpdateTask]:
        return list(self._completed_tasks)

    def earliest_deadline(self) -> Optional[float]:
        """The most urgent pending deadline (None when the queue is empty)."""
        if not self._heap:
            return None
        return min(task.deadline for task in self._heap[: 50]) if self.fifo else self._heap[0].deadline

    def behind_schedule(self, margin: float = 0.0) -> bool:
        """True when the most urgent pending deadline is already (nearly) due.

        This is the early-warning signal the paper says the priority queue
        provides; the provisioning controller treats it as a scale-up trigger.
        """
        earliest = self.earliest_deadline()
        if earliest is None:
            return False
        return self._sim.now + margin >= earliest
