"""Incremental index maintenance.

For a single base-table write (insert, update, or delete of one row) the
maintainer computes the set of index entries whose support changes.  The work
is bounded by the product of the declared cardinality bounds along the
query's join chain — the quantity the analyzer already checked against the
admission cap — so every maintenance invocation is O(K) as the paper requires.

Entries carry a *support count* (how many distinct join paths produce them),
which keeps incremental maintenance correct when several paths lead to the
same (anchor, final) pair — e.g. two mutual friends both connecting a user to
the same friend-of-friend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Protocol, Set, Tuple

from repro.core.query.plans import (
    CompiledQuery,
    IndexSpec,
    ReverseIndexSpec,
    )
from repro.core.schema import EntitySchema, SchemaRegistry
from repro.storage.records import Key


class StorageAdapter(Protocol):
    """The storage operations index maintenance needs.

    The SCADS engine implements this against the router (so maintenance work
    consumes real simulated cluster capacity); unit tests implement it with
    plain dictionaries.
    """

    def entity_rows_by_prefix(self, entity: str, prefix: Key) -> List[Dict[str, Any]]:
        """All rows of ``entity`` whose key starts with ``prefix``."""

    def entity_row(self, entity: str, key: Key) -> Optional[Dict[str, Any]]:
        """One row of ``entity`` by full key, or None."""

    def reverse_keys(self, reverse_index: str, value: Any) -> List[Key]:
        """Entity keys recorded in a reverse index under ``value``."""

    def adjust_index_support(self, namespace: str, key: Key, delta: int) -> None:
        """Add ``delta`` to an index entry's support count (delete at <= 0)."""

    def put_reverse_entry(self, namespace: str, key: Key) -> None:
        """Insert an entry into an auxiliary reverse index."""

    def delete_reverse_entry(self, namespace: str, key: Key) -> None:
        """Remove an entry from an auxiliary reverse index."""


@dataclass(frozen=True)
class EntityWrite:
    """One base-table write: the row before and after.

    ``old_row is None`` for inserts, ``new_row is None`` for deletes.
    """

    entity: str
    old_row: Optional[Dict[str, Any]]
    new_row: Optional[Dict[str, Any]]

    def __post_init__(self) -> None:
        if self.old_row is None and self.new_row is None:
            raise ValueError("an entity write needs at least one of old_row / new_row")

    def changed_fields(self) -> Set[str]:
        """Fields whose value differs between old and new rows."""
        old = self.old_row or {}
        new = self.new_row or {}
        fields = set(old) | set(new)
        return {f for f in fields if old.get(f) != new.get(f)}

    @property
    def is_insert(self) -> bool:
        return self.old_row is None

    @property
    def is_delete(self) -> bool:
        return self.new_row is None


@dataclass
class MaintenanceResult:
    """What one maintenance invocation did (for bounded-work accounting)."""

    index_ops: int = 0
    lookup_ops: int = 0

    @property
    def total_ops(self) -> int:
        return self.index_ops + self.lookup_ops


class IndexMaintainer:
    """Applies the compiled maintenance rules for every registered query."""

    def __init__(self, registry: SchemaRegistry, storage: StorageAdapter) -> None:
        self._registry = registry
        self._storage = storage
        self._queries: List[CompiledQuery] = []
        self._reverse_indexes: Dict[str, ReverseIndexSpec] = {}
        # entity name -> reverse index specs that index it
        self._reverse_by_entity: Dict[str, List[ReverseIndexSpec]] = {}
        # entity name -> compiled queries whose chain contains it
        self._queries_by_entity: Dict[str, List[CompiledQuery]] = {}

    # ------------------------------------------------------------- registration

    def register(self, compiled: CompiledQuery) -> None:
        """Register a compiled query so its index is maintained from now on."""
        self._queries.append(compiled)
        for reverse in compiled.reverse_indexes:
            if reverse.name not in self._reverse_indexes:
                self._reverse_indexes[reverse.name] = reverse
                self._reverse_by_entity.setdefault(reverse.entity, []).append(reverse)
        for entity in compiled.index_spec.entities():
            self._queries_by_entity.setdefault(entity, []).append(compiled)

    def registered_queries(self) -> List[CompiledQuery]:
        return list(self._queries)

    def reverse_index_specs(self) -> List[ReverseIndexSpec]:
        return list(self._reverse_indexes.values())

    # -------------------------------------------------------------- maintenance

    def relevant_indexes(self, write: EntityWrite) -> List[CompiledQuery]:
        """The compiled queries whose maintenance rules match this write.

        Dispatch follows the Figure-3 table: a rule with field ``"*"`` fires
        on any write to its table, a field-specific rule only when that field
        changed.
        """
        changed = write.changed_fields()
        matched = []
        for compiled in self._queries_by_entity.get(write.entity, []):
            for rule in compiled.maintenance_rules:
                if rule.table != write.entity or rule.index_name != compiled.index_spec.name:
                    continue
                if rule.field == "*" or rule.field in changed or write.is_insert or write.is_delete:
                    matched.append(compiled)
                    break
        return matched

    def apply(self, write: EntityWrite) -> MaintenanceResult:
        """Compute and apply every index change implied by one base-table write."""
        result = MaintenanceResult()
        self._maintain_reverse_indexes(write, result)
        for compiled in self.relevant_indexes(write):
            self._maintain_query_index(compiled.index_spec, write, result)
        return result

    # ------------------------------------------------------ reverse index upkeep

    def _maintain_reverse_indexes(self, write: EntityWrite, result: MaintenanceResult) -> None:
        specs = self._reverse_by_entity.get(write.entity, [])
        if not specs:
            return
        schema = self._registry.entity(write.entity)
        for spec in specs:
            old_key = self._reverse_key(spec, schema, write.old_row)
            new_key = self._reverse_key(spec, schema, write.new_row)
            if old_key == new_key:
                continue
            if old_key is not None:
                self._storage.delete_reverse_entry(spec.namespace, old_key)
                result.index_ops += 1
            if new_key is not None:
                self._storage.put_reverse_entry(spec.namespace, new_key)
                result.index_ops += 1

    @staticmethod
    def _reverse_key(
        spec: ReverseIndexSpec, schema: EntitySchema, row: Optional[Dict[str, Any]]
    ) -> Optional[Key]:
        if row is None:
            return None
        value = row.get(spec.column)
        if value is None:
            return None
        return (value,) + schema.storage_key(row)

    # --------------------------------------------------------- query index upkeep

    def _maintain_query_index(
        self, spec: IndexSpec, write: EntityWrite, result: MaintenanceResult
    ) -> None:
        old_entries: Set[Key] = set()
        new_entries: Set[Key] = set()
        for position, step in enumerate(spec.steps):
            if step.entity != write.entity:
                continue
            if write.old_row is not None:
                old_entries |= self._entries_through(spec, position, write.old_row, result)
            if write.new_row is not None:
                new_entries |= self._entries_through(spec, position, write.new_row, result)
        for key in new_entries - old_entries:
            self._storage.adjust_index_support(spec.namespace, key, +1)
            result.index_ops += 1
        for key in old_entries - new_entries:
            self._storage.adjust_index_support(spec.namespace, key, -1)
            result.index_ops += 1

    def _entries_through(
        self,
        spec: IndexSpec,
        position: int,
        row: Dict[str, Any],
        result: MaintenanceResult,
    ) -> Set[Key]:
        """Index entries whose join path passes through ``row`` at ``position``."""
        anchor_rows = self._walk_backward(spec, position, row, result)
        if not anchor_rows:
            return set()
        final_rows = self._walk_forward(spec, position, row, result)
        if not final_rows:
            return set()
        final_schema = self._registry.entity(spec.final_entity)
        entries: Set[Key] = set()
        for anchor_row in anchor_rows:
            prefix = self._anchor_prefix(spec, anchor_row)
            if prefix is None:
                continue
            for final_row in final_rows:
                sort_part: Tuple = ()
                if spec.has_sort:
                    owner_row = anchor_row if spec.sort_owner == "anchor" else final_row
                    sort_value = owner_row.get(spec.sort_column)
                    if sort_value is None:
                        continue
                    sort_part = (sort_value,)
                final_key = final_schema.storage_key(final_row)
                entries.add(prefix + sort_part + final_key)
        return entries

    def _anchor_prefix(self, spec: IndexSpec, anchor_row: Dict[str, Any]) -> Optional[Key]:
        values = []
        for column in [spec.anchor_column] + list(spec.extra_anchor_columns):
            value = anchor_row.get(column)
            if value is None:
                return None
            values.append(value)
        return tuple(values)

    def _walk_backward(
        self,
        spec: IndexSpec,
        position: int,
        row: Dict[str, Any],
        result: MaintenanceResult,
    ) -> List[Dict[str, Any]]:
        """Rows of the anchor entity reachable backwards from ``row``."""
        current = [row]
        for level in range(position, 0, -1):
            step = spec.steps[level]
            previous_step = spec.steps[level - 1]
            previous_schema = self._registry.entity(previous_step.entity)
            next_rows: List[Dict[str, Any]] = []
            for r in current:
                join_value = r.get(step.join_to_column)
                if join_value is None:
                    continue
                next_rows.extend(
                    self._previous_rows_matching(
                        previous_schema, step.join_from_column, join_value,
                        step.reverse_index, result,
                    )
                )
            current = next_rows
            if not current:
                break
        return current

    def _previous_rows_matching(
        self,
        schema: EntitySchema,
        column: Optional[str],
        value: Any,
        reverse_index: Optional[str],
        result: MaintenanceResult,
    ) -> List[Dict[str, Any]]:
        assert column is not None
        if schema.is_key_field(column) and schema.key_position(column) == 0:
            result.lookup_ops += 1
            return self._storage.entity_rows_by_prefix(schema.name, (value,))
        if reverse_index is None:
            raise RuntimeError(
                f"maintenance for {schema.name}.{column} needs a reverse index but the "
                f"compiler did not produce one"
            )

        keys = self._storage.reverse_keys(reverse_index, value)
        result.lookup_ops += 1 + len(keys)
        rows = []
        for key in keys:
            row = self._storage.entity_row(schema.name, key)
            if row is not None:
                rows.append(row)
        return rows

    def _walk_forward(
        self,
        spec: IndexSpec,
        position: int,
        row: Dict[str, Any],
        result: MaintenanceResult,
    ) -> List[Dict[str, Any]]:
        """Rows of the final entity reachable forwards from ``row``."""
        current = [row]
        for level in range(position + 1, len(spec.steps)):
            step = spec.steps[level]
            schema = self._registry.entity(step.entity)
            previous_step = spec.steps[level - 1]
            next_rows: List[Dict[str, Any]] = []
            for r in current:
                join_value = r.get(step.join_from_column)
                if join_value is None:
                    continue
                result.lookup_ops += 1
                next_rows.extend(self._storage.entity_rows_by_prefix(schema.name, (join_value,)))
            current = next_rows
            if not current:
                break
        return current
