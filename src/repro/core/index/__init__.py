"""Index maintenance: the Figure-3 machinery.

``maintenance`` computes, for one base-table write, the bounded set of index
entries that must change (the paper's O(K) update functions).  ``updater``
applies those changes asynchronously, ordered by the wall-clock consistency
deadline each write carries — the priority-queue mechanism Section 3.3.2
describes for enforcing declared staleness bounds.
"""

from repro.core.index.maintenance import EntityWrite, IndexMaintainer, StorageAdapter
from repro.core.index.updater import AsyncIndexUpdater, UpdateTask, UpdaterStats

__all__ = [
    "IndexMaintainer",
    "StorageAdapter",
    "EntityWrite",
    "AsyncIndexUpdater",
    "UpdateTask",
    "UpdaterStats",
]
