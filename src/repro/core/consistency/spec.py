"""The declarative consistency/performance specification (Figure 4).

Each axis is a small dataclass with the vocabulary the paper uses:

=================  =============================  ==============================
Axis               Effects                        Example
=================  =============================  ==============================
Performance        latency and availability       99.9 % of requests < 100 ms
Write consistency  how updates are applied        serializable / merge / LWW
Read consistency   replication (staleness) bound  stale data gone within 10 min
Session guarantees the caller's own actions       read-your-writes, monotonic
Durability SLA     probability data persists      99.999 %
=================  =============================  ==============================

A :class:`ConsistencySpec` bundles one choice per axis plus a priority
ordering used when requirements conflict (e.g. availability vs. read
consistency during a partition).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


class Axis(enum.Enum):
    """The five axes of Figure 4 (used in the priority ordering)."""

    PERFORMANCE = "performance"
    WRITE_CONSISTENCY = "write_consistency"
    READ_CONSISTENCY = "read_consistency"
    SESSION = "session"
    DURABILITY = "durability"
    AVAILABILITY = "availability"  # performance's availability half, separable in priorities


@dataclass(frozen=True)
class PerformanceSLA:
    """Latency/availability requirement, e.g. 99.9 % of reads under 100 ms."""

    percentile: float = 99.9
    latency: float = 0.100
    availability: float = 0.9999
    op_type: str = "read"

    def __post_init__(self) -> None:
        if not 0.0 < self.percentile < 100.0:
            raise ValueError(f"percentile must be in (0, 100), got {self.percentile}")
        if self.latency <= 0:
            raise ValueError(f"latency target must be positive, got {self.latency}")
        if not 0.0 < self.availability <= 1.0:
            raise ValueError(f"availability must be in (0, 1], got {self.availability}")

    def describe(self) -> str:
        """Human-readable form matching the paper's phrasing."""
        return (
            f"{self.percentile}% of {self.op_type} requests succeed in "
            f"<{self.latency * 1000:.0f}ms; {self.availability * 100:.2f}% availability"
        )


class WritePolicy(enum.Enum):
    """The write-consistency spectrum of Figure 4."""

    SERIALIZABLE = "serializable"
    MERGE = "merge"
    LAST_WRITE_WINS = "last_write_wins"


@dataclass(frozen=True)
class WriteConsistency:
    """How conflicting writes are handled.

    ``merge_function(current, incoming) -> merged`` is required for the MERGE
    policy and ignored otherwise.
    """

    policy: WritePolicy = WritePolicy.LAST_WRITE_WINS
    merge_function: Optional[Callable[[Dict[str, Any], Dict[str, Any]], Dict[str, Any]]] = None

    def __post_init__(self) -> None:
        if self.policy is WritePolicy.MERGE and self.merge_function is None:
            raise ValueError("MERGE write consistency requires a merge_function")

    @property
    def requires_quorum(self) -> bool:
        """Serializable writes must reach a majority of replicas synchronously."""
        return self.policy is WritePolicy.SERIALIZABLE


@dataclass(frozen=True)
class ReadConsistency:
    """Upper bound on how stale returned data may be, in wall-clock seconds."""

    staleness_bound: float = 600.0  # the paper's "ten minutes" example

    def __post_init__(self) -> None:
        if self.staleness_bound <= 0:
            raise ValueError(f"staleness bound must be positive, got {self.staleness_bound}")

    def describe(self) -> str:
        return f"stale data gone within {self.staleness_bound:.0f} seconds"


@dataclass(frozen=True)
class SessionGuarantee:
    """Terry-style session guarantees: the two the paper says web apps need."""

    read_your_writes: bool = False
    monotonic_reads: bool = False

    @property
    def any_enabled(self) -> bool:
        return self.read_your_writes or self.monotonic_reads


@dataclass(frozen=True)
class DurabilitySLA:
    """Probability committed writes persist over the horizon."""

    probability: float = 0.99999
    horizon_hours: float = 8760.0

    def __post_init__(self) -> None:
        if not 0.0 < self.probability < 1.0:
            raise ValueError(f"durability probability must be in (0, 1), got {self.probability}")
        if self.horizon_hours <= 0:
            raise ValueError("durability horizon must be positive")

    def describe(self) -> str:
        return f"data persists with {self.probability * 100:.3f}% probability"


DEFAULT_PRIORITY = [
    Axis.DURABILITY,
    Axis.AVAILABILITY,
    Axis.READ_CONSISTENCY,
    Axis.SESSION,
    Axis.PERFORMANCE,
]


@dataclass
class ConsistencySpec:
    """One complete declarative specification: a choice on every axis.

    ``priority`` orders the axes from most to least important; it is consulted
    only when requirements cannot all be met simultaneously (Section 3.3.1's
    disconnected-datacenter example).
    """

    performance: PerformanceSLA = field(default_factory=PerformanceSLA)
    write: WriteConsistency = field(default_factory=WriteConsistency)
    read: ReadConsistency = field(default_factory=ReadConsistency)
    session: SessionGuarantee = field(default_factory=SessionGuarantee)
    durability: DurabilitySLA = field(default_factory=DurabilitySLA)
    priority: List[Axis] = field(default_factory=lambda: list(DEFAULT_PRIORITY))

    def __post_init__(self) -> None:
        if len(set(self.priority)) != len(self.priority):
            raise ValueError("priority ordering must not repeat axes")

    def prefers(self, first: Axis, second: Axis) -> bool:
        """True when ``first`` outranks ``second`` (absent axes rank last)."""
        try:
            first_rank = self.priority.index(first)
        except ValueError:
            first_rank = len(self.priority)
        try:
            second_rank = self.priority.index(second)
        except ValueError:
            second_rank = len(self.priority)
        return first_rank < second_rank

    def describe(self) -> Dict[str, str]:
        """The Figure-4 style summary of every axis."""
        return {
            "performance": self.performance.describe(),
            "write_consistency": self.write.policy.value,
            "read_consistency": self.read.describe(),
            "session_guarantees": (
                ", ".join(
                    name
                    for name, enabled in [
                        ("read-your-writes", self.session.read_your_writes),
                        ("monotonic-reads", self.session.monotonic_reads),
                    ]
                    if enabled
                )
                or "none"
            ),
            "durability": self.durability.describe(),
        }
