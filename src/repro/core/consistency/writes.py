"""Write-conflict handling: the write-consistency axis.

The engine funnels every entity write through a :class:`ConflictResolver`,
which decides (a) what value actually gets stored given the current value and
(b) how many replicas must acknowledge synchronously.

* ``SERIALIZABLE`` — read-modify-write at the primary plus a majority quorum,
  so concurrent writers are ordered and no acknowledged write can be lost to
  a lagging replica taking over.
* ``MERGE`` — the developer's merge function combines the current and the
  incoming row; both concurrent writers' effects survive.
* ``LAST_WRITE_WINS`` — the highest timestamp wins; cheapest, and the storage
  layer already enforces it during replication.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.core.consistency.spec import WriteConsistency, WritePolicy


@dataclass
class ResolverStats:
    """Counts of how writes were resolved (reported by experiment E8)."""

    last_write_wins: int = 0
    merged: int = 0
    serialized: int = 0


class ConflictResolver:
    """Applies the declared write policy to one write at a time."""

    def __init__(self, write_consistency: WriteConsistency, replication_factor: int = 3) -> None:
        if replication_factor < 1:
            raise ValueError("replication factor must be >= 1")
        self.write_consistency = write_consistency
        self.replication_factor = replication_factor
        self.stats = ResolverStats()

    # ------------------------------------------------------------------ quorums

    def write_quorum(self) -> int:
        """Replica acknowledgements the router must collect synchronously."""
        if self.write_consistency.policy is WritePolicy.SERIALIZABLE:
            return self.replication_factor // 2 + 1
        return 1

    # ------------------------------------------------------------------ payload

    def resolve(
        self,
        current_row: Optional[Dict[str, Any]],
        incoming_row: Dict[str, Any],
    ) -> Dict[str, Any]:
        """The row that should actually be stored.

        ``current_row`` is the primary's current value (None when the key is
        new).  For merges the developer's function receives copies, so it
        cannot accidentally alias stored state.
        """
        policy = self.write_consistency.policy
        if policy is WritePolicy.LAST_WRITE_WINS:
            self.stats.last_write_wins += 1
            return dict(incoming_row)
        if policy is WritePolicy.MERGE:
            self.stats.merged += 1
            if current_row is None:
                return dict(incoming_row)
            merge = self.write_consistency.merge_function
            assert merge is not None  # guaranteed by WriteConsistency.__post_init__
            merged = merge(dict(current_row), dict(incoming_row))
            if not isinstance(merged, dict):
                raise TypeError(
                    f"merge function must return a dict row, got {type(merged).__name__}"
                )
            return merged
        # SERIALIZABLE: the quorum (plus single-primary ordering) provides the
        # guarantee; the stored value is simply the incoming row applied on
        # top of the current one so partial-row writes behave like updates.
        self.stats.serialized += 1
        base = dict(current_row) if current_row else {}
        base.update(incoming_row)
        return base
