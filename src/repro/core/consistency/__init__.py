"""Declarative consistency: the five axes of the paper's Figure 4.

Developers attach a :class:`ConsistencySpec` to their data (per entity or per
query).  The spec is purely declarative — the engine, updater, and
provisioning loop read it and choose mechanisms (replication quorums, update
deadlines, primary fallbacks, replication factors) that implement it.
"""

from repro.core.consistency.spec import (
    Axis,
    ConsistencySpec,
    DurabilitySLA,
    PerformanceSLA,
    ReadConsistency,
    SessionGuarantee,
    WriteConsistency,
    WritePolicy,
)
from repro.core.consistency.sessions import Session, SessionManager
from repro.core.consistency.writes import ConflictResolver
from repro.core.consistency.arbitration import Arbitrator, ArbitrationDecision

__all__ = [
    "Axis",
    "ConsistencySpec",
    "PerformanceSLA",
    "WriteConsistency",
    "WritePolicy",
    "ReadConsistency",
    "SessionGuarantee",
    "DurabilitySLA",
    "Session",
    "SessionManager",
    "ConflictResolver",
    "Arbitrator",
    "ArbitrationDecision",
]
