"""Arbitration between conflicting requirements (Section 3.3.1).

"There are often conditions in real world datacenters, such as network
partitions or link congestion, that would prevent all requirements from being
met simultaneously.  In such cases, the system will use the developer-
specified ordering of the requirements to decide which ones are more
important."

The :class:`Arbitrator` encodes exactly that: when the read path cannot both
answer (availability) and honour the staleness bound / session guarantee
(consistency), it consults the spec's priority ordering, records the decision,
and the engine either serves the stale value or fails the request.  The
recorded decisions feed back into provisioning, as the paper suggests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.consistency.spec import Axis, ConsistencySpec


@dataclass(frozen=True)
class ArbitrationDecision:
    """One recorded conflict and its resolution."""

    time: float
    conflict: str  # e.g. "staleness_check_unavailable"
    winner: Axis
    loser: Axis
    served_stale: bool
    failed_request: bool


class Arbitrator:
    """Resolves availability-vs-consistency conflicts using the declared priority."""

    def __init__(self, spec: ConsistencySpec) -> None:
        self.spec = spec
        self._decisions: List[ArbitrationDecision] = []

    # ---------------------------------------------------------------- decisions

    def resolve_read_conflict(self, now: float, conflict: str) -> ArbitrationDecision:
        """Decide what to do when a read cannot verify its consistency bound.

        If availability outranks read consistency, the (possibly stale) value
        is served; otherwise the request fails.  Either way the decision is
        recorded for the provisioning feedback loop and for experiment E9.
        """
        availability_first = self.spec.prefers(Axis.AVAILABILITY, Axis.READ_CONSISTENCY)
        if availability_first:
            decision = ArbitrationDecision(
                time=now,
                conflict=conflict,
                winner=Axis.AVAILABILITY,
                loser=Axis.READ_CONSISTENCY,
                served_stale=True,
                failed_request=False,
            )
        else:
            decision = ArbitrationDecision(
                time=now,
                conflict=conflict,
                winner=Axis.READ_CONSISTENCY,
                loser=Axis.AVAILABILITY,
                served_stale=False,
                failed_request=True,
            )
        self._decisions.append(decision)
        return decision

    def resolve_session_conflict(self, now: float, conflict: str) -> ArbitrationDecision:
        """Same trade-off for session guarantees vs. availability."""
        availability_first = self.spec.prefers(Axis.AVAILABILITY, Axis.SESSION)
        if availability_first:
            decision = ArbitrationDecision(
                time=now,
                conflict=conflict,
                winner=Axis.AVAILABILITY,
                loser=Axis.SESSION,
                served_stale=True,
                failed_request=False,
            )
        else:
            decision = ArbitrationDecision(
                time=now,
                conflict=conflict,
                winner=Axis.SESSION,
                loser=Axis.AVAILABILITY,
                served_stale=False,
                failed_request=True,
            )
        self._decisions.append(decision)
        return decision

    # ---------------------------------------------------------------- reporting

    def decisions(self) -> List[ArbitrationDecision]:
        """Every conflict resolved so far, in time order."""
        return list(self._decisions)

    def stale_serves(self) -> int:
        """How many conflicts were resolved by serving stale data."""
        return sum(1 for d in self._decisions if d.served_stale)

    def failed_requests(self) -> int:
        """How many conflicts were resolved by failing the request."""
        return sum(1 for d in self._decisions if d.failed_request)
