"""Session guarantees: read-your-writes and monotonic reads.

A :class:`Session` remembers which versions the caller has written and seen.
The engine's read path asks the session whether a value fetched from a
replica is acceptable; if not, the read is retried at the primary (paying the
latency) — the standard implementation of these guarantees over lazy
replication.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.consistency.spec import SessionGuarantee
from repro.storage.records import Key, VersionedValue


@dataclass
class SessionStats:
    """How often each guarantee forced a primary re-read (anomaly prevented)."""

    reads: int = 0
    writes: int = 0
    ryw_fallbacks: int = 0
    monotonic_fallbacks: int = 0


class Session:
    """One client session's write/read history."""

    def __init__(self, session_id: str, guarantee: SessionGuarantee) -> None:
        self.session_id = session_id
        self.guarantee = guarantee
        self._last_written_version: Dict[Tuple[str, Key], int] = {}
        self._last_seen_version: Dict[Tuple[str, Key], int] = {}
        self.stats = SessionStats()

    # ------------------------------------------------------------------- writes

    def note_write(self, namespace: str, key: Key, value: VersionedValue) -> None:
        """Record that this session wrote ``value`` (its version matters)."""
        self.stats.writes += 1
        self._last_written_version[(namespace, key)] = value.version

    # -------------------------------------------------------------------- reads

    def acceptable(self, namespace: str, key: Key, value: Optional[VersionedValue],
                   count: bool = True) -> bool:
        """Is a replica-read result consistent with this session's history?

        A missing value (None) is unacceptable if the session wrote the key or
        has previously seen it — the replica simply has not caught up.
        ``count=False`` asks without recording a fallback, for callers (the
        cache tier's bypass policy) that probe acceptability before the
        cluster read path runs the real, counted check.
        """
        identity = (namespace, key)
        observed_version = value.version if value is not None else 0
        if self.guarantee.read_your_writes:
            written = self._last_written_version.get(identity, 0)
            if observed_version < written:
                if count:
                    self.stats.ryw_fallbacks += 1
                return False
        if self.guarantee.monotonic_reads:
            seen = self._last_seen_version.get(identity, 0)
            if observed_version < seen:
                if count:
                    self.stats.monotonic_fallbacks += 1
                return False
        return True

    def note_read(self, namespace: str, key: Key, value: Optional[VersionedValue]) -> None:
        """Record what the session ended up observing (for monotonic reads)."""
        self.stats.reads += 1
        if value is None:
            return
        identity = (namespace, key)
        current = self._last_seen_version.get(identity, 0)
        if value.version > current:
            self._last_seen_version[identity] = value.version


class SessionManager:
    """Creates and tracks sessions; hands the engine the per-caller state."""

    def __init__(self, default_guarantee: Optional[SessionGuarantee] = None) -> None:
        self._default_guarantee = default_guarantee or SessionGuarantee()
        self._sessions: Dict[str, Session] = {}

    def open(self, session_id: str, guarantee: Optional[SessionGuarantee] = None) -> Session:
        """Open (or return the existing) session with the given id."""
        if session_id not in self._sessions:
            self._sessions[session_id] = Session(
                session_id, guarantee or self._default_guarantee
            )
        return self._sessions[session_id]

    def get(self, session_id: str) -> Optional[Session]:
        return self._sessions.get(session_id)

    def session_count(self) -> int:
        return len(self._sessions)

    def total_fallbacks(self) -> int:
        """Primary re-reads forced by session guarantees across all sessions."""
        return sum(
            s.stats.ryw_fallbacks + s.stats.monotonic_fallbacks
            for s in self._sessions.values()
        )
