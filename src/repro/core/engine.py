"""The public SCADS engine.

:class:`Scads` is what an application developer sees: declare entities and
relationships, register query templates (which are admitted or rejected at
declaration time), read and write entities, run queries, and let the system
worry about indexes, consistency, and capacity.

Internally the engine wires together every substrate in the repository:

* entity and index data live on the simulated elastic cluster
  (:mod:`repro.storage`) behind the request router,
* admitted query templates are compiled to pre-computed indexes whose
  maintenance is performed asynchronously in deadline order
  (:mod:`repro.core.index`),
* the declarative :class:`~repro.core.consistency.ConsistencySpec` governs
  write quorums, staleness checks, session guarantees, and partition
  arbitration on every operation, and
* the provisioning feedback loop (:mod:`repro.core.provisioning`) watches SLA
  attainment and rents/releases utility-computing instances
  (:mod:`repro.cloud`) to keep the SLAs met at minimum cost.

Staleness-budget cache tier
---------------------------

The declarative :class:`~repro.core.consistency.spec.ReadConsistency` bound
is not just something reads are *checked* against — it is slack the
application has explicitly granted, and ``Scads(cache=...)`` exploits it with
a front-tier read-through cache (:mod:`repro.cache`).  Entity gets and
compiled-query range reads that hit the cache bypass the cluster entirely and
pay a sub-millisecond front-tier service time; entries are admitted with a
TTL derived from the bound ("stale data gone within B seconds" → servable for
``B`` minus propagation headroom, minus any staleness the value already
carried when it was read), entity writes invalidate the written key and any
cached scan covering it, and the asynchronous index updater invalidates the
cached query scans its maintenance touches.  Session guarantees outrank the
budget: a read-your-writes session that wrote a key bypasses the cache for it
until the cached copy has caught up.  The provisioning loop sees the cache:
the :class:`~repro.core.provisioning.monitor.SLAMonitor` measures the window
hit rate and the :class:`~repro.core.provisioning.planner.CapacityPlanner`
discounts forecast demand by the absorbed fraction, so the controller does
not rent replica groups for load the cache is already serving.  The tier is
**on by default** (validated as safe across the full scenario grid — see
``make grid`` and the "Validation grid" section of PERFORMANCE.md); pass
``cache=False`` to opt out and reproduce the uncached seed behaviour E14
compares against.

Elasticity & repartitioning
---------------------------

Capacity scales in whole replica groups, but *placement* scales in key
ranges.  By default (``repartition=False`` opts out) the engine attaches a
hot-partition :class:`~repro.storage.rebalancer.Rebalancer`: the router feeds a decayed
per-partition load sketch, and when a control window shows one hot replica
group while the cluster mean has headroom (a Zipf hotspot, not an overload),
the provisioning loop prefers a sub-group action over renting a group —
splitting the hot range at its load median, migrating only the hot keys to a
cold group (range partitioner), or shifting ring weight between groups (hash
partitioner).  Migrations are *live*: affected keys are dual-routed while the
transfer's simulated duration elapses, writes are mirrored to the source, and
source copies are reclaimed only at completion, so no request is dropped
mid-move.  Splits are free (they only create a migratable unit) and cold
adjacent ranges are re-merged in quiet windows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.cache.tier import CacheConfig, CacheTier
from repro.cloud.instances import INSTANCE_TYPES, InstanceType
from repro.cloud.market import SpotMarket
from repro.cloud.pool import InstancePool
from repro.core.consistency.arbitration import Arbitrator
from repro.core.consistency.sessions import Session, SessionManager
from repro.core.consistency.spec import (
    ConsistencySpec,
    PerformanceSLA,
    SessionGuarantee,
)
from repro.core.consistency.writes import ConflictResolver
from repro.core.index.maintenance import EntityWrite, IndexMaintainer
from repro.core.index.updater import AsyncIndexUpdater
from repro.core.provisioning.analytic import AnalyticSizingModel
from repro.core.provisioning.controller import ProvisioningController
from repro.core.provisioning.monitor import SLAMonitor
from repro.core.provisioning.planner import CapacityPlanner
from repro.core.provisioning.spotfleet import SpotFleetManager
from repro.core.query.analyzer import QueryAnalyzer
from repro.core.query.compiler import QueryCompiler
from repro.core.query.executor import QueryExecutor, QueryResult
from repro.core.query.parser import parse_query
from repro.core.query.plans import (
    CompiledQuery,
    MaintenanceRule,
    entity_namespace,
    reverse_index_namespace,
)
from repro.core.schema import EntitySchema, Relationship, SchemaRegistry
from repro.metrics.percentiles import LatencyRecorder, PercentileEstimator
from repro.metrics.sla import (
    COMPLIANCE_WINDOW_SECONDS,
    ComplianceWindow,
    SLATracker,
    WindowedComplianceTracker,
)
from repro.ml.forecaster import WorkloadForecaster
from repro.obs.telemetry import Telemetry, TelemetryConfig, resolve_telemetry_config
from repro.obs.timeline import DecisionTimeline
from repro.obs.tracing import Tracer
from repro.ml.performance_model import LatencyPercentileModel, PropagationLagModel
from repro.sim.hosts import ContentionProcess, HostMap, resolve_contention_config
from repro.sim.simulator import Simulator
from repro.storage.cluster import Cluster
from repro.storage.durability import DurabilityModel
from repro.storage.rebalancer import Rebalancer
from repro.storage.records import Key, KeyRange, prefix_range
from repro.storage.router import Router


@dataclass(slots=True)
class OperationOutcome:
    """What one engine-level operation returned and what it cost.

    ``rows`` defaults to a shared empty tuple — one outcome is allocated per
    client operation, and only multi-row reads carry rows.
    """

    success: bool
    latency: float
    row: Optional[Dict[str, Any]] = None
    rows: Sequence[Dict[str, Any]] = ()
    stale: bool = False
    error: Optional[str] = None


class _RouterStorageAdapter:
    """StorageAdapter implementation backed by the request router.

    Index maintenance traffic flows through the same router (and therefore the
    same simulated nodes) as client traffic, so maintenance genuinely competes
    for capacity — which is what makes write-heavy spikes hard, per the paper.
    """

    def __init__(self, engine: "Scads") -> None:
        self._engine = engine

    def entity_rows_by_prefix(self, entity: str, prefix: Key) -> List[Dict[str, Any]]:
        namespace = entity_namespace(entity)
        result = self._engine.router.read_range(prefix_range(namespace, prefix),
                                                from_primary=True)
        if not result.success:
            return []
        return [dict(value.value) for _, value in result.rows if isinstance(value.value, dict)]

    def entity_row(self, entity: str, key: Key) -> Optional[Dict[str, Any]]:
        namespace = entity_namespace(entity)
        result = self._engine.router.read(namespace, key, from_primary=True)
        if not result.success or result.value is None:
            return None
        value = result.value.value
        return dict(value) if isinstance(value, dict) else None

    def reverse_keys(self, reverse_index: str, value: Any) -> List[Key]:
        namespace = reverse_index_namespace(reverse_index)
        result = self._engine.router.read_range(prefix_range(namespace, (value,)),
                                                from_primary=True)
        if not result.success:
            return []
        return [key[1:] for key, _ in result.rows]

    def adjust_index_support(self, namespace: str, key: Key, delta: int) -> None:
        current = self._engine.router.read(namespace, key, from_primary=True)
        support = 0
        if current.success and current.value is not None and isinstance(current.value.value, dict):
            support = int(current.value.value.get("support", 0))
        new_support = support + delta
        if new_support <= 0:
            self._engine.router.delete(namespace, key, writer="index-maintenance")
        else:
            self._engine.router.write(namespace, key, {"support": new_support},
                                      writer="index-maintenance")
        self._engine._note_index_write(namespace, key)

    def put_reverse_entry(self, namespace: str, key: Key) -> None:
        self._engine.router.write(namespace, key, {}, writer="index-maintenance")
        self._engine._note_index_write(namespace, key)

    def delete_reverse_entry(self, namespace: str, key: Key) -> None:
        self._engine.router.delete(namespace, key, writer="index-maintenance")
        self._engine._note_index_write(namespace, key)


class Scads:
    """Scale-independent storage for social computing applications.

    Args:
        seed: seed for every random stream in the simulation.
        consistency: the declarative consistency/performance specification.
        instance_type: utility-computing machine class used for storage nodes.
        replication_factor: nodes per replica group; if None it is derived
            from the durability SLA and the node failure model.
        initial_groups: replica groups provisioned before any load arrives.
        autoscale: whether the provisioning feedback loop runs.
        predictive_scaling: use the ML forecast (True) or only the current
            observation (False — the reactive-scaler ablation).
        control_interval: seconds between provisioning-loop iterations.
        max_instances: hard cap on rented instances.
        max_read_work / max_update_work: query-admission caps (the K's).
        partitioner_kind: ``"hash"`` (consistent hashing, default) or
            ``"range"`` (explicit split points; required for range-level
            split/merge actions).
        repartition: the hot-partition rebalancer, letting the provisioning
            loop repair load skew with targeted split/migrate actions
            instead of renting whole replica groups (see the module
            docstring's "Elasticity & repartitioning" section).  **Default
            on** (``None`` resolves to enabled); pass ``False`` to opt out
            and scale in whole replica groups only.
        repartition_hot_utilisation / repartition_cold_utilisation: group
            utilisation thresholds that define a migratable imbalance.
        cache: the staleness-budget cache tier (see the module docstring's
            "Staleness-budget cache tier" section).  **Default on** with
            :class:`~repro.cache.tier.CacheConfig` defaults (``None``
            resolves to enabled, as does ``True``); pass a config to size
            the cache or tune the propagation headroom, or ``False`` to opt
            out so every read pays full cluster latency.
        planner_backend: how the planner answers the latency sizing question —
            ``"analytical"`` (closed-form M/G/k model), ``"ml"`` (learned
            latency model, the pre-clamp behaviour), or ``"hybrid"``
            (default: analytical backbone, ML admitted as a bounded
            residual).  See :mod:`repro.core.provisioning.backends`.
        planner_clamp_band: the hybrid backend's admissible fractional
            deviation of the ML answer from the analytical answer
            (0.3 = ±30%).
        telemetry: attach the observability layer — deterministic span
            tracing of sampled requests, the counters/gauges/histograms
            registry, and the provisioning decision timeline
            (:mod:`repro.obs`).  ``True`` uses
            :class:`~repro.obs.telemetry.TelemetryConfig` defaults; pass a
            config to tune the trace sampling interval.  Trace sampling is
            a per-stream modulo, never an RNG draw, so a telemetry-on run
            produces byte-identical operation results to a telemetry-off
            run with the same seed.  Defaults to off, where the remaining
            cost is one attribute check per operation.
        spot: attach a :class:`~repro.cloud.market.SpotMarket` and a
            :class:`~repro.core.provisioning.spotfleet.SpotFleetManager`:
            the controller covers read-dominated capacity deficits with
            surge read replicas bought spot-first (on-demand fallback when
            the market refuses), and interruption notices trigger the
            graceful drain/hibernate/resume machinery.  The market's price
            trace lives on its own RNG stream, so ``spot=False`` runs are
            byte-identical to builds that predate the market.  Default off.
        write_audit: track every acknowledged write's promised version and
            expose :meth:`lost_write_count` (the zero-data-loss check the
            interruption-storm grid scenario gates on).  ``None`` resolves
            to the ``spot`` flag; the audit dict grows with the distinct
            key count, hence opt-in for plain runs.
        contention: model shared physical hosts and co-tenant interference
            (:mod:`repro.sim.hosts`).  ``True`` uses
            :class:`~repro.sim.hosts.ContentionConfig` defaults; a dict
            (picklable scenario knob) or a config tunes tenancy, episode
            shape, and the diagnosis thresholds the monitor/controller use
            to tell contention from capacity shortfall.  Nodes are placed
            on hosts with replica-group anti-affinity, a deterministic
            per-host load process (own RNG streams) inflates colocated
            nodes' *service* times, and the controller live-migrates
            replicas off hosts diagnosed noisy instead of renting into the
            violation (``placement_aware=False`` in the config keeps the
            diagnosis but disables the remediation — the capacity-only
            ablation).  Default off; off runs are byte-identical to builds
            that predate the contention layer.
    """

    # Samples kept in the cluster-served-read window when nothing drains it
    # (see _record_op); a monitor-drained window never approaches this.
    CLUSTER_READ_WINDOW_CAP = 100_000

    def __init__(
        self,
        seed: int = 0,
        consistency: Optional[ConsistencySpec] = None,
        instance_type: InstanceType = INSTANCE_TYPES["m1.small"],
        replication_factor: Optional[int] = None,
        initial_groups: int = 2,
        autoscale: bool = True,
        predictive_scaling: bool = True,
        control_interval: float = 60.0,
        max_instances: int = 10_000,
        max_read_work: int = 10_000,
        max_update_work: int = 50_000,
        node_mttf_hours: float = 4380.0,
        updates_per_second_per_node: float = 200.0,
        fifo_updates: bool = False,
        min_groups: int = 1,
        partitioner_kind: str = "hash",
        repartition: Optional[bool] = None,
        repartition_hot_utilisation: float = 0.75,
        repartition_cold_utilisation: float = 0.5,
        cache: Union[None, bool, CacheConfig] = None,
        planner_backend: str = "hybrid",
        planner_clamp_band: float = 0.3,
        telemetry: Union[None, bool, TelemetryConfig] = None,
        spot: bool = False,
        write_audit: Optional[bool] = None,
        contention=None,
    ) -> None:
        self.spec = consistency or ConsistencySpec()
        self.sim = Simulator(seed=seed)
        self.durability_model = DurabilityModel(node_mttf_hours=node_mttf_hours)
        if replication_factor is None:
            replication_factor = self.durability_model.required_replication_factor(
                self.spec.durability.probability,
                self.spec.durability.horizon_hours,
            )
        self.replication_factor = replication_factor
        self.contention_config = resolve_contention_config(contention)
        self.host_map: Optional[HostMap] = None
        self.contention: Optional[ContentionProcess] = None
        if self.contention_config is not None:
            self.host_map = HostMap(tenancy=self.contention_config.tenancy)
        self.cluster = Cluster(
            simulator=self.sim,
            replication_factor=replication_factor,
            initial_groups=initial_groups,
            node_capacity_ops=instance_type.capacity_ops_per_sec,
            partitioner_kind=partitioner_kind,
            host_map=self.host_map,
        )
        if self.contention_config is not None:
            self.contention = ContentionProcess(
                self.sim, self.host_map, self.contention_config)
        # Both big subsystems default ON (the validation grid's green verdict
        # is the receipt — see PERFORMANCE.md "Validation grid"); ``False``
        # opts out explicitly, ``None`` means "the shipped default".
        repartition = True if repartition is None else bool(repartition)
        self.repartition = repartition
        self.rebalancer: Optional[Rebalancer] = None
        if repartition:
            self.rebalancer = Rebalancer(
                self.cluster,
                hot_utilisation=repartition_hot_utilisation,
                cold_utilisation=repartition_cold_utilisation,
                # Let a migration's load shift register in the utilisation
                # EWMAs before acting again, or the hot range ping-pongs.
                cooldown=2.0 * control_interval,
            )
        self.router = Router(self.cluster)
        self.cache: Optional[CacheTier] = None
        if cache is None:
            cache = True  # shipped default: the staleness-budget tier is on
        if cache:
            cache_config = cache if isinstance(cache, CacheConfig) else CacheConfig()
            self.cache = CacheTier(cache_config, spec=self.spec, simulator=self.sim)
        self.telemetry_config = resolve_telemetry_config(telemetry)
        self.telemetry: Optional[Telemetry] = None
        self.tracer: Optional[Tracer] = None
        self.timeline: Optional[DecisionTimeline] = None
        # Cached registry histogram for the replication hot path (None keeps
        # the telemetry-off cost at a single attribute check).
        self._tel_replication_lag: Optional[PercentileEstimator] = None
        if self.telemetry_config is not None:
            self.telemetry = Telemetry()
            self.tracer = Tracer(
                sample_interval=self.telemetry_config.trace_sample_interval,
                max_traces=self.telemetry_config.max_traces,
                telemetry=self.telemetry,
            )
            self.timeline = DecisionTimeline()
            self.router.attach_tracer(self.tracer)
            self._tel_replication_lag = self.telemetry.histogram("replication.lag")
        self.pool = InstancePool(self.sim, instance_type=instance_type,
                                 max_instances=max_instances)
        self.market: Optional[SpotMarket] = None
        self.spot_fleet: Optional[SpotFleetManager] = None
        if spot:
            self.market = SpotMarket(self.sim)
            self.pool.attach_market(self.market)
            self.spot_fleet = SpotFleetManager(
                self.sim, self.cluster, self.pool, timeline=self.timeline)
        # Acknowledged-write audit: (namespace, key) -> the promised version.
        self._write_audit: Optional[Dict[Tuple[str, Any], Any]] = (
            {} if (spot if write_audit is None else write_audit) else None
        )
        self.registry = SchemaRegistry()
        self.analyzer = QueryAnalyzer(self.registry, max_read_work=max_read_work,
                                      max_update_work=max_update_work)
        self.compiler = QueryCompiler()
        self._adapter = _RouterStorageAdapter(self)
        self.maintainer = IndexMaintainer(self.registry, self._adapter)
        self.updater = AsyncIndexUpdater(
            simulator=self.sim,
            maintainer=self.maintainer,
            node_count_fn=lambda: self.cluster.node_count(),
            updates_per_second_per_node=updates_per_second_per_node,
            default_staleness_bound=self.spec.read.staleness_bound,
            fifo=fifo_updates,
        )
        self.sessions = SessionManager(default_guarantee=self.spec.session)
        self.resolver = ConflictResolver(self.spec.write, replication_factor)
        self.arbitrator = Arbitrator(self.spec)
        self.latencies = LatencyRecorder()
        self.slas: Dict[str, PerformanceSLA] = {
            "read": PerformanceSLA(
                percentile=self.spec.performance.percentile,
                latency=self.spec.performance.latency,
                availability=self.spec.performance.availability,
                op_type="read",
            ),
            "write": PerformanceSLA(
                percentile=self.spec.performance.percentile,
                latency=self.spec.performance.latency,
                availability=self.spec.performance.availability,
                op_type="write",
            ),
        }
        self._trackers: Dict[str, SLATracker] = {
            op: SLATracker(op, sla.percentile, sla.latency, sla.availability)
            for op, sla in self.slas.items()
        }
        # Fixed-clock compliance windows (two ints per window per op) — the
        # always-on series the validation grid's windowed SLA policy gates
        # on, independent of whether the autoscale monitor ever ticks.
        self._compliance: Dict[str, WindowedComplianceTracker] = {
            op: WindowedComplianceTracker(COMPLIANCE_WINDOW_SECONDS, sla.latency)
            for op, sla in self.slas.items()
        }
        self._op_counts: Dict[str, int] = {"read": 0, "write": 0}
        # Reads served under arbitration with an *unverifiable* staleness
        # bound (primary unreachable / failed mid-check).  The validation
        # grid requires this to stay 0 in fault-free cells: the declared
        # bound must hold by verification, not by luck.
        self._stale_served = 0
        # Latencies of reads the *cluster* served this control window (cache
        # hits excluded).  When cache absorption blends the window's read
        # percentile, this is the clean label the latency model trains on.
        self._cluster_read_window = PercentileEstimator()
        self._queries: Dict[str, CompiledQuery] = {}
        self._window_lag_max = 0.0
        self.cluster.replication.add_lag_listener(self._on_replication_lag)

        self.latency_model = LatencyPercentileModel(
            base_service_time=0.004,
            node_capacity_ops=instance_type.capacity_ops_per_sec,
            percentile=self.spec.performance.percentile,
        )
        # Closed-form M/G/k sizing backbone; calibrated per window by the
        # monitor and consulted by the analytical/hybrid planner backends.
        self.sizing_model = AnalyticSizingModel(
            node_capacity_ops=instance_type.capacity_ops_per_sec,
            base_service_time=0.004,
            percentile=self.spec.performance.percentile,
        )
        self.lag_model = PropagationLagModel()
        self.forecaster = WorkloadForecaster()
        self.monitor = SLAMonitor(
            cluster=self.cluster,
            stats_provider=self,
            latency_model=self.latency_model,
            lag_model=self.lag_model,
            slas=self.slas,
            # With the rebalancer active, hotspot windows must not teach the
            # capacity model that nodes never help (see SLAMonitor._train).
            exclude_hotspot_training=repartition,
            # The rebalancer's decayed token sketch is a steadier rate signal
            # than per-node interarrival EWMAs (see rate_estimate()); use it
            # for the mean-utilisation feature when it is being fed.
            rate_tracker=self.rebalancer.tracker if self.rebalancer is not None else None,
            sizing_model=self.sizing_model,
            telemetry=self.telemetry,
            contention_config=self.contention_config,
            tracer=self.tracer,
        )
        self.planner = CapacityPlanner(
            latency_model=self.latency_model,
            lag_model=self.lag_model,
            node_capacity_ops=instance_type.capacity_ops_per_sec,
            min_nodes=max(min_groups, 1) * replication_factor,
            max_nodes=max_instances,
            repartition_hot_utilisation=repartition_hot_utilisation,
            backend=planner_backend,
            clamp_band=planner_clamp_band,
            sizing_model=self.sizing_model,
        )
        self.autoscale = autoscale
        self.controller = ProvisioningController(
            simulator=self.sim,
            cluster=self.cluster,
            pool=self.pool,
            monitor=self.monitor,
            planner=self.planner,
            forecaster=self.forecaster,
            updater=self.updater,
            slas=self.slas,
            spec=self.spec,
            control_interval=control_interval,
            predictive=predictive_scaling,
            rebalancer=self.rebalancer,
            timeline=self.timeline,
            spot_fleet=self.spot_fleet,
            contention_config=self.contention_config,
        )
        self._started = False

    # ----------------------------------------------------------------- lifecycle

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.sim.now

    def start(self) -> None:
        """Start background activity: index maintenance and (optionally) autoscaling."""
        if self._started:
            return
        self.updater.start()
        if self.contention is not None:
            self.contention.install(self.cluster)
        if self.autoscale:
            self.controller.start()
        self._started = True

    def run_for(self, seconds: float) -> float:
        """Advance simulated time by ``seconds``, processing all scheduled events."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        return self.sim.run_until(self.sim.now + seconds)

    def flush_indexes(self) -> int:
        """Synchronously drain the index-maintenance queue (tests and examples)."""
        return self.updater.drain_now()

    def settle(self, seconds: float = 2.0) -> None:
        """Let in-flight replication and index maintenance finish.

        Convenience for examples and tests that drive the API directly (rather
        than through a load generator): advances simulated time so scheduled
        replication applies, drains the maintenance queue, then advances time
        again so the index writes themselves replicate.
        """
        if seconds <= 0:
            raise ValueError("seconds must be positive")
        self.run_for(seconds)
        self.flush_indexes()
        self.run_for(seconds)
        self.cluster.decay_load()

    # -------------------------------------------------------------------- schema

    def register_entity(self, schema: EntitySchema) -> EntitySchema:
        """Declare an entity set."""
        return self.registry.register_entity(schema)

    def register_relationship(self, relationship: Relationship) -> Relationship:
        """Declare a bounded relationship between entity sets."""
        return self.registry.register_relationship(relationship)

    # ------------------------------------------------------------------- queries

    def register_query(self, name: str, sql: str) -> CompiledQuery:
        """Declare a query template; admitted templates get a maintained index.

        Raises :class:`~repro.core.query.analyzer.QueryRejected` when the
        template cannot be executed scale-independently, with the reason.
        """
        template = parse_query(sql)
        analyzed = self.analyzer.analyze(template)
        compiled = self.compiler.compile(name, analyzed)
        self.maintainer.register(compiled)
        self._queries[name] = compiled
        return compiled

    def query_names(self) -> List[str]:
        return sorted(self._queries.keys())

    def compiled_query(self, name: str) -> CompiledQuery:
        if name not in self._queries:
            raise KeyError(f"no query template registered under {name!r}")
        return self._queries[name]

    def maintenance_table(self) -> List[MaintenanceRule]:
        """The Figure-3 table: every maintenance rule across registered queries."""
        rules: List[MaintenanceRule] = []
        for compiled in self._queries.values():
            rules.extend(compiled.maintenance_rules)
        return rules

    # ------------------------------------------------------------------ sessions

    def open_session(self, session_id: str,
                     guarantee: Optional[SessionGuarantee] = None) -> Session:
        """Open a client session (needed for the session-guarantee axes)."""
        return self.sessions.open(session_id, guarantee)

    # -------------------------------------------------------------------- writes

    def put(self, entity: str, row: Dict[str, Any],
            session_id: Optional[str] = None) -> OperationOutcome:
        """Insert or update one entity row, honouring the write-consistency axis."""
        schema = self.registry.entity(entity)
        schema.validate_row(row)
        key = schema.storage_key(row)
        namespace = entity_namespace(entity)
        old_row = self._adapter.entity_row(entity, key)
        resolved = self.resolver.resolve(old_row, row)
        # Trace scope opens after the adapter pre-read: its latency is not
        # part of the outcome the client is charged, so its spans must not
        # land on this trace.
        tracer = self.tracer
        traced = tracer is not None and tracer.maybe_begin("write", self.sim.now)
        result = self.router.write(
            namespace, key, resolved,
            writer=session_id or "",
            write_quorum=self.resolver.write_quorum(),
        )
        if traced:
            tracer.end(result.latency, result.success)
        self._record_op("write", result.latency, result.success)
        if not result.success:
            return OperationOutcome(success=False, latency=result.latency, error=result.error)
        if self.cache is not None:
            self.cache.note_entity_write(namespace, key)
        self.updater.enqueue(
            EntityWrite(entity=entity, old_row=old_row, new_row=resolved),
            staleness_bound=self.spec.read.staleness_bound,
        )
        if self._write_audit is not None and result.value is not None:
            self._write_audit[(namespace, key)] = result.value
        if session_id is not None and result.value is not None:
            self.sessions.open(session_id).note_write(namespace, key, result.value)
        return OperationOutcome(success=True, latency=result.latency, row=resolved)

    def delete(self, entity: str, key: Tuple,
               session_id: Optional[str] = None) -> OperationOutcome:
        """Delete one entity row (and queue the index maintenance it implies)."""
        schema = self.registry.entity(entity)
        namespace = entity_namespace(entity)
        old_row = self._adapter.entity_row(entity, key)
        tracer = self.tracer
        traced = tracer is not None and tracer.maybe_begin("write", self.sim.now)
        result = self.router.delete(namespace, key, writer=session_id or "")
        if traced:
            tracer.end(result.latency, result.success)
        self._record_op("write", result.latency, result.success)
        if not result.success:
            return OperationOutcome(success=False, latency=result.latency, error=result.error)
        if self.cache is not None:
            self.cache.note_entity_write(namespace, key)
        if self._write_audit is not None and result.value is not None:
            self._write_audit[(namespace, key)] = result.value
        if old_row is not None:
            self.updater.enqueue(
                EntityWrite(entity=entity, old_row=old_row, new_row=None),
                staleness_bound=self.spec.read.staleness_bound,
            )
        return OperationOutcome(success=True, latency=result.latency, row=old_row)

    # --------------------------------------------------------------------- reads

    def get(self, entity: str, key: Tuple,
            session_id: Optional[str] = None) -> OperationOutcome:
        """Read one entity row under the declared read-consistency and session axes.

        With the cache tier attached, a hit serves the cached version without
        touching the cluster; the TTL derivation and the session bypass in
        :mod:`repro.cache.policy` keep that shortcut inside the declared
        staleness bound and session guarantees.
        """
        namespace = entity_namespace(entity)
        session = self.sessions.get(session_id) if session_id is not None else None
        tracer = self.tracer
        traced = tracer is not None and tracer.maybe_begin("read", self.sim.now)
        if self.cache is not None:
            served = self._cached_entity_read(namespace, key, session)
            if served is not None:
                row, latency = served
                if traced:
                    tracer.add("cache_hit", latency)
                    tracer.end(latency, True)
                self._record_op("read", latency, True, cluster_served=False)
                return OperationOutcome(success=True, latency=latency, row=row)
            if traced:
                tracer.add("cache_miss", 0.0)
        value, latency, success, stale, error, freshness = self._consistent_read(
            namespace, key, session)
        if traced:
            tracer.end(latency, success)
        self._record_op("read", latency, success)
        if not success:
            return OperationOutcome(success=False, latency=latency, error=error, stale=stale)
        if self.cache is not None:
            self._admit_entity_read(namespace, key, value, stale, freshness)
        row = dict(value.value) if value is not None and isinstance(value.value, dict) else None
        return OperationOutcome(success=True, latency=latency, row=row, stale=stale)

    def query(self, name: str, params: Dict[str, Any],
              session_id: Optional[str] = None) -> QueryResult:
        """Execute a registered query template with bound parameters."""
        compiled = self.compiled_query(name)
        session = self.sessions.get(session_id) if session_id is not None else None
        # A query is one client read op, but several cache lookups; classify
        # the op as cluster-served (for the miss-path latency label) when any
        # of its sub-reads actually reached the cluster — its latency is then
        # dominated by cluster service, not front-tier memory.
        touched_cluster = [self.cache is None]
        tracer = self.tracer
        traced = tracer is not None and tracer.maybe_begin("query", self.sim.now)
        # The executor composes parallel dereferences by max, so their raw
        # spans cannot stay on-path: everything recorded after this mark is
        # demoted when the query completes and replaced with one aggregate
        # ``index_deref`` span whose duration is the winning dereference.
        deref_mark = [-1]
        range_latency_total = [0.0]

        def _note_deref_start():
            if traced and deref_mark[0] < 0:
                deref_mark[0] = tracer.mark()

        def range_read(namespace, start, end, limit, reverse):
            if self.cache is not None:
                cached = self.cache.lookup_range(namespace, start, end, limit, reverse)
                if cached is not None:
                    hit_latency = self.cache.sample_hit_latency()
                    if traced:
                        tracer.add("cache_hit", hit_latency, detail="range scan")
                    range_latency_total[0] += hit_latency
                    return cached, hit_latency
                if traced:
                    tracer.add("cache_miss", 0.0, detail="range scan")
            touched_cluster[0] = True
            # A scan that will be *cached* reads the primary: a lagging
            # replica could hand us rows missing an index write that was
            # already applied — and whose apply-time invalidation therefore
            # already fired — leaving stale rows cached for a full TTL with
            # nothing left to evict them.  Primary fills close that race;
            # with the cache off, reads keep their replica load-balancing.
            will_admit = self.cache is not None and self.cache.admits_ranges()
            result = self.router.read_range(
                KeyRange(namespace=namespace, start=start, end=end),
                limit=limit, reverse=reverse, from_primary=will_admit,
            )
            range_latency_total[0] += result.latency
            if not result.success:
                return [], result.latency
            rows = [(key, value.value if isinstance(value.value, dict) else {})
                    for key, value in result.rows]
            if will_admit:
                self.cache.admit_range(namespace, start, end, limit, reverse, rows)
            return rows, result.latency

        def entity_get(entity_name, key):
            _note_deref_start()
            namespace = entity_namespace(entity_name)
            served = self._cached_entity_read(namespace, key, session)
            if served is not None:
                return served
            touched_cluster[0] = True
            value, latency, success, stale, _, freshness = self._consistent_read(
                namespace, key, session)
            if success:
                self._admit_entity_read(namespace, key, value, stale, freshness)
            if not success or value is None or not isinstance(value.value, dict):
                return None, latency
            return dict(value.value), latency

        def entity_get_many(entity_name, keys):
            _note_deref_start()
            namespace = entity_namespace(entity_name)
            out = {}
            misses = []
            for key in keys:
                if key in out or key in misses:
                    continue
                served = self._cached_entity_read(namespace, key, session)
                if served is not None:
                    out[key] = served
                else:
                    misses.append(key)
            if misses:
                touched_cluster[0] = True
                routed = self.router.read_many(namespace, misses)
                for key in misses:
                    value, latency, success, stale, _, freshness = (
                        self._verify_replica_read(namespace, key, routed[key], session))
                    if success:
                        self._admit_entity_read(namespace, key, value, stale, freshness)
                    if not success or value is None or not isinstance(value.value, dict):
                        out[key] = (None, latency)
                    else:
                        out[key] = (dict(value.value), latency)
            return out

        executor = QueryExecutor(range_read, entity_get, entity_get_many)
        result = executor.execute(compiled.plan, params)
        if traced:
            if deref_mark[0] >= 0:
                tracer.demote_since(deref_mark[0])
                # The executor charges the slowest dereference (parallel
                # fetches); one aggregate span carries exactly that time.
                deref_total = result.latency - range_latency_total[0]
                if deref_total > 0.0:
                    tracer.add("index_deref", deref_total,
                               detail=f"{result.dereferences} parallel dereference(s)")
            tracer.end(result.latency, True)
        self._record_op("read", result.latency, True,
                        cluster_served=touched_cluster[0])
        return result

    # ------------------------------------------------------------- cache tier glue

    def _cached_entity_read(self, namespace: str, key: Key,
                            session: Optional[Session]):
        """Serve one entity read from the cache tier, if it can.

        Returns ``(row, latency)`` on a hit — with the session's monotonic
        history updated, exactly as a cluster read would — or None on
        miss/bypass/no cache (the caller then reads through the cluster).
        """
        if self.cache is None:
            return None
        entry = self.cache.lookup_entity(namespace, key, session)
        if entry is None:
            return None
        value = entry.value
        if session is not None:
            session.note_read(namespace, key, value)
        row = (dict(value.value)
               if value is not None and isinstance(value.value, dict) else None)
        return row, self.cache.sample_hit_latency()

    def _admit_entity_read(self, namespace: str, key: Key, value,
                           stale: bool, known_staleness: Optional[float]) -> None:
        """Read-through fill after a successful cluster read."""
        if self.cache is not None and not stale:
            self.cache.admit_entity(namespace, key, value, known_staleness)

    # ------------------------------------------------------- consistency-aware read

    def _consistent_read(
        self,
        namespace: str,
        key: Key,
        session: Optional[Session],
    ):
        """Replica read with staleness-bound and session-guarantee enforcement.

        Returns (value, latency, success, stale, error, known_staleness).
        ``known_staleness`` is how many seconds the returned value was behind
        the primary when it was served — 0.0 when verified current, a
        positive age when the primary held a newer (still in-bound) version,
        and None when the bound could not be verified.  The cache tier
        subtracts it from the staleness budget when deriving an entry's TTL,
        and never admits unverified (None) reads.
        """
        result = self.router.read(namespace, key)
        return self._verify_replica_read(namespace, key, result, session)

    def _verify_replica_read(self, namespace: str, key: Key, result, session):
        """Staleness-bound and session-guarantee checks on a routed read.

        Split from :meth:`_consistent_read` so batched dereferences can fetch
        values as per-group multigets and still run the identical per-key
        verification.  Same return shape as ``_consistent_read``.
        """
        if not result.success:
            return None, result.latency, False, False, result.error, None
        value = result.value
        latency = result.latency
        stale = False
        known_staleness: Optional[float] = None

        group = self.cluster.group_for_key(namespace, key)
        primary_id = group.primary
        # Fast path: a read served by the owning primary is verified current
        # by construction — the staleness peek below would compare the
        # primary's value to itself (and the successful hop implies the
        # primary is reachable).  Sessions still run their guarantee checks:
        # a migration-window write can leave a session ahead of the current
        # owner's primary, and the re-read below dual-routes to catch that.
        served_by_primary = result.node_id == primary_id
        if session is None and served_by_primary:
            return value, latency, True, False, None, 0.0
        primary_reachable = served_by_primary or self.cluster.network.is_reachable(
            "client", primary_id)

        needs_primary = False
        # Staleness bound: if the primary holds a newer version that has been
        # committed for longer than the declared bound, the replica value is
        # too stale to serve.
        if served_by_primary:
            known_staleness = 0.0
        elif primary_reachable:
            primary_node = self.cluster.nodes.get(primary_id)
            if primary_node is not None and primary_node.alive:
                try:
                    primary_value = primary_node.peek(namespace, key)
                except Exception:  # NodeDownError
                    primary_value = None
                if primary_value is not None:
                    replica_version = value.version if value is not None else 0
                    age = self.sim.now - primary_value.timestamp
                    if primary_value.version <= replica_version:
                        known_staleness = 0.0
                    elif age > self.spec.read.staleness_bound:
                        needs_primary = True
                    elif primary_value.version == replica_version + 1:
                        # Exactly one version behind: the primary value's age
                        # is precisely when the replica value was superseded.
                        known_staleness = age
                    else:
                        # Two or more versions behind: the served value was
                        # superseded by an *older* intermediate write whose
                        # commit time the primary no longer holds, so its true
                        # staleness is unknown — serve it (the paper's bound
                        # is enforced against the newest version, as before)
                        # but never admit it to the cache.
                        known_staleness = None
                elif value is None:
                    # Verified negative: the primary has nothing newer either.
                    known_staleness = 0.0
        else:
            # Cannot verify the bound at all: availability vs. read consistency.
            decision = self.arbitrator.resolve_read_conflict(
                self.sim.now, "staleness_check_unreachable"
            )
            if decision.failed_request:
                return (None, latency, False, False,
                        "read consistency prioritised over availability", None)
            stale = True

        # Session guarantees: the replica value must be at least as new as what
        # this session wrote / has already seen.
        if session is not None and not session.acceptable(namespace, key, value):
            needs_primary = True

        if needs_primary:
            if primary_reachable:
                primary_result = self.router.read(namespace, key, from_primary=True)
                latency += primary_result.latency
                if primary_result.success:
                    value = primary_result.value
                    known_staleness = 0.0
                else:
                    decision = self.arbitrator.resolve_read_conflict(
                        self.sim.now, "primary_read_failed"
                    )
                    if decision.failed_request:
                        return None, latency, False, False, primary_result.error, None
                    stale = True
                    known_staleness = None
            else:
                decision = self.arbitrator.resolve_session_conflict(
                    self.sim.now, "primary_unreachable_for_session_guarantee"
                )
                if decision.failed_request:
                    return None, latency, False, False, "session guarantee unsatisfiable", None
                stale = True
                known_staleness = None

        if session is not None:
            session.note_read(namespace, key, value)
        if stale:
            self._stale_served += 1
        return value, latency, True, stale, None, known_staleness

    # --------------------------------------------------------- provider interface

    def cumulative_operation_counts(self) -> Dict[str, int]:
        """Cumulative read/write counts (WorkloadStatsProvider)."""
        return dict(self._op_counts)

    def sla_trackers(self) -> Dict[str, SLATracker]:
        """Live SLA trackers (WorkloadStatsProvider)."""
        return self._trackers

    def pending_maintenance(self) -> int:
        """Queued index-maintenance tasks (WorkloadStatsProvider)."""
        return self.updater.pending_count()

    def recent_max_propagation_lag(self) -> float:
        """Max replication lag observed since the last call (WorkloadStatsProvider)."""
        lag = self._window_lag_max
        self._window_lag_max = 0.0
        return lag

    def cache_hit_counts(self) -> Tuple[int, int]:
        """Cumulative cache (hits, misses); (0, 0) without a cache tier
        (WorkloadStatsProvider — the monitor diffs these per window)."""
        if self.cache is None:
            return (0, 0)
        return self.cache.hit_counts()

    def drain_cluster_read_window(self) -> Optional[PercentileEstimator]:
        """Latencies of cluster-served reads since the last drain, or None.

        WorkloadStatsProvider: the monitor drains this every control window.
        Cache hits never land here, so on windows where the blended read
        percentile is poisoned by sub-millisecond front-tier service times
        this is still an honest cluster-latency label.  Draining hands the
        estimator over and starts a fresh window.  Only populated when a
        cache tier is attached (always None — and cost-free — otherwise; an
        uncached window's tracker report already IS the cluster label).
        """
        if len(self._cluster_read_window) == 0:
            return None
        window = self._cluster_read_window
        self._cluster_read_window = PercentileEstimator()
        return window

    def _note_index_write(self, namespace: str, key: Key) -> None:
        """Adapter hook: an index/reverse-index entry was written; invalidate
        the cached query scans covering it."""
        if self.cache is not None:
            self.cache.note_index_write(namespace, key)

    def _on_replication_lag(self, record) -> None:
        if record.lag is not None:
            self._window_lag_max = max(self._window_lag_max, record.lag)
            # Cached estimator reference: one list append per propagation,
            # no registry lookup (propagations outnumber client ops by the
            # replication factor, so this path's cost is what bounds the
            # telemetry-on overhead — see test_telemetry_overhead).
            lag_histogram = self._tel_replication_lag
            if lag_histogram is not None:
                lag_histogram.add(record.lag)

    def _record_op(self, op_type: str, latency: float, success: bool,
                   cluster_served: bool = True) -> None:
        self._op_counts[op_type] = self._op_counts.get(op_type, 0) + 1
        self._trackers[op_type].observe(latency if success else None, success)
        self._compliance[op_type].observe(
            self.sim.now, latency if success else None)
        # Per-op telemetry counters/histograms (`engine.*.ops`, latency
        # distributions) duplicate state the engine already tracks, so they
        # are folded in at collection time (collect_telemetry), not here;
        # only the outcomes with no existing home are counted on the path.
        telemetry = self.telemetry
        if telemetry is not None:
            if not success:
                telemetry.count(f"engine.{op_type}.failures")
            elif not cluster_served:
                telemetry.count("engine.read.cache_served")
        if success:
            self.latencies.record(op_type, latency)
            # Only cache-attached engines track the miss path: the label is
            # consumed solely on blended windows (impossible without a
            # cache), and an uncached engine would otherwise pay per-read
            # work and unbounded growth whenever no monitor drains it.
            if cluster_served and op_type == "read" and self.cache is not None:
                self._cluster_read_window.add(latency)
                # With no monitor draining per control window (autoscale off),
                # the window would grow without bound; past the cap nothing is
                # consuming the label, so resetting loses nothing.  A drained
                # window stays orders of magnitude below the cap.
                if len(self._cluster_read_window) > self.CLUSTER_READ_WINDOW_CAP:
                    self._cluster_read_window.reset()

    # ----------------------------------------------------------------- reporting

    def sla_report(self, op_type: str = "read"):
        """Overall SLA attainment for one operation type."""
        return self._trackers[op_type].overall_report()

    def sla_compliance_windows(self, op_type: str = "read") -> List[ComplianceWindow]:
        """Fixed-clock windowed compliance series (validation-grid substrate)."""
        return self._compliance[op_type].windows()

    def cost_so_far(self) -> float:
        """Dollars spent on instances so far."""
        return self.pool.total_cost()

    def cache_hit_rate(self) -> float:
        """All-time cache hit rate (0.0 without a cache tier)."""
        return self.cache.hit_rate() if self.cache is not None else 0.0

    def stale_read_count(self) -> int:
        """Reads served stale under arbitration (bound unverifiable)."""
        return self._stale_served

    def lost_write_count(self) -> Optional[int]:
        """Acknowledged writes no alive owner still holds (None = audit off).

        The audit records the version each acknowledged write promised the
        client; this sweep asks the owning group whether any alive member
        still holds a version at least that new in last-writer-wins order
        (a later acknowledged overwrite counts — the audit itself advanced).
        The interruption-storm grid scenario gates on this staying 0: a
        drain or hibernation must never take the only copy of an
        acknowledged write with it.
        """
        if self._write_audit is None:
            return None
        lost = 0
        for (namespace, key), acked in self._write_audit.items():
            group_id = self.cluster.partitioner.group_for_token(str(key[0]))
            group = self.cluster.groups.get(group_id)
            held = False
            if group is not None:
                for node_id in group.node_ids:
                    node = self.cluster.nodes.get(node_id)
                    if node is None or not node.alive:
                        continue
                    stored = node.peek(namespace, key, include_tombstones=True)
                    # wins_over returns True on exact ties, so this accepts
                    # the promised version itself or anything newer.
                    if stored is not None and stored.wins_over(acked):
                        held = True
                        break
            if not held:
                lost += 1
        return lost

    def node_count(self) -> int:
        return self.cluster.node_count()

    # ------------------------------------------------------------- observability

    def traces(self) -> List:
        """Completed traces (empty without ``telemetry=``)."""
        return [] if self.tracer is None else list(self.tracer.traces)

    def collect_telemetry(self) -> Optional[Telemetry]:
        """The telemetry registry, with hot-path-owned metrics folded in.

        Subsystems that already track their own state per request — the
        router's plain-dict op counters, the engine's op counts and latency
        recorder, the cache's hit counts — are copied into the registry here
        (collection time) rather than double-counted per request, which is
        what keeps the telemetry-on overhead within its benchmarked bound.
        Idempotent: repeated collection overwrites rather than accumulates.
        """
        telemetry = self.telemetry
        if telemetry is None:
            return None
        for name, value in self.router.op_counts().items():
            telemetry.set_count(f"router.{name}", value)
        for op_type, count in self._op_counts.items():
            telemetry.set_count(f"engine.{op_type}.ops", count)
        # Successful-op latency distributions, from the recorder that
        # already observes them (failed ops carry no latency sample).
        for op_type in self.latencies.op_types():
            telemetry.set_histogram(f"engine.{op_type}.latency",
                                    self.latencies.all_time(op_type))
        if self._tel_replication_lag is not None:
            telemetry.set_count("replication.propagations",
                                len(self._tel_replication_lag))
        if self.cache is not None:
            hits, misses = self.cache.hit_counts()
            telemetry.set_count("cache.hits", hits)
            telemetry.set_count("cache.misses", misses)
        telemetry.gauge("cluster.peak_nodes", float(self.cluster.node_count()))
        return telemetry
