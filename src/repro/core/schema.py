"""Entity schemas with declared cardinality bounds.

SCADS requires developers to declare, up front, how many rows any single
partition-key value may own (Facebook's 5 000-friend limit is the paper's
example).  Those bounds are what the query analyzer multiplies together to
prove a query template's cost is independent of the total number of users.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


class SchemaError(ValueError):
    """Raised for invalid schema declarations or rows that violate them."""


class FieldType(enum.Enum):
    """Supported field types (key fields must be STRING, INT, or FLOAT)."""

    STRING = "string"
    INT = "int"
    FLOAT = "float"

    def python_types(self) -> Tuple[type, ...]:
        if self is FieldType.STRING:
            return (str,)
        if self is FieldType.INT:
            return (int,)
        return (int, float)


@dataclass(frozen=True)
class Field:
    """One typed field of an entity."""

    name: str
    field_type: FieldType = FieldType.STRING

    def __post_init__(self) -> None:
        # Accepted types are fixed per field; cache the tuple so per-row
        # validation does not re-derive it (frozen dataclass, hence setattr).
        object.__setattr__(self, "_accepted_types", self.field_type.python_types())

    def validate(self, value: Any) -> None:
        """Check a value against the field type (None is allowed for non-key fields)."""
        if value is None:
            return
        if isinstance(value, bool) or not isinstance(value, self._accepted_types):
            raise SchemaError(
                f"field {self.name!r} expects {self.field_type.value}, "
                f"got {type(value).__name__}: {value!r}"
            )


@dataclass(frozen=True)
class Relationship:
    """A named, bounded association used by the query analyzer.

    ``max_cardinality`` bounds how many target rows one source row may relate
    to.  A relationship without a finite bound (``None``) models Twitter-style
    unbounded followers — queries traversing it are rejected.
    """

    name: str
    from_entity: str
    to_entity: str
    max_cardinality: Optional[int] = None

    @property
    def is_bounded(self) -> bool:
        return self.max_cardinality is not None


@dataclass
class EntitySchema:
    """One entity set (table) stored in SCADS.

    Args:
        name: entity-set name, also the storage namespace.
        key_fields: ordered primary-key fields; the first is the partition key.
        value_fields: non-key fields.
        max_per_partition: bound on rows sharing the same partition-key value
            (None means unbounded — allowed for storage, but queries that need
            to enumerate the partition will be rejected unless they carry a
            LIMIT).
        column_bounds: optional bounds on rows per distinct value of other
            columns (e.g. a symmetric friendship table is bounded per ``f2``
            as well as per ``f1``).  The query analyzer needs these to prove
            that reverse traversals during index maintenance stay O(K).
    """

    name: str
    key_fields: List[Field]
    value_fields: List[Field] = field(default_factory=list)
    max_per_partition: Optional[int] = None
    column_bounds: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("entity name must be non-empty")
        if not self.key_fields:
            raise SchemaError(f"entity {self.name!r} needs at least one key field")
        names = [f.name for f in self.key_fields] + [f.name for f in self.value_fields]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise SchemaError(f"entity {self.name!r} has duplicate fields: {sorted(duplicates)}")
        if self.max_per_partition is not None and self.max_per_partition < 1:
            raise SchemaError("max_per_partition must be >= 1 when given")
        for column, bound in self.column_bounds.items():
            if column not in names:
                raise SchemaError(
                    f"column bound references unknown field {column!r} on {self.name!r}"
                )
            if bound < 1:
                raise SchemaError(f"column bound for {column!r} must be >= 1, got {bound}")
        # Per-row validation runs on every put; cache the name→field map so
        # field lookups are dict hits instead of rebuilding name lists.
        # (Field lists must not be mutated after construction.)
        self._fields_by_name: Dict[str, Field] = {
            f.name: f for f in self.key_fields + self.value_fields
        }
        self._key_field_names: List[str] = [f.name for f in self.key_fields]

    # ------------------------------------------------------------------ lookup

    @property
    def key_field_names(self) -> List[str]:
        return list(self._key_field_names)

    @property
    def value_field_names(self) -> List[str]:
        return [f.name for f in self.value_fields]

    @property
    def field_names(self) -> List[str]:
        return list(self._fields_by_name)

    def field_by_name(self, name: str) -> Field:
        field_ = self._fields_by_name.get(name)
        if field_ is None:
            raise SchemaError(f"entity {self.name!r} has no field {name!r}")
        return field_

    def has_field(self, name: str) -> bool:
        return name in self._fields_by_name

    def is_key_field(self, name: str) -> bool:
        return name in self._key_field_names

    def key_position(self, name: str) -> int:
        """Position of a field within the primary key (raises if not a key field)."""
        try:
            return self.key_field_names.index(name)
        except ValueError as exc:
            raise SchemaError(f"{name!r} is not a key field of {self.name!r}") from exc

    def rows_per_value_bound(self, column: str) -> Optional[int]:
        """Bound on how many rows share one value of ``column`` (None = unbounded).

        A single-field primary key bounds itself at 1; the partition key is
        bounded by ``max_per_partition``; other columns fall back to any
        declared ``column_bounds`` entry.
        """
        if not self.has_field(column):
            raise SchemaError(f"entity {self.name!r} has no field {column!r}")
        if self.is_key_field(column) and len(self.key_fields) == 1:
            return 1
        if column == self.key_field_names[0]:
            return self.max_per_partition
        return self.column_bounds.get(column)

    # --------------------------------------------------------------- row checks

    def storage_key(self, row: Dict[str, Any]) -> Tuple:
        """The storage key tuple for a row (validates key fields are present)."""
        key_parts = []
        for f in self.key_fields:
            if f.name not in row or row[f.name] is None:
                raise SchemaError(
                    f"row for {self.name!r} is missing key field {f.name!r}: {row!r}"
                )
            f.validate(row[f.name])
            key_parts.append(row[f.name])
        return tuple(key_parts)

    def validate_row(self, row: Dict[str, Any]) -> None:
        """Validate a full row: key present and typed, no unknown fields."""
        self.storage_key(row)
        fields_by_name = self._fields_by_name
        for name, value in row.items():
            field_ = fields_by_name.get(name)
            if field_ is None:
                raise SchemaError(f"entity {self.name!r} has no field {name!r}")
            field_.validate(value)

    def value_dict(self, row: Dict[str, Any]) -> Dict[str, Any]:
        """The non-key portion of a row (missing fields become None)."""
        return {f.name: row.get(f.name) for f in self.value_fields}


class SchemaRegistry:
    """All entity schemas and relationships an application has declared."""

    def __init__(self) -> None:
        self._entities: Dict[str, EntitySchema] = {}
        self._relationships: Dict[str, Relationship] = {}

    # ------------------------------------------------------------------ entities

    def register_entity(self, schema: EntitySchema) -> EntitySchema:
        if schema.name in self._entities:
            raise SchemaError(f"entity {schema.name!r} is already registered")
        self._entities[schema.name] = schema
        return schema

    def entity(self, name: str) -> EntitySchema:
        if name not in self._entities:
            raise SchemaError(f"unknown entity {name!r}")
        return self._entities[name]

    def has_entity(self, name: str) -> bool:
        return name in self._entities

    def entities(self) -> List[EntitySchema]:
        return list(self._entities.values())

    # ------------------------------------------------------------- relationships

    def register_relationship(self, relationship: Relationship) -> Relationship:
        for entity_name in (relationship.from_entity, relationship.to_entity):
            if entity_name not in self._entities:
                raise SchemaError(
                    f"relationship {relationship.name!r} references unknown entity {entity_name!r}"
                )
        if relationship.name in self._relationships:
            raise SchemaError(f"relationship {relationship.name!r} is already registered")
        self._relationships[relationship.name] = relationship
        return relationship

    def relationship(self, name: str) -> Relationship:
        if name not in self._relationships:
            raise SchemaError(f"unknown relationship {name!r}")
        return self._relationships[name]

    def relationships(self) -> List[Relationship]:
        return list(self._relationships.values())

    def cardinality_bound(self, entity_name: str) -> Optional[int]:
        """The per-partition row bound for an entity (None if unbounded)."""
        return self.entity(entity_name).max_per_partition
