"""Closed-form analytical fleet sizing: the provisioning planner's backbone.

The pure-ML capacity planner had a structural failure mode: SLA-violation
windows teach the latency model that "nodes never help", after which
inverting it demands capacity without bound.  This module provides the
antidote — an M/G/k-style queueing model that computes a node count in
closed form from three quantities the monitor already measures:

* the arrival rate the cluster must serve (the forecast, cache-discounted),
* the service-time distribution (a calibrated percentile service time), and
* the SLA target (percentile + latency bound, with planning headroom).

The model treats the cluster as ``k`` parallel single-server queues —
routing shards load near-uniformly across nodes, so each node is an
M/G/1-style server at utilisation ``rho = lambda / (k * mu)``.  The
simulated nodes (and most real stores) inflate service times by the
residence factor ``1 / (1 - rho)``, so the SLA-percentile latency at
utilisation ``rho`` is::

    L_p(rho) = rtt + S_p / (1 - rho)

where ``S_p`` is the percentile of the *base* (low-load) service-time
distribution and ``rtt`` the client network round trip.  Inverting
``L_p(rho) <= T`` gives the admissible utilisation in closed form::

    rho* = 1 - S_p / (T - rtt)        k = ceil(lambda_eff / (mu * rho*))

No search, no learned surface to run away on — and every term is
explainable (:meth:`SizingBreakdown.describe` spells the chain out).

Two calibrations keep the closed form honest without opening the door to
runaway, both bounded EWMAs over the monitor's window observations:

* **percentile service time** — each window's observed percentile latency,
  deflated by the measured utilisation, implies a base ``S_p``; the
  estimate may wander only within a configurable band around the analytic
  prior (the log-normal percentile of the node service distribution).
* **demand amplification** — one client operation fans out into several
  storage operations (query dereferences, index maintenance), so measured
  node utilisation implies an effective ops-per-client-op factor; sizing
  multiplies the arrival rate by it, again clamped to a configurable band.

Because both calibrations are clamped, adversarial training windows can
shift the analytical answer by at most a constant factor — the property the
hybrid planner's clamp band then extends to the ML residual.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def normal_quantile(p: float) -> float:
    """The standard normal quantile (probit) via Acklam's approximation.

    Accurate to ~1e-9 over (0, 1); used to turn the SLA percentile into a
    z-score for the log-normal service-time prior without a scipy
    dependency.
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0, 1), got {p}")
    # Coefficients for the central and tail rational approximations.
    a = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00)
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    if p > 1.0 - p_low:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / \
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)


@dataclass(frozen=True)
class SizingBreakdown:
    """The analytical answer plus every term that produced it.

    ``infeasible`` means no node count can meet the latency target — even an
    idle node's percentile service time exceeds it — so ``nodes`` is the
    capacity-stability floor (``rho <= max_stable_utilisation``) rather than
    a latency answer.  Consumers must surface the flag instead of renting
    toward ``max_nodes``; that silent cap is exactly the runaway this model
    exists to kill.
    """

    nodes: int
    infeasible: bool
    arrival_rate: float
    effective_rate: float
    amplification: float
    node_capacity_ops: float
    percentile_service_time: float
    network_round_trip: float
    target_latency: float
    effective_target: float
    admissible_utilisation: float

    def describe(self) -> str:
        """Human-readable "why this many nodes"."""
        if self.infeasible:
            return (
                f"{self.nodes} nodes (INFEASIBLE: percentile service "
                f"{self.percentile_service_time * 1000:.1f} ms + rtt "
                f"{self.network_round_trip * 1000:.1f} ms exceeds the "
                f"{self.effective_target * 1000:.1f} ms effective target at any scale; "
                f"holding the rho<={self.admissible_utilisation:.2f} capacity floor for "
                f"{self.effective_rate:.0f} ops/s)"
            )
        return (
            f"{self.nodes} nodes: {self.arrival_rate:.0f} client ops/s x "
            f"{self.amplification:.2f} amplification = {self.effective_rate:.0f} storage "
            f"ops/s; percentile service {self.percentile_service_time * 1000:.1f} ms / "
            f"(1 - rho) + rtt {self.network_round_trip * 1000:.1f} ms <= "
            f"{self.effective_target * 1000:.1f} ms admits rho* = "
            f"{self.admissible_utilisation:.2f}, so ceil({self.effective_rate:.0f} / "
            f"({self.node_capacity_ops:.0f} x {self.admissible_utilisation:.2f}))"
        )


class AnalyticSizingModel:
    """M/G/k-style closed-form node-count sizing with bounded calibration.

    Args:
        node_capacity_ops: per-node sustainable storage ops/sec (``mu``).
        base_service_time: median node service time at low load (seconds);
            anchors the percentile-service prior.
        service_sigma: log-sigma of the node service distribution (the
            simulator's nodes draw log-normal service times).
        percentile: the SLA percentile being sized for (e.g. 99.0).
        network_round_trip: client<->node round trip added to every request.
        max_stable_utilisation: never plan a node hotter than this, even
            when the latency target would admit it (queueing estimates are
            useless at rho -> 1).
        calibration_alpha: EWMA weight of each window's implied values.
        calibration_band: calibrated percentile service time may move at
            most this factor away from the prior (in either direction) —
            the bound that makes measurement-driven runaway impossible.
        amplification_band: measured storage-ops-per-client-op stays within
            [1/band, band]; prior is 1.0 (no fan-out).
    """

    def __init__(
        self,
        node_capacity_ops: float,
        base_service_time: float = 0.004,
        service_sigma: float = 0.45,
        percentile: float = 99.0,
        network_round_trip: float = 0.001,
        max_stable_utilisation: float = 0.95,
        calibration_alpha: float = 0.25,
        calibration_band: float = 8.0,
        amplification_band: float = 16.0,
    ) -> None:
        if node_capacity_ops <= 0:
            raise ValueError("node_capacity_ops must be positive")
        if base_service_time <= 0:
            raise ValueError("base_service_time must be positive")
        if not 0.0 < percentile < 100.0:
            raise ValueError(f"percentile must be in (0, 100), got {percentile}")
        if not 0.0 < max_stable_utilisation < 1.0:
            raise ValueError("max_stable_utilisation must be in (0, 1)")
        if not 0.0 < calibration_alpha <= 1.0:
            raise ValueError("calibration_alpha must be in (0, 1]")
        if calibration_band < 1.0 or amplification_band < 1.0:
            raise ValueError("calibration bands must be >= 1")
        self.node_capacity_ops = float(node_capacity_ops)
        self.base_service_time = float(base_service_time)
        self.service_sigma = float(service_sigma)
        self.percentile = float(percentile)
        self.network_round_trip = float(network_round_trip)
        self.max_stable_utilisation = float(max_stable_utilisation)
        self.calibration_alpha = float(calibration_alpha)
        self.calibration_band = float(calibration_band)
        self.amplification_band = float(amplification_band)
        # Prior: percentile of the log-normal base service distribution.
        z = normal_quantile(self.percentile / 100.0)
        self.prior_service_time = self.base_service_time * math.exp(self.service_sigma * z)
        self._calibrated_service: float | None = None
        self._calibrated_amplification: float | None = None
        self.windows_observed = 0

    # ------------------------------------------------------------- calibration

    def observe_window(self, features, observed_percentile_latency: float) -> None:
        """Fold one closed monitor window into the bounded calibrations.

        ``features`` is a :class:`~repro.ml.features.WorkloadFeatures` (or
        anything with ``request_rate``, ``node_count``, ``mean_utilisation``)
        describing the cluster-side window; ``observed_percentile_latency``
        is the window's measured SLA-percentile latency.
        """
        if not math.isfinite(observed_percentile_latency) or observed_percentile_latency <= 0:
            return
        rho = min(max(float(features.mean_utilisation), 0.0), self.max_stable_utilisation)
        implied_service = (observed_percentile_latency - self.network_round_trip) * (1.0 - rho)
        lo = self.prior_service_time / self.calibration_band
        hi = self.prior_service_time * self.calibration_band
        implied_service = min(max(implied_service, lo), hi)
        alpha = self.calibration_alpha
        if self._calibrated_service is None:
            self._calibrated_service = implied_service
        else:
            self._calibrated_service += alpha * (implied_service - self._calibrated_service)

        # Demand amplification: measured node work over client-op arrivals.
        rate = float(features.request_rate)
        if rate > 0 and features.node_count > 0:
            implied_amp = (float(features.mean_utilisation) * float(features.node_count)
                           * self.node_capacity_ops) / rate
            implied_amp = min(max(implied_amp, 1.0 / self.amplification_band),
                              self.amplification_band)
            if self._calibrated_amplification is None:
                self._calibrated_amplification = implied_amp
            else:
                self._calibrated_amplification += alpha * (
                    implied_amp - self._calibrated_amplification)
        self.windows_observed += 1

    def percentile_service_time(self) -> float:
        """Current percentile-service estimate (calibrated, else the prior)."""
        if self._calibrated_service is None:
            return self.prior_service_time
        return self._calibrated_service

    def amplification(self) -> float:
        """Current storage-ops-per-client-op estimate (1.0 until calibrated)."""
        if self._calibrated_amplification is None:
            return 1.0
        return self._calibrated_amplification

    # ---------------------------------------------------------------- sizing

    def predicted_percentile_latency(self, per_node_rate: float) -> float:
        """Percentile latency a node serving ``per_node_rate`` should show."""
        if per_node_rate < 0:
            raise ValueError("per_node_rate must be non-negative")
        rho = min(per_node_rate / self.node_capacity_ops, self.max_stable_utilisation)
        return self.network_round_trip + self.percentile_service_time() / (1.0 - rho)

    def required_nodes(
        self,
        arrival_rate: float,
        target_latency: float,
        headroom: float = 0.85,
        max_nodes: int = 10_000,
    ) -> SizingBreakdown:
        """Closed-form node count meeting the SLA, with its full breakdown.

        Monotone by construction: non-decreasing in ``arrival_rate`` and
        non-increasing in ``node_capacity_ops`` (property-tested in
        ``tests/test_planner_backends.py``).
        """
        if arrival_rate < 0:
            raise ValueError("arrival_rate must be non-negative")
        if target_latency <= 0:
            raise ValueError("target_latency must be positive")
        if not 0.0 < headroom <= 1.0:
            raise ValueError("headroom must be in (0, 1]")
        if max_nodes < 1:
            raise ValueError("max_nodes must be >= 1")
        effective_target = target_latency * headroom
        service = self.percentile_service_time()
        amplification = self.amplification()
        effective_rate = arrival_rate * amplification

        queue_budget = effective_target - self.network_round_trip
        infeasible = queue_budget <= service
        if infeasible:
            # Even an idle node misses the target; renting more cannot fix
            # latency, so hold the capacity-stability floor and say so.
            rho_star = self.max_stable_utilisation
        else:
            rho_star = min(1.0 - service / queue_budget, self.max_stable_utilisation)
        nodes = 1 if effective_rate == 0 else int(
            math.ceil(effective_rate / (self.node_capacity_ops * rho_star)))
        nodes = min(max(nodes, 1), max_nodes)
        return SizingBreakdown(
            nodes=nodes,
            infeasible=infeasible,
            arrival_rate=arrival_rate,
            effective_rate=effective_rate,
            amplification=amplification,
            node_capacity_ops=self.node_capacity_ops,
            percentile_service_time=service,
            network_round_trip=self.network_round_trip,
            target_latency=target_latency,
            effective_target=effective_target,
            admissible_utilisation=rho_star,
        )
