"""Capacity planning: forecast + models + SLAs -> target node count.

The planner is deliberately a pure function of its inputs so it can be unit
tested without a simulator: give it a forecast rate, the trained models, and
the declared SLAs, and it returns how many storage nodes the cluster should
have.  The controller is the piece that turns that number into rent/release
actions.

The latency requirement is answered by a pluggable backend (see
:mod:`repro.core.provisioning.backends`): ``analytical`` (closed-form
M/G/k-style sizing), ``ml`` (the learned latency model inverted by
bisection), or the default ``hybrid`` in which the ML answer is a bounded
residual clamped to ``clamp_band`` around the analytical answer.  The
utilisation ceiling and staleness headroom apply identically under every
backend.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.consistency.spec import ConsistencySpec, PerformanceSLA
from repro.core.provisioning.analytic import AnalyticSizingModel
from repro.core.provisioning.backends import make_backend
from repro.ml.performance_model import LatencyPercentileModel, PropagationLagModel


@dataclass
class CapacityPlan:
    """The planner's output for one control interval."""

    target_nodes: int
    forecast_rate: float
    latency_required_nodes: int
    utilisation_required_nodes: int
    staleness_pressure: bool
    reason: str
    # Fraction of forecast demand the cache tier is expected to absorb; the
    # node requirements above were computed against the discounted rate.
    cache_absorbed_fraction: float = 0.0
    # True when the observed load pattern suggests the SLA pressure comes from
    # *placement* (one hot group, cluster-wide headroom), so a split/migrate
    # should be tried before renting another replica group.
    repartition_candidate: bool = False
    # Which latency backend produced latency_required_nodes, and the raw
    # answers behind it.  analytic_nodes/ml_nodes are None when the backend
    # did not consult that model.
    backend: str = "hybrid"
    analytic_nodes: Optional[int] = None
    ml_nodes: Optional[int] = None
    # True when no node count within max_nodes meets the strictest SLA —
    # the plan holds a capacity-stability floor instead of chasing the
    # target, and the reason says so (no more silent max_nodes cap).
    latency_infeasible: bool = False
    # True when the hybrid backend clamped the ML answer into the band.
    ml_clamped: bool = False
    clamp_band: float = 0.0
    # The binding latency requirement's explanation — for the analytical and
    # hybrid backends this is the SizingBreakdown.describe() string, which
    # used to be computed and then dropped on the floor here.  The decision
    # timeline (repro.obs.timeline) records it with every plan.
    latency_detail: str = ""

    def describe(self) -> str:
        return (
            f"target={self.target_nodes} nodes (forecast {self.forecast_rate:.0f} ops/s; "
            f"latency needs {self.latency_required_nodes}, utilisation needs "
            f"{self.utilisation_required_nodes}, staleness pressure={self.staleness_pressure}) "
            f"— {self.reason}"
        )


class CapacityPlanner:
    """Chooses a target node count that meets every declared requirement.

    Args:
        latency_model: trained (or prior-driven) percentile latency model.
        lag_model: trained (or prior-driven) propagation lag model.
        node_capacity_ops: per-node sustainable ops/sec.
        target_utilisation: utilisation ceiling the plan aims for even when
            the latency model is optimistic (defence in depth).
        min_nodes: never plan below this many nodes (replication needs).
        max_nodes: hard cap (the pool's size, or a budget cap).
        staleness_scale_factor: extra capacity multiplier applied when the
            update queue is predicted to endanger the staleness bound.
        repartition_hot_utilisation: a window whose worst node exceeds this
            while the cluster mean stays under ``target_utilisation`` is
            flagged as a repartition candidate (hotspot, not overload).
        backend: latency-sizing backend — ``analytical``, ``ml``, or
            ``hybrid`` (default; ML clamped to ±``clamp_band`` around the
            analytical answer).
        clamp_band: the hybrid backend's admissible fractional deviation.
        sizing_model: the analytical model; built from the latency model's
            calibration (capacity, base service time, percentile) when not
            supplied.
    """

    def __init__(
        self,
        latency_model: LatencyPercentileModel,
        lag_model: PropagationLagModel,
        node_capacity_ops: float,
        target_utilisation: float = 0.6,
        min_nodes: int = 2,
        max_nodes: int = 10_000,
        staleness_scale_factor: float = 1.25,
        repartition_hot_utilisation: float = 0.75,
        backend: str = "hybrid",
        clamp_band: float = 0.3,
        sizing_model: Optional[AnalyticSizingModel] = None,
    ) -> None:
        if not 0.0 < target_utilisation < 1.0:
            raise ValueError("target_utilisation must be in (0, 1)")
        if min_nodes < 1 or max_nodes < min_nodes:
            raise ValueError("need 1 <= min_nodes <= max_nodes")
        if node_capacity_ops <= 0:
            raise ValueError("node_capacity_ops must be positive")
        if staleness_scale_factor < 1.0:
            raise ValueError("staleness_scale_factor must be >= 1")
        if not 0.0 < repartition_hot_utilisation <= 1.5:
            raise ValueError("repartition_hot_utilisation must be in (0, 1.5]")
        self.repartition_hot_utilisation = repartition_hot_utilisation
        self.latency_model = latency_model
        self.lag_model = lag_model
        self.node_capacity_ops = node_capacity_ops
        self.target_utilisation = target_utilisation
        self.min_nodes = min_nodes
        self.max_nodes = max_nodes
        self.staleness_scale_factor = staleness_scale_factor
        self.clamp_band = clamp_band
        if sizing_model is None:
            sizing_model = AnalyticSizingModel(
                node_capacity_ops=node_capacity_ops,
                base_service_time=latency_model.base_service_time,
                percentile=latency_model.percentile,
            )
        self.sizing_model = sizing_model
        self.backend_name = backend
        self._backend = make_backend(
            backend, sizing_model, latency_model, clamp_band=clamp_band)

    def plan(
        self,
        forecast_rate: float,
        write_fraction: float,
        slas: Dict[str, PerformanceSLA],
        spec: ConsistencySpec,
        pending_maintenance: int = 0,
        behind_schedule: bool = False,
        mean_utilisation: float = 0.0,
        max_utilisation: float = 0.0,
        cache_hit_rate: float = 0.0,
    ) -> CapacityPlan:
        """Compute the target node count for the forecast workload.

        ``mean_utilisation`` / ``max_utilisation`` are the observed cluster
        load statistics; a wide gap between them marks the plan as a
        repartition candidate (see :class:`CapacityPlan`).

        ``cache_hit_rate`` is the fraction of demand the cache tier has been
        absorbing (the monitor's window measurement).  The cluster only has
        to serve the remainder, so every node requirement is computed against
        the discounted rate — cache absorption is capacity the controller
        does not have to rent.  ``forecast_rate`` itself stays the *client*
        demand so reports and forecasts remain in one unit.
        """
        if forecast_rate < 0:
            raise ValueError("forecast_rate must be non-negative")
        if not 0.0 <= cache_hit_rate <= 1.0:
            raise ValueError(f"cache_hit_rate must be in [0, 1], got {cache_hit_rate}")
        cluster_rate = forecast_rate * (1.0 - cache_hit_rate)
        # Only reads are absorbed, so the mix reaching the nodes shifts
        # toward writes; query the model with the cluster-side fraction.
        cluster_write_fraction = write_fraction
        if cache_hit_rate > 0.0:
            cluster_write_fraction = min(
                write_fraction / max(1.0 - cache_hit_rate, 1e-9), 1.0)
        # Latency requirement: the strictest SLA wins; keep the winning
        # backend answer so the plan can report the raw analytic/ml split.
        latency_nodes = self.min_nodes
        binding = None
        for sla in slas.values():
            requirement = self._backend.latency_requirement(
                cluster_rate=cluster_rate,
                write_fraction=cluster_write_fraction,
                target_latency=sla.latency,
                pending_updates=pending_maintenance,
                max_nodes=self.max_nodes,
            )
            if binding is None or requirement.nodes > binding.nodes:
                binding = requirement
            latency_nodes = max(latency_nodes, requirement.nodes)
        # Utilisation requirement: never plan to run nodes hotter than the ceiling.
        utilisation_nodes = max(
            int(math.ceil(cluster_rate / (self.node_capacity_ops * self.target_utilisation))),
            self.min_nodes,
        )
        target = max(latency_nodes, utilisation_nodes)
        # Staleness pressure: the update queue is (predicted to be) in danger of
        # missing the declared bound, so add headroom for maintenance throughput.
        per_node_rate = cluster_rate / max(target, 1)
        staleness_pressure = behind_schedule or self.lag_model.danger(
            pending_updates=pending_maintenance,
            per_node_rate=per_node_rate,
            staleness_bound=spec.read.staleness_bound,
        )
        if staleness_pressure:
            target = int(math.ceil(target * self.staleness_scale_factor))
        target = min(max(target, self.min_nodes), self.max_nodes)
        if latency_nodes >= utilisation_nodes:
            reason = f"latency model ({self.backend_name})"
        else:
            reason = "utilisation ceiling"
        if binding is not None and binding.infeasible:
            reason += (" [latency target infeasible at any scale — "
                       "holding capacity floor]")
        if binding is not None and binding.clamped:
            reason += (f" [ml answer {binding.ml_nodes} clamped to "
                       f"±{self.clamp_band:.0%} of analytical "
                       f"{binding.analytic_nodes}]")
        if staleness_pressure:
            reason += " + staleness headroom"
        if cache_hit_rate >= 0.01:
            reason += f" (cache absorbing {cache_hit_rate:.0%})"
        # Hotspot, not overload: the worst node is past the hot threshold while
        # the cluster mean still has headroom, so moving load is likely cheaper
        # than adding capacity.
        repartition_candidate = (
            max_utilisation >= self.repartition_hot_utilisation
            and mean_utilisation <= self.target_utilisation
        )
        if repartition_candidate:
            reason += " (hotspot: repartition candidate)"
        return CapacityPlan(
            target_nodes=target,
            forecast_rate=forecast_rate,
            latency_required_nodes=latency_nodes,
            utilisation_required_nodes=utilisation_nodes,
            staleness_pressure=staleness_pressure,
            reason=reason,
            repartition_candidate=repartition_candidate,
            cache_absorbed_fraction=cache_hit_rate,
            backend=self.backend_name,
            analytic_nodes=None if binding is None else binding.analytic_nodes,
            ml_nodes=None if binding is None else binding.ml_nodes,
            latency_infeasible=False if binding is None else binding.infeasible,
            ml_clamped=False if binding is None else binding.clamped,
            clamp_band=self.clamp_band,
            latency_detail="" if binding is None else binding.detail,
        )
