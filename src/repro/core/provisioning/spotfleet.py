"""Mixed-fleet spot capacity: surge read replicas with graceful drain.

The fleet policy the spot market makes possible: **durable quorum members
stay on-demand** (a replica group is never exposed to revocation), while
**surge read capacity goes spot-first** — extra read replicas attached to
existing groups, billed per started minute at the market rate, revocable
with a two-minute notice.  When the market refuses capacity (drought, or
the spot price at/above the on-demand rate) the manager falls back to
on-demand surge instances automatically, so the controller's capacity ask
is always met; it just costs more during the squeeze.

On an interruption notice the manager runs the graceful-drain state
machine:

    RUNNING --notice--> DRAINING --before deadline--> HIBERNATED
                                                        |
                  (market recovers + capacity needed)   v
    RUNNING <--resume (15 s wake, reconcile, no cold re-copy)

Draining marks the storage node DRAIN (the router stops sending it client
reads, the replication engine stops targeting it with new writes, in-flight
migrations hand off via the existing dual-routing machinery), then detaches
the replica and hibernates the instance *strictly before* the notice
deadline — a drain either completes or cleanly aborts, never straddles the
revocation.  A hibernated node keeps its data; resuming rejoins via
``Cluster.resume_hibernated`` (reconcile + LWW catch-up from the primary)
instead of a cold re-copy.

Every decision lands on the :class:`~repro.obs.timeline.DecisionTimeline`:
``spot-bid``, ``spot-fallback``, ``spot-notice``, ``spot-drain``,
``spot-hibernate``, ``spot-resume``, ``spot-release``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cloud.instances import ON_DEMAND, SPOT, Instance
from repro.cloud.pool import InstancePool, SpotUnavailableError
from repro.sim.simulator import Simulator
from repro.storage.cluster import Cluster

# A drain needs far less than the two-minute notice: stop reads, let
# replication in flight settle, detach.  The completion margin keeps the
# hibernate strictly inside the deadline even when the notice arrives late.
DRAIN_SECONDS = 45.0
DRAIN_DEADLINE_MARGIN = 5.0

# Ticks of zero deficit after which hibernated capacity is retired for good.
HIBERNATE_RETIRE_TICKS = 5

# Surge replicas a single group will accept.  Every write to a group lands on
# its one primary and fans out to every member, so surge only multiplies READ
# capacity — past a couple of extra replicas the group's write path (and the
# primary's share of reads) becomes the bottleneck and more surge makes the
# tail worse, not better.  Growth beyond the cap must come from new groups,
# which split the keyspace and add primaries.
MAX_SURGE_PER_GROUP = 2


@dataclass(slots=True)
class InterruptionRecord:
    """One interruption notice and how the drain resolved."""

    instance_id: str
    node_id: str
    notice_time: float
    deadline: float
    reason: str
    outcome: str = "draining"  # -> "hibernated" | "aborted" | "terminated"
    completed_time: Optional[float] = None


class SpotFleetManager:
    """Owns the surge (spot-first) half of a mixed fleet."""

    def __init__(
        self,
        simulator: Simulator,
        cluster: Cluster,
        pool: InstancePool,
        timeline=None,
        drain_seconds: float = DRAIN_SECONDS,
        max_surge_per_group: int = MAX_SURGE_PER_GROUP,
    ) -> None:
        if pool.market is None:
            raise ValueError("SpotFleetManager needs a pool with an attached market")
        if drain_seconds <= 0:
            raise ValueError("drain_seconds must be positive")
        if max_surge_per_group < 1:
            raise ValueError("max_surge_per_group must be >= 1")
        self._sim = simulator
        self._cluster = cluster
        self._pool = pool
        self._market = pool.market
        self._timeline = timeline
        self.drain_seconds = drain_seconds
        self.max_surge_per_group = max_surge_per_group
        # instance_id -> node_id for attached surge replicas ("" while booting).
        self._surge_nodes: Dict[str, str] = {}
        # instance_id -> group the surge replica was placed in (assigned at
        # launch so booting instances count against the per-group cap too).
        self._surge_group: Dict[str, str] = {}
        # Hibernated surge capacity: instance_id -> node_id.
        self._hibernated: Dict[str, str] = {}
        self._records: List[InterruptionRecord] = []
        self._idle_ticks = 0
        self._fallback_count = 0
        pool.on_spot_interruption = self._on_notice
        self._market.start()

    # ------------------------------------------------------------------ sizing

    def surge_count(self) -> int:
        """Surge instances currently renting (attached or booting)."""
        return len(self._surge_nodes)

    def pending_surge(self) -> int:
        """Surge instances in motion but not yet serving: fresh launches
        still booting, and resumed replicas whose node has not rejoined."""
        return sum(
            1 for node_id in self._surge_nodes.values()
            if not node_id or node_id not in self._cluster.nodes
        )

    def hibernated_count(self) -> int:
        return len(self._hibernated)

    def fallback_count(self) -> int:
        """Surge launches that had to fall back to on-demand."""
        return self._fallback_count

    def records(self) -> List[InterruptionRecord]:
        """Every interruption notice received, in delivery order."""
        return list(self._records)

    # ------------------------------------------------------------------ growing

    def add_surge(self, count: int) -> int:
        """Attach ``count`` surge read replicas, spot-first.

        Resumes hibernated capacity before renting anything new (a resume
        pays a 15 s wake instead of a full boot and no re-copy).  Each fresh
        launch bids spot and falls back to on-demand when the market refuses;
        the ask is always met unless the pool itself is capped.  Returns the
        number of instances actually set in motion.
        """
        added = 0
        for _ in range(count):
            if self._resume_one():
                added += 1
                continue
            if not self._launch_one():
                break
            added += 1
        return added

    def _spot_price_detail(self) -> str:
        name = self._pool.instance_type.name
        on_demand = self._pool.instance_type.hourly_cost
        try:
            spot = self._market.price(name)
        except KeyError:
            return f"on-demand ${on_demand:.3f}/h"
        return f"spot ${spot:.3f}/h vs on-demand ${on_demand:.3f}/h"

    def _launch_one(self) -> bool:
        if self._pool.active_count() + self._pool.booting_count() + 1 \
                > self._pool.max_instances:
            return False
        group_id = self._pick_group()
        if group_id is None:
            return False
        option = SPOT if self._pool.spot_available() else ON_DEMAND
        if self._timeline is not None:
            self._timeline.record_event(
                self._sim.now, "spot-bid", 1, group_id=group_id,
                detail=self._spot_price_detail())

        def on_ready(instance: Instance) -> None:
            if instance.instance_id not in self._surge_nodes:
                return  # released or interrupted while booting
            target = group_id
            if target not in self._cluster.groups:
                # The chosen group was decommissioned during the boot; pick a
                # survivor rather than crash the attach, or retire the rent if
                # the cluster has nowhere to put the replica.
                del self._surge_group[instance.instance_id]
                target = self._pick_group()
                if target is None:
                    del self._surge_nodes[instance.instance_id]
                    self._pool.terminate(instance.instance_id)
                    return
                self._surge_group[instance.instance_id] = target
            node_id = self._cluster.add_surge_replica(target)
            self._surge_nodes[instance.instance_id] = node_id
            if self._timeline is not None:
                self._timeline.record_event(
                    self._sim.now, "attach", 1, group_id=target,
                    detail=f"surge replica {node_id} ({instance.purchase_option})")

        try:
            launched = self._pool.launch(
                count=1, on_ready=on_ready, purchase_option=option)
        except SpotUnavailableError:
            option = ON_DEMAND
            launched = self._pool.launch(
                count=1, on_ready=on_ready, purchase_option=ON_DEMAND)
        if option == ON_DEMAND and self._timeline is not None:
            self._fallback_count += 1
            self._timeline.record_event(
                self._sim.now, "spot-fallback", 1, group_id=group_id,
                detail=f"spot unavailable; on-demand surge ({self._spot_price_detail()})")
        elif option == ON_DEMAND:
            self._fallback_count += 1
        self._surge_nodes[launched[0].instance_id] = ""
        self._surge_group[launched[0].instance_id] = group_id
        return True

    def _pick_group(self) -> Optional[str]:
        """Spread surge capacity: the group with the fewest members wins.

        Groups already holding ``max_surge_per_group`` surge replicas
        (attached, booting, or hibernated — frozen capacity rejoins its home
        group on resume) are skipped; returns None when every group is at the
        cap, which tells the controller the rest of the deficit needs whole
        groups, not more read fan-out.
        """
        per_group = Counter(self._surge_group.values())
        groups = [
            (len(group.node_ids), group_id)
            for group_id, group in self._cluster.groups.items()
            if per_group[group_id] < self.max_surge_per_group
        ]
        if not groups:
            return None
        groups.sort()
        return groups[0][1]

    def surge_headroom(self) -> int:
        """Surge replicas the cluster's groups can still absorb under the
        per-group cap."""
        per_group = Counter(self._surge_group.values())
        return sum(
            max(self.max_surge_per_group - per_group[group_id], 0)
            for group_id in self._cluster.groups
        )

    # ---------------------------------------------------------------- shrinking

    def release_surge(self, count: int) -> int:
        """Retire up to ``count`` surge replicas (hibernated capacity first)."""
        released = 0
        while released < count and self._hibernated:
            instance_id, node_id = next(iter(self._hibernated.items()))
            del self._hibernated[instance_id]
            self._surge_group.pop(instance_id, None)
            self._cluster.drop_hibernated(node_id)
            self._pool.terminate(instance_id)
            released += 1
            self._record_release(node_id, "hibernated surge retired")
        while released < count and self._surge_nodes:
            instance_id, node_id = next(reversed(self._surge_nodes.items()))
            del self._surge_nodes[instance_id]
            self._surge_group.pop(instance_id, None)
            if node_id:
                try:
                    self._cluster.detach_replica(node_id)
                except ValueError:
                    pass  # somehow the last member; leave the node, drop the rent
            self._pool.terminate(instance_id)
            released += 1
            self._record_release(node_id or "(booting)", "surge released")
        return released

    def _record_release(self, node_id: str, detail: str) -> None:
        if self._timeline is not None:
            self._timeline.record_event(
                self._sim.now, "spot-release", 1, detail=f"{detail}: {node_id}")

    # ------------------------------------------------------------- interruption

    def _on_notice(self, instance: Instance, deadline: float, reason: str) -> None:
        """Market revocation notice: drain gracefully before the deadline."""
        instance_id = instance.instance_id
        node_id = self._surge_nodes.get(instance_id, "")
        record = InterruptionRecord(
            instance_id=instance_id, node_id=node_id,
            notice_time=self._sim.now, deadline=deadline, reason=reason)
        self._records.append(record)
        if self._timeline is not None:
            self._timeline.record_event(
                self._sim.now, "spot-notice", 1,
                detail=f"{reason}: {instance_id} ({node_id or 'booting'}), "
                       f"{deadline - self._sim.now:.0f}s to drain")
        if instance_id not in self._surge_nodes:
            record.outcome = "terminated"
            record.completed_time = self._sim.now
            return  # not ours (already released)
        if not node_id:
            # Still booting: nothing to drain, nothing worth hibernating.
            del self._surge_nodes[instance_id]
            self._surge_group.pop(instance_id, None)
            self._pool.terminate(instance_id)
            record.outcome = "aborted"
            record.completed_time = self._sim.now
            if self._timeline is not None:
                self._timeline.record_event(
                    self._sim.now, "spot-drain", 1,
                    detail=f"aborted: {instance_id} interrupted while booting")
            return
        self._cluster.begin_drain(node_id)
        if self._timeline is not None:
            self._timeline.record_event(
                self._sim.now, "spot-drain", 1,
                detail=f"draining {node_id} (reads rerouted, writes stopped)")
        # Complete strictly before the deadline, even if the drain window
        # must be squeezed: a drain that cannot finish in time aborts early
        # rather than letting the market force-revoke an attached node.
        complete_at = min(self._sim.now + self.drain_seconds,
                          deadline - DRAIN_DEADLINE_MARGIN)
        complete_at = max(complete_at, self._sim.now)
        self._sim.schedule_at(
            complete_at, lambda: self._finish_drain(instance_id, record),
            name=f"spot-drain:{instance_id}")

    def _finish_drain(self, instance_id: str, record: InterruptionRecord) -> None:
        node_id = self._surge_nodes.pop(instance_id, None)
        if node_id is None:
            record.outcome = "terminated"
            record.completed_time = self._sim.now
            return  # released while draining
        instance = self._pool.get(instance_id)
        if instance is None or not instance.is_usable():
            # Interrupted while not running (crashed mid-drain, etc.):
            # nothing to preserve, retire the seat.
            if node_id:
                self._cluster.detach_replica(node_id)
            self._surge_group.pop(instance_id, None)
            self._pool.terminate(instance_id)
            record.outcome = "terminated"
            record.completed_time = self._sim.now
            return
        if not self._cluster.hibernate_node(node_id):
            self._surge_group.pop(instance_id, None)
            self._pool.terminate(instance_id)
            record.outcome = "terminated"
            record.completed_time = self._sim.now
            return
        self._pool.hibernate(instance_id)
        self._hibernated[instance_id] = node_id
        record.outcome = "hibernated"
        record.completed_time = self._sim.now
        if self._timeline is not None:
            self._timeline.record_event(
                self._sim.now, "spot-hibernate", 1,
                detail=f"{node_id} drained and hibernated "
                       f"({record.deadline - self._sim.now:.0f}s before deadline)")

    # -------------------------------------------------------------------- resume

    def _resume_one(self) -> bool:
        """Wake one hibernated surge replica if the market will have it back."""
        if not self._hibernated:
            return False
        if not self._pool.spot_available():
            return False
        instance_id, node_id = next(iter(self._hibernated.items()))
        try:
            self._pool.resume(instance_id, on_ready=lambda inst:
                              self._finish_resume(inst.instance_id))
        except SpotUnavailableError:
            return False
        del self._hibernated[instance_id]
        self._surge_nodes[instance_id] = node_id
        if self._timeline is not None:
            self._timeline.record_event(
                self._sim.now, "spot-resume", 1,
                detail=f"resuming {node_id} (15s wake, no re-copy)")
        return True

    def _finish_resume(self, instance_id: str) -> None:
        node_id = self._surge_nodes.get(instance_id)
        if not node_id:
            self._surge_group.pop(instance_id, None)
            self._pool.terminate(instance_id)
            return
        refreshed = self._cluster.resume_hibernated(node_id)
        if refreshed is None:
            # Home group is gone; the frozen state is worthless.
            self._surge_nodes.pop(instance_id, None)
            self._surge_group.pop(instance_id, None)
            self._cluster.drop_hibernated(node_id)
            self._pool.terminate(instance_id)
            self._record_release(node_id, "home group gone at resume")
            return
        if self._timeline is not None:
            self._timeline.record_event(
                self._sim.now, "attach", 1,
                detail=f"surge replica {node_id} rejoined "
                       f"({refreshed} keys refreshed, no cold re-copy)")

    # ---------------------------------------------------------------------- tick

    def tick(self, node_deficit: int) -> None:
        """Per-control-step housekeeping.

        With a deficit, wake hibernated capacity (cheapest instances first —
        they boot in 15 s with their data intact).  With sustained zero
        deficit, retire hibernated instances: freezing is free but the
        frozen state decays in value as the primary moves on.
        """
        if node_deficit > 0:
            self._idle_ticks = 0
            for _ in range(node_deficit):
                if not self._resume_one():
                    break
            return
        if not self._hibernated:
            self._idle_ticks = 0
            return
        self._idle_ticks += 1
        if self._idle_ticks >= HIBERNATE_RETIRE_TICKS:
            self.release_surge(len(self._hibernated))
            self._idle_ticks = 0
