"""Pluggable latency-sizing backends for the capacity planner.

The planner's latency requirement — "how many nodes keep the predicted
SLA-percentile latency under the target?" — can be answered three ways, and
E11's ablation compares them head-to-head:

* ``analytical`` — the closed-form M/G/k-style model
  (:class:`~repro.core.provisioning.analytic.AnalyticSizingModel`) alone.
  Explainable and structurally runaway-proof, but blind to workload
  pathologies the queueing abstraction cannot see.
* ``ml`` — the trained :class:`~repro.ml.performance_model
  .LatencyPercentileModel` inverted by monotone bisection.  Learns the real
  latency surface (fan-out, mix shifts, maintenance pressure) but can be
  mistaught — SLA-violation windows once drove it to demand ``max_nodes``.
* ``hybrid`` (the default) — the analytical answer as the backbone, with
  the ML answer admitted only as a *bounded residual*: it may move the
  node count at most ``clamp_band`` (a fraction, e.g. 0.3 = +-30%) away
  from the analytical answer.  Whatever the training windows contained,
  the plan stays within the band — runaway is structurally impossible.

Every backend returns a :class:`LatencyRequirement` so the plan can report
both raw answers, whether clamping fired, and whether the target is
infeasible at any scale (surfaced in ``CapacityPlan.reason`` instead of the
old silent ``max_nodes`` cap).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.provisioning.analytic import AnalyticSizingModel
from repro.ml.performance_model import LatencyPercentileModel

PLANNER_BACKENDS = ("analytical", "ml", "hybrid")


@dataclass(frozen=True)
class LatencyRequirement:
    """One backend's answer to "how many nodes for this SLA?"."""

    nodes: int
    analytic_nodes: Optional[int]
    ml_nodes: Optional[int]
    infeasible: bool
    clamped: bool
    detail: str


class AnalyticalBackend:
    """Closed-form sizing only; the ML model is consulted for nothing."""

    name = "analytical"

    def __init__(self, sizing_model: AnalyticSizingModel) -> None:
        self.sizing_model = sizing_model

    def latency_requirement(
        self,
        cluster_rate: float,
        write_fraction: float,
        target_latency: float,
        pending_updates: int,
        max_nodes: int,
    ) -> LatencyRequirement:
        breakdown = self.sizing_model.required_nodes(
            arrival_rate=cluster_rate,
            target_latency=target_latency,
            max_nodes=max_nodes,
        )
        return LatencyRequirement(
            nodes=breakdown.nodes,
            analytic_nodes=breakdown.nodes,
            ml_nodes=None,
            infeasible=breakdown.infeasible,
            clamped=False,
            detail=breakdown.describe(),
        )


class MLBackend:
    """Learned sizing only — the pre-clamp behaviour, kept for the ablation."""

    name = "ml"

    def __init__(self, latency_model: LatencyPercentileModel) -> None:
        self.latency_model = latency_model

    def latency_requirement(
        self,
        cluster_rate: float,
        write_fraction: float,
        target_latency: float,
        pending_updates: int,
        max_nodes: int,
    ) -> LatencyRequirement:
        search = self.latency_model.required_nodes_search(
            predicted_rate=cluster_rate,
            write_fraction=write_fraction,
            target_latency=target_latency,
            max_nodes=max_nodes,
            pending_updates=pending_updates,
        )
        detail = (f"ml model: {search.nodes} nodes"
                  if search.feasible
                  else f"ml model: no node count meets the target "
                       f"(holding max_nodes={search.nodes})")
        return LatencyRequirement(
            nodes=search.nodes,
            analytic_nodes=None,
            ml_nodes=search.nodes,
            infeasible=not search.feasible,
            clamped=False,
            detail=detail,
        )


class HybridBackend:
    """Analytical backbone with the ML answer clamped to a band around it.

    ``clamp_band`` is the admissible fractional deviation: with the
    analytical answer ``a`` the plan lies in
    ``[floor(a * (1 - band)), ceil(a * (1 + band))]`` (never below 1).
    """

    name = "hybrid"

    def __init__(
        self,
        sizing_model: AnalyticSizingModel,
        latency_model: LatencyPercentileModel,
        clamp_band: float = 0.3,
    ) -> None:
        if not 0.0 <= clamp_band < 1.0:
            raise ValueError(f"clamp_band must be in [0, 1), got {clamp_band}")
        self.sizing_model = sizing_model
        self.latency_model = latency_model
        self.clamp_band = clamp_band

    def band(self, analytic_nodes: int) -> tuple:
        """The inclusive [low, high] node band around the analytical answer."""
        low = max(int(math.floor(analytic_nodes * (1.0 - self.clamp_band))), 1)
        high = max(int(math.ceil(analytic_nodes * (1.0 + self.clamp_band))), 1)
        return low, high

    def latency_requirement(
        self,
        cluster_rate: float,
        write_fraction: float,
        target_latency: float,
        pending_updates: int,
        max_nodes: int,
    ) -> LatencyRequirement:
        breakdown = self.sizing_model.required_nodes(
            arrival_rate=cluster_rate,
            target_latency=target_latency,
            max_nodes=max_nodes,
        )
        search = self.latency_model.required_nodes_search(
            predicted_rate=cluster_rate,
            write_fraction=write_fraction,
            target_latency=target_latency,
            max_nodes=max_nodes,
            pending_updates=pending_updates,
        )
        low, high = self.band(breakdown.nodes)
        nodes = min(max(search.nodes, low), min(high, max_nodes))
        clamped = nodes != search.nodes
        detail = breakdown.describe()
        if clamped:
            detail += (f"; ml residual {search.nodes} clamped to "
                       f"[{low}, {high}] (+-{self.clamp_band:.0%})")
        else:
            detail += f"; ml residual kept {nodes} within [{low}, {high}]"
        return LatencyRequirement(
            nodes=nodes,
            analytic_nodes=breakdown.nodes,
            ml_nodes=search.nodes,
            infeasible=breakdown.infeasible,
            clamped=clamped,
            detail=detail,
        )


def make_backend(
    kind: str,
    sizing_model: AnalyticSizingModel,
    latency_model: LatencyPercentileModel,
    clamp_band: float = 0.3,
):
    """Build a planner backend by name (``analytical`` / ``ml`` / ``hybrid``)."""
    if kind == "analytical":
        return AnalyticalBackend(sizing_model)
    if kind == "ml":
        return MLBackend(latency_model)
    if kind == "hybrid":
        return HybridBackend(sizing_model, latency_model, clamp_band=clamp_band)
    raise ValueError(
        f"unknown planner backend {kind!r}; expected one of {PLANNER_BACKENDS}")
