"""The scale-up/scale-down controller: the acting half of Figure 2's loop.

Every control interval the controller

1. asks the monitor to close an observation window (which also trains the
   ML models),
2. feeds the observed rate to the workload forecaster and asks it for the
   rate one provisioning lead time ahead (instance boot + data movement),
3. asks the planner for the target node count, and
4. rents or releases instances to move the cluster toward the target,
   attaching new machines as whole replica groups so the durability SLA's
   replication factor is never violated mid-scale.

When a :class:`~repro.storage.rebalancer.Rebalancer` is attached, the acting
step grows a REPARTITION branch: if the planner flags the window as a
*repartition candidate* (one hot replica group, cluster-wide headroom), the
controller first tries a sub-group split/migrate — which moves only the hot
keys and rents nothing — and only falls back to launching a group when
repeated repartitioning has not relieved the pressure.

With a :class:`~repro.core.provisioning.spotfleet.SpotFleetManager`
attached, a read-dominated capacity deficit is covered by *surge read
replicas* (spot-first, on-demand fallback) instead of whole on-demand
groups — durable quorum members are never exposed to revocation — and
scale-down sheds surge capacity before it touches a replica group.

With the contention layer on (``Scads(contention=...)``), a violated window
the monitor classifies as *contention* (service-dominated at low
utilisation, a noisy host named by the per-host residual estimator) takes an
EVACUATE branch before any capacity logic: renting into contention is the
capacity-only controller's pathological move — the new nodes serve the same
inflated service times — so the controller instead live-migrates every
replica off the noisy host onto quiet hosts (anti-affinity preserved,
modelling a stop/start re-placement: no extra instances rented, the data
re-copy charged through the cluster's movement accounting).  Every
diagnosis and evacuation lands on the decision timeline with its evidence.
The ``placement_aware=False`` config arm keeps the diagnosis but disables
the remediation — the capacity-only ablation ``bench_e16`` compares
against.

Scale-down is deliberately conservative (sustained low demand over several
windows, at most one group per interval, and never while the current window
is violating its SLA) because removing capacity is cheap to defer and
expensive to get wrong — the asymmetry the paper's economics argument
relies on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cloud.pool import InstancePool
from repro.core.index.updater import AsyncIndexUpdater
from repro.core.provisioning.monitor import SLAMonitor, WindowObservation
from repro.core.provisioning.planner import CapacityPlan, CapacityPlanner
from repro.core.consistency.spec import ConsistencySpec, PerformanceSLA
from repro.metrics.timeseries import TimeSeriesRecorder
from repro.ml.forecaster import WorkloadForecaster
from repro.obs.timeline import ProvisioningDecision, SlaVerdict
from repro.sim.simulator import Simulator
from repro.storage.cluster import Cluster
from repro.storage.rebalancer import Rebalancer


@dataclass
class ScalingAction:
    """One scaling or repartitioning decision, for experiment reporting."""

    time: float
    # "scale_up", "scale_down", "surge_up", "surge_down", "repartition",
    # "evacuate", "hold"
    kind: str
    groups_before: int
    groups_after: int
    target_nodes: int
    forecast_rate: float
    reason: str


class ProvisioningController:
    """Closed-loop, model-driven provisioning of the storage cluster."""

    def __init__(
        self,
        simulator: Simulator,
        cluster: Cluster,
        pool: InstancePool,
        monitor: SLAMonitor,
        planner: CapacityPlanner,
        forecaster: WorkloadForecaster,
        updater: Optional[AsyncIndexUpdater],
        slas: Dict[str, PerformanceSLA],
        spec: ConsistencySpec,
        control_interval: float = 60.0,
        provisioning_lead_time: Optional[float] = None,
        scale_down_patience: int = 5,
        scale_down_hysteresis: float = 0.3,
        max_groups_per_step: int = 50,
        predictive: bool = True,
        rebalancer: Optional[Rebalancer] = None,
        max_consecutive_repartitions: int = 2,
        timeline=None,
        spot_fleet=None,
        spot_write_fraction_ceiling: float = 0.35,
        contention_config=None,
    ) -> None:
        if control_interval <= 0:
            raise ValueError("control_interval must be positive")
        if scale_down_patience < 1:
            raise ValueError("scale_down_patience must be >= 1")
        if scale_down_hysteresis < 0:
            raise ValueError("scale_down_hysteresis must be >= 0")
        if max_groups_per_step < 1:
            raise ValueError("max_groups_per_step must be >= 1")
        if max_consecutive_repartitions < 1:
            raise ValueError("max_consecutive_repartitions must be >= 1")
        self._sim = simulator
        self._cluster = cluster
        self._pool = pool
        self._monitor = monitor
        self._planner = planner
        self._forecaster = forecaster
        self._updater = updater
        self._slas = dict(slas)
        self._spec = spec
        self.control_interval = control_interval
        boot_delay = pool.instance_type.boot_delay
        self.provisioning_lead_time = (
            provisioning_lead_time
            if provisioning_lead_time is not None
            else boot_delay + 2.0 * control_interval
        )
        self.scale_down_patience = scale_down_patience
        self.scale_down_hysteresis = scale_down_hysteresis
        self.max_groups_per_step = max_groups_per_step
        self.predictive = predictive
        self._rebalancer = rebalancer
        self.max_consecutive_repartitions = max_consecutive_repartitions
        self._consecutive_repartitions = 0
        self._group_instances: Dict[str, List[str]] = {}
        self._pending_groups = 0
        self._low_demand_windows = 0
        self._actions: List[ScalingAction] = []
        self._plans: List[CapacityPlan] = []
        self._series = TimeSeriesRecorder()
        self._cancel_loop = None
        # Optional obs.DecisionTimeline: a structured record of every plan
        # (with its sizing rationale) and every fleet movement.
        self._timeline = timeline
        # Optional SpotFleetManager: with one attached, a read-dominated
        # capacity deficit is covered by surge read replicas (spot-first,
        # on-demand fallback) instead of whole on-demand groups, and
        # scale-down sheds surge capacity before touching durable groups.
        self._spot_fleet = spot_fleet
        self.spot_write_fraction_ceiling = spot_write_fraction_ceiling
        # Optional repro.sim.hosts.ContentionConfig: arms the evacuation
        # branch (placement_aware) on contention-classified violations.
        self._contention_config = contention_config
        self._adopt_existing_groups()

    # -------------------------------------------------------------------- setup

    def _adopt_existing_groups(self) -> None:
        """Open leases for the replica groups the cluster already has."""
        for group_id, group in self._cluster.groups.items():
            instances = self._pool.launch(
                count=len(group.node_ids), boot_delay_override=0.0
            )
            self._group_instances[group_id] = [i.instance_id for i in instances]
            if self._timeline is not None:
                self._timeline.record_event(
                    self._sim.now, "attach", len(instances), group_id=group_id,
                    detail="pre-provisioned group adopted")

    def start(self) -> None:
        """Begin the periodic control loop (idempotent)."""
        if self._cancel_loop is None:
            self._cancel_loop = self._sim.schedule_periodic(
                self.control_interval, self.control_step, name="provisioning-loop"
            )

    def stop(self) -> None:
        if self._cancel_loop is not None:
            self._cancel_loop()
            self._cancel_loop = None

    # ------------------------------------------------------------------ the loop

    def control_step(self) -> ScalingAction:
        """One pass of the feedback loop (observe -> forecast -> plan -> act)."""
        now = self._sim.now
        observation = self._monitor.close_window(now)
        self._forecaster.observe(now, observation.request_rate)
        if self.predictive:
            forecast = self._forecaster.forecast(self.provisioning_lead_time)
            # Never plan below what we are already seeing: the forecast hedges
            # the future, it must not talk us into ignoring the present.
            forecast = max(forecast, observation.request_rate)
        else:
            forecast = observation.request_rate
        behind = self._updater.behind_schedule(margin=self.control_interval) \
            if self._updater is not None else False
        plan = self._planner.plan(
            forecast_rate=forecast,
            write_fraction=observation.write_fraction,
            slas=self._slas,
            spec=self._spec,
            pending_maintenance=observation.pending_maintenance,
            behind_schedule=behind,
            mean_utilisation=observation.features.mean_utilisation,
            max_utilisation=observation.features.max_utilisation,
            # Cache absorption is capacity we do not have to rent: the planner
            # sizes the cluster for the miss traffic only.
            cache_hit_rate=observation.cache_hit_rate,
        )
        action = self._act(plan, observation)
        if self._spot_fleet is not None:
            # Housekeeping for the surge fleet: wake hibernated capacity when
            # nodes are still short after acting, retire it when the deficit
            # stays zero long enough that the frozen state has gone stale.
            deficit = plan.target_nodes - self._node_supply()
            self._spot_fleet.tick(max(deficit, 0))
        self._record(now, observation, plan, action)
        return action

    def _node_supply(self) -> int:
        """Nodes serving or already paid for and arriving: attached cluster
        nodes, whole groups still booting, and surge replicas in motion."""
        supply = (self._cluster.node_count()
                  + self._pending_groups * self._cluster.replication_factor)
        if self._spot_fleet is not None:
            supply += self._spot_fleet.pending_surge()
        return supply

    def _act(self, plan: CapacityPlan, observation: WindowObservation) -> ScalingAction:
        replication = self._cluster.replication_factor
        target_groups = max(int(math.ceil(plan.target_nodes / replication)), 1)
        current_groups = self._cluster.group_count()
        effective_current = current_groups + self._pending_groups
        now = self._sim.now
        # A contention-classified violation is a *host* problem: renting into
        # it is the pathological move (new nodes serve the same inflated
        # service times), so evacuation preempts every capacity branch.
        if self._contention_config is not None \
                and getattr(observation, "contention_suspected", False):
            action = self._handle_contention(plan, observation, now, current_groups)
            if action is not None:
                return action
        # A violated SLA with cluster-wide headroom is a *placement* problem:
        # try a split/migrate first, and rent a single group only when the
        # rebalancer cannot act (e.g. one token hotter than any group).
        if plan.repartition_candidate and observation.any_sla_violated():
            action = self._try_repartition(plan, now, current_groups)
            if action is not None:
                return action
        if target_groups > effective_current:
            self._consecutive_repartitions = 0
            surge_added = 0
            if self._spot_fleet is not None \
                    and observation.write_fraction <= self.spot_write_fraction_ceiling:
                deficit = plan.target_nodes - self._node_supply()
                if deficit <= 0:
                    # The group-count math over-asks (groups come in
                    # replication-factor multiples; surge nodes do not):
                    # per-node supply already covers the target, so renting a
                    # whole group would overshoot.
                    self._low_demand_windows = 0
                    return ScalingAction(
                        time=now, kind="hold",
                        groups_before=current_groups,
                        groups_after=current_groups,
                        target_nodes=plan.target_nodes,
                        forecast_rate=plan.forecast_rate,
                        reason=f"{plan.reason}; surge capacity covers target",
                    )
                surge_added = self._spot_fleet.add_surge(deficit)
            if self._spot_fleet is None:
                to_add = min(target_groups - effective_current,
                             self.max_groups_per_step)
            else:
                # Surge is read fan-out, capped per group (one primary still
                # takes every write); whatever deficit the fleet would not
                # absorb needs whole groups, which split the keyspace and
                # add primaries.
                deficit = plan.target_nodes - self._node_supply()
                if deficit <= 0:
                    self._low_demand_windows = 0
                    return ScalingAction(
                        time=now, kind="surge_up",
                        groups_before=current_groups,
                        groups_after=current_groups,
                        target_nodes=plan.target_nodes,
                        forecast_rate=plan.forecast_rate,
                        reason=f"{plan.reason}; +{surge_added} surge read "
                               "replicas (spot-first)",
                    )
                to_add = min(int(math.ceil(deficit / replication)),
                             self.max_groups_per_step)
            launched = 0
            for _ in range(to_add):
                if not self._launch_group():
                    break  # pool exhausted; rent what fits and carry on
                launched += 1
            self._low_demand_windows = 0
            if launched == 0 and surge_added == 0:
                return ScalingAction(
                    time=now, kind="hold",
                    groups_before=current_groups,
                    groups_after=current_groups,
                    target_nodes=plan.target_nodes,
                    forecast_rate=plan.forecast_rate,
                    reason=f"{plan.reason}; pool at capacity",
                )
            if launched == 0:
                return ScalingAction(
                    time=now, kind="surge_up",
                    groups_before=current_groups,
                    groups_after=current_groups,
                    target_nodes=plan.target_nodes,
                    forecast_rate=plan.forecast_rate,
                    reason=f"{plan.reason}; +{surge_added} surge read "
                           "replicas (spot-first); pool capped for groups",
                )
            reason = plan.reason
            if surge_added:
                reason = (f"{plan.reason}; +{surge_added} surge read replicas "
                          "(spot-first) alongside group growth")
            return ScalingAction(
                time=now, kind="scale_up",
                groups_before=current_groups,
                groups_after=current_groups + self._pending_groups,
                target_nodes=plan.target_nodes,
                forecast_rate=plan.forecast_rate,
                reason=reason,
            )
        self._consecutive_repartitions = 0
        surge_surplus = 0
        if self._spot_fleet is not None:
            # Surge replicas do not come in group multiples, so surplus is
            # measured in nodes: whatever supply exceeds the target, capped
            # by what the surge fleet actually holds.
            surge_surplus = min(self._node_supply() - plan.target_nodes,
                                self._spot_fleet.surge_count())
            surge_surplus = max(surge_surplus, 0)
        # The planner's target is self-referential: its features are measured
        # on the *current* fleet, so removing a group raises utilisation and
        # can push the next window's target up by the hybrid backend's whole
        # ±clamp band (default 30%) with demand unchanged.  Releasing
        # requires the target to fit the shrunk fleet with that much slack,
        # or the controller would release and re-rent every few windows —
        # each flap billing a whole instance-hour per node.
        shrinkable = (
            current_groups > 1
            and plan.target_nodes * (1.0 + self.scale_down_hysteresis)
            <= (current_groups - 1) * replication
        )
        if (shrinkable or surge_surplus > 0) \
                and self._pending_groups == 0 \
                and not observation.any_sla_violated():
            # A low planner target during a violated window is a model
            # artifact (saturation corrupts the service-time features), not
            # low demand — never shrink a fleet that is missing its SLA.
            self._low_demand_windows += 1
            if self._low_demand_windows >= self.scale_down_patience:
                if surge_surplus > 0:
                    released = self._spot_fleet.release_surge(surge_surplus)
                    if released:
                        windows = self._low_demand_windows
                        self._low_demand_windows = 0
                        return ScalingAction(
                            time=now, kind="surge_down",
                            groups_before=current_groups,
                            groups_after=current_groups,
                            target_nodes=plan.target_nodes,
                            forecast_rate=plan.forecast_rate,
                            reason=f"{plan.reason}; released {released} surge "
                                   f"replicas after {windows} low windows",
                        )
                if shrinkable:
                    removed = self._remove_one_group()
                    if removed:
                        return ScalingAction(
                            time=now, kind="scale_down",
                            groups_before=current_groups,
                            groups_after=current_groups - 1,
                            target_nodes=plan.target_nodes,
                            forecast_rate=plan.forecast_rate,
                            reason=f"{plan.reason}; sustained low demand "
                                   f"({self._low_demand_windows} windows)",
                        )
        else:
            self._low_demand_windows = 0
        if self._rebalancer is not None:
            # Quiet window: free hygiene — merge split points that went cold.
            self._rebalancer.merge_cold_partitions()
        return ScalingAction(
            time=now, kind="hold",
            groups_before=current_groups,
            groups_after=current_groups,
            target_nodes=plan.target_nodes,
            forecast_rate=plan.forecast_rate,
            reason=plan.reason,
        )

    # --------------------------------------------------------------- contention

    def _handle_contention(self, plan: CapacityPlan,
                           observation: WindowObservation, now: float,
                           current_groups: int) -> Optional[ScalingAction]:
        """Remediate a contention-classified violated window.

        Records the diagnosis (with its residual/utilisation evidence, plus
        the worst-decile span-kind split when tracing is on) on the decision
        timeline, then — on the placement-aware arm — evacuates every replica
        off the named noisy host onto quiet hosts and reports an ``evacuate``
        action instead of letting any rent/scale branch run.  Returns None to
        fall through to the ordinary capacity logic when remediation is
        disabled (``placement_aware=False``, the capacity-only ablation) or
        nothing was movable.
        """
        evidence = (
            f"noisy host {observation.noisy_host or 'unnamed'}: "
            f"residual {observation.noisy_host_residual:.2f} "
            f"at mean utilisation {observation.features.mean_utilisation:.2f}"
        )
        if observation.span_kind_fractions:
            top = sorted(observation.span_kind_fractions.items(),
                         key=lambda item: item[1], reverse=True)[:3]
            evidence += "; worst-decile spans " + ", ".join(
                f"{kind} {fraction:.0%}" for kind, fraction in top)
        if self._timeline is not None:
            self._timeline.record_event(
                now, "contention-diagnosis", 0, detail=evidence)
        if not self._contention_config.placement_aware:
            return None  # capacity-only ablation: diagnosis only, no action
        if not observation.noisy_host:
            return None
        moves = self._cluster.evacuate_host(observation.noisy_host)
        if not moves:
            return None
        # The evacuated host goes dark (no colocated nodes left to report
        # residuals), so hold new placements off it for a while — without
        # the hold, the very next rent would land on the empty
        # least-occupied host and re-poison the fleet mid-episode.
        self._cluster.quarantine_host(
            observation.noisy_host,
            until=now + self._contention_config.quarantine_seconds)
        self._low_demand_windows = 0
        self._consecutive_repartitions = 0
        if self._timeline is not None:
            listed = ", ".join(f"{old}->{new}" for old, new in moves[:4])
            if len(moves) > 4:
                listed += f", +{len(moves) - 4} more"
            self._timeline.record_event(
                now, "host-evacuate", len(moves),
                detail=f"{observation.noisy_host}: {listed}")
        return ScalingAction(
            time=now, kind="evacuate",
            groups_before=current_groups,
            groups_after=current_groups,
            target_nodes=plan.target_nodes,
            forecast_rate=plan.forecast_rate,
            reason=f"contention, not capacity — {evidence}; migrated "
                   f"{len(moves)} replicas off {observation.noisy_host} "
                   "instead of renting",
        )

    # -------------------------------------------------------------- repartition

    def _try_repartition(self, plan: CapacityPlan, now: float,
                         current_groups: int) -> Optional[ScalingAction]:
        """Resolve a hotspot: split/migrate if possible, rent one group if not.

        Returns None (let the ordinary capacity logic run) only when no
        rebalancer is attached.  With one attached, a hotspot window always
        produces a decision: a repartition action, a hold while the last
        migration's load shift settles, or — when the rebalancer cannot act or
        repeated repartitions have not relieved the pressure — renting a
        single group, which under the range partitioner splits the busiest
        group's keyspace anyway.
        """
        if self._rebalancer is None:
            return None
        if self._rebalancer.find_imbalance() is None:
            # The planner's node-level hotspot flag has no group-level
            # counterpart the rebalancer could act on; let the ordinary
            # capacity logic decide.
            return None
        if self._rebalancer.in_cooldown():
            # A migration's load shift is still settling; acting again now
            # would double-treat the same hotspot.  Hold one window instead.
            return ScalingAction(
                time=now, kind="hold",
                groups_before=current_groups,
                groups_after=current_groups,
                target_nodes=plan.target_nodes,
                forecast_rate=plan.forecast_rate,
                reason=f"{plan.reason}; waiting for migration to settle",
            )
        action = None
        if self._consecutive_repartitions < self.max_consecutive_repartitions:
            action = self._rebalancer.rebalance_once()
        if action is None:
            # Placement alone cannot fix this hotspot; rent a single group
            # (unless the pool is exhausted, in which case fall through).
            if not self._launch_group():
                return None
            self._consecutive_repartitions = 0
            self._low_demand_windows = 0
            return ScalingAction(
                time=now, kind="scale_up",
                groups_before=current_groups,
                groups_after=current_groups + self._pending_groups,
                target_nodes=plan.target_nodes,
                forecast_rate=plan.forecast_rate,
                reason=f"{plan.reason}; hotspot unresolved by repartitioning",
            )
        self._consecutive_repartitions += 1
        self._low_demand_windows = 0
        return ScalingAction(
            time=now, kind="repartition",
            groups_before=current_groups,
            groups_after=current_groups,
            target_nodes=plan.target_nodes,
            forecast_rate=plan.forecast_rate,
            reason=f"{plan.reason}; {action.kind} moved {action.keys_moved} keys "
                   "instead of renting a group",
        )

    # ----------------------------------------------------------------- scaling up

    def _launch_group(self) -> bool:
        """Rent one replica group's worth of instances; attach when all boot.

        Returns False (renting nothing) when the pool cannot fit another
        group — over-asking would raise and kill the whole control loop.
        """
        replication = self._cluster.replication_factor
        in_use = self._pool.active_count() + self._pool.booting_count()
        if in_use + replication > self._pool.max_instances:
            return False
        self._pending_groups += 1
        ready_instances: List[str] = []

        def on_ready(instance) -> None:
            ready_instances.append(instance.instance_id)
            if len(ready_instances) == replication:
                group = self._cluster.add_replica_group()
                self._group_instances[group.group_id] = list(ready_instances)
                self._pending_groups -= 1
                if self._timeline is not None:
                    self._timeline.record_event(
                        self._sim.now, "attach", replication,
                        group_id=group.group_id, detail="group booted and attached")

        self._pool.launch(count=replication, on_ready=on_ready)
        if self._timeline is not None:
            self._timeline.record_event(
                self._sim.now, "rent", replication, detail="replica group requested")
        return True

    # --------------------------------------------------------------- scaling down

    def _remove_one_group(self) -> bool:
        """Decommission the most recently added replica group and its instances."""
        removable = [gid for gid in self._cluster.groups if gid in self._group_instances]
        if len(removable) <= 1:
            return False
        group_id = removable[-1]
        self._cluster.remove_replica_group(group_id)
        released = self._group_instances.pop(group_id, [])
        for instance_id in released:
            self._pool.terminate(instance_id)
        self._low_demand_windows = 0
        if self._timeline is not None:
            self._timeline.record_event(
                self._sim.now, "release", len(released), group_id=group_id,
                detail="group decommissioned")
        return True

    # ---------------------------------------------------------------- reporting

    def _record(
        self,
        now: float,
        observation: WindowObservation,
        plan: CapacityPlan,
        action: ScalingAction,
    ) -> None:
        self._actions.append(action)
        self._plans.append(plan)
        if self._timeline is not None:
            self._timeline.record_decision(ProvisioningDecision(
                time=now,
                action_kind=action.kind,
                groups_before=action.groups_before,
                groups_after=action.groups_after,
                target_nodes=plan.target_nodes,
                forecast_rate=plan.forecast_rate,
                reason=action.reason,
                backend=plan.backend,
                sizing_detail=plan.latency_detail,
                analytic_nodes=plan.analytic_nodes,
                ml_nodes=plan.ml_nodes,
                ml_clamped=plan.ml_clamped,
                clamp_band=plan.clamp_band,
                latency_infeasible=plan.latency_infeasible,
                cache_hit_rate=observation.cache_hit_rate,
                sla_verdicts=[
                    SlaVerdict(
                        op=op,
                        satisfied=report.satisfied,
                        observed_latency=report.observed_percentile_latency,
                        target_latency=report.target_latency,
                        requests=report.request_count,
                    )
                    for op, report in sorted(observation.sla_reports.items())
                ],
            ))
        self._series.record("observed_rate", now, observation.request_rate)
        self._series.record("forecast_rate", now, plan.forecast_rate)
        self._series.record("target_nodes", now, plan.target_nodes)
        self._series.record("nodes", now, self._cluster.node_count())
        self._series.record("groups", now, self._cluster.group_count())
        self._series.record("pending_maintenance", now, observation.pending_maintenance)
        self._series.record("cache_hit_rate", now, observation.cache_hit_rate)

    def actions(self) -> List[ScalingAction]:
        return list(self._actions)

    def plans(self) -> List[CapacityPlan]:
        """Every CapacityPlan emitted, one per control step (for audits:
        E11 asserts each hybrid plan sits inside the clamp band)."""
        return list(self._plans)

    def series(self) -> TimeSeriesRecorder:
        """Time series of everything the controller observed and decided."""
        return self._series

    def scale_up_count(self) -> int:
        return sum(1 for a in self._actions if a.kind == "scale_up")

    def scale_down_count(self) -> int:
        return sum(1 for a in self._actions if a.kind == "scale_down")

    def surge_up_count(self) -> int:
        return sum(1 for a in self._actions if a.kind == "surge_up")

    def surge_down_count(self) -> int:
        return sum(1 for a in self._actions if a.kind == "surge_down")

    def repartition_count(self) -> int:
        return sum(1 for a in self._actions if a.kind == "repartition")

    def evacuation_count(self) -> int:
        return sum(1 for a in self._actions if a.kind == "evacuate")
