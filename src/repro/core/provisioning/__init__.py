"""The provisioning feedback loop (Figure 2).

``monitor`` observes workload and SLA attainment window by window and trains
the performance models; ``planner`` converts a forecast plus the declared
SLAs into a target capacity; ``controller`` closes the loop by renting and
releasing utility-computing instances and attaching them to the storage
cluster as replica groups.

The planner's latency sizing is pluggable (``backends``): ``analytical``
uses the closed-form M/G/k-style model in ``analytic`` alone, ``ml`` uses
the learned latency model alone, and the default ``hybrid`` takes the
analytical answer as the backbone and admits the ML answer only as a
bounded residual clamped to a configurable band around it — so mistaught
training windows can no longer drive capacity to ``max_nodes`` (the
latency-model runaway that used to break E6 and fig4's Performance axis).
"""

from repro.core.provisioning.analytic import AnalyticSizingModel, SizingBreakdown
from repro.core.provisioning.backends import (
    PLANNER_BACKENDS,
    AnalyticalBackend,
    HybridBackend,
    LatencyRequirement,
    MLBackend,
    make_backend,
)
from repro.core.provisioning.monitor import SLAMonitor, WindowObservation, WorkloadStatsProvider
from repro.core.provisioning.planner import CapacityPlan, CapacityPlanner
from repro.core.provisioning.controller import ProvisioningController, ScalingAction

__all__ = [
    "AnalyticSizingModel",
    "SizingBreakdown",
    "PLANNER_BACKENDS",
    "AnalyticalBackend",
    "MLBackend",
    "HybridBackend",
    "LatencyRequirement",
    "make_backend",
    "SLAMonitor",
    "WindowObservation",
    "WorkloadStatsProvider",
    "CapacityPlanner",
    "CapacityPlan",
    "ProvisioningController",
    "ScalingAction",
]
