"""The provisioning feedback loop (Figure 2).

``monitor`` observes workload and SLA attainment window by window and trains
the ML performance models; ``planner`` converts a forecast plus the declared
SLAs into a target capacity; ``controller`` closes the loop by renting and
releasing utility-computing instances and attaching them to the storage
cluster as replica groups.
"""

from repro.core.provisioning.monitor import SLAMonitor, WindowObservation, WorkloadStatsProvider
from repro.core.provisioning.planner import CapacityPlan, CapacityPlanner
from repro.core.provisioning.controller import ProvisioningController, ScalingAction

__all__ = [
    "SLAMonitor",
    "WindowObservation",
    "WorkloadStatsProvider",
    "CapacityPlanner",
    "CapacityPlan",
    "ProvisioningController",
    "ScalingAction",
]
