"""Workload and SLA monitoring: the observation half of the feedback loop.

Every control interval the monitor closes a window: it measures the request
rate and write fraction, the cluster's load statistics, the pending
maintenance backlog, and each SLA's attainment over the window, then feeds
those observations into the ML performance models.  The resulting
:class:`WindowObservation` is what the planner and controller act on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol

from repro.core.consistency.spec import PerformanceSLA
from repro.metrics.sla import SLAReport, SLATracker
from repro.ml.features import FeatureExtractor, WorkloadFeatures
from repro.ml.performance_model import LatencyPercentileModel, PropagationLagModel
from repro.storage.cluster import Cluster


class WorkloadStatsProvider(Protocol):
    """What the monitor needs from the serving engine."""

    def cumulative_operation_counts(self) -> Dict[str, int]:
        """Cumulative counts since start, keyed 'read' / 'write' (at least)."""

    def sla_trackers(self) -> Dict[str, SLATracker]:
        """The live SLA trackers, keyed by operation type."""

    def pending_maintenance(self) -> int:
        """Queued asynchronous index-maintenance tasks right now."""

    def recent_max_propagation_lag(self) -> float:
        """Largest replication/index propagation lag observed recently (seconds)."""


@dataclass
class WindowObservation:
    """Everything measured over one closed control window."""

    time: float
    duration: float
    request_rate: float
    write_fraction: float
    features: WorkloadFeatures
    sla_reports: Dict[str, SLAReport] = field(default_factory=dict)
    pending_maintenance: int = 0
    max_propagation_lag: float = 0.0

    def any_sla_violated(self) -> bool:
        return any(not report.satisfied for report in self.sla_reports.values())


class SLAMonitor:
    """Closes observation windows and trains the performance models."""

    def __init__(
        self,
        cluster: Cluster,
        stats_provider: WorkloadStatsProvider,
        latency_model: LatencyPercentileModel,
        lag_model: PropagationLagModel,
        slas: Dict[str, PerformanceSLA],
        exclude_hotspot_training: bool = False,
        hotspot_skew_ratio: float = 1.6,
    ) -> None:
        if hotspot_skew_ratio <= 1.0:
            raise ValueError("hotspot_skew_ratio must be > 1")
        self._cluster = cluster
        self._provider = stats_provider
        self._latency_model = latency_model
        self._lag_model = lag_model
        self._slas = dict(slas)
        self._exclude_hotspot_training = exclude_hotspot_training
        self._hotspot_skew_ratio = hotspot_skew_ratio
        self._extractor = FeatureExtractor()
        self._last_counts: Dict[str, int] = {}
        self._last_time: Optional[float] = None
        self._observations: List[WindowObservation] = []

    # ------------------------------------------------------------------ windows

    def close_window(self, now: float) -> WindowObservation:
        """Measure everything since the previous window close and train models."""
        counts = self._provider.cumulative_operation_counts()
        previous = self._last_counts or {key: 0 for key in counts}
        window_counts = {key: counts.get(key, 0) - previous.get(key, 0) for key in counts}
        duration = now - self._last_time if self._last_time is not None else 0.0
        self._last_counts = dict(counts)
        self._last_time = now

        total_ops = sum(max(v, 0) for v in window_counts.values())
        writes = max(window_counts.get("write", 0), 0)
        request_rate = total_ops / duration if duration > 0 else 0.0
        write_fraction = writes / total_ops if total_ops > 0 else 0.0

        self._cluster.decay_load()
        stats = self._cluster.stats()
        pending = self._provider.pending_maintenance()
        features = self._extractor.extract(
            request_rate=request_rate,
            write_fraction=write_fraction,
            node_count=max(stats.node_count, 1),
            mean_utilisation=stats.mean_utilisation,
            max_utilisation=stats.max_utilisation,
            pending_updates=pending,
        )

        reports: Dict[str, SLAReport] = {}
        for op_type, tracker in self._provider.sla_trackers().items():
            reports[op_type] = tracker.close_window()

        max_lag = self._provider.recent_max_propagation_lag()
        observation = WindowObservation(
            time=now,
            duration=duration,
            request_rate=request_rate,
            write_fraction=write_fraction,
            features=features,
            sla_reports=reports,
            pending_maintenance=pending,
            max_propagation_lag=max_lag,
        )
        self._train(observation)
        self._observations.append(observation)
        return observation

    def _train(self, observation: WindowObservation) -> None:
        """Feed the window into the latency and propagation models."""
        if observation.request_rate <= 0:
            return
        # Train the latency model on the op type the primary SLA cares about
        # (reads by default), falling back to any op type with traffic.
        # Hotspot windows (one node far hotter than the cluster mean) are
        # optionally excluded: their tail latency reflects *placement*, not
        # capacity, and training on them teaches the capacity model that
        # adding nodes never helps.  The repartition branch owns that regime.
        train_latency = not (
            self._exclude_hotspot_training
            and observation.features.max_utilisation
            >= self._hotspot_skew_ratio * max(observation.features.mean_utilisation, 1e-9)
            and observation.features.max_utilisation >= 0.3
        )
        for op_type, sla in self._slas.items():
            report = observation.sla_reports.get(op_type)
            if report is None or report.request_count == 0:
                continue
            if train_latency:
                self._latency_model.observe(observation.features,
                                            report.observed_percentile_latency)
        self._lag_model.observe(
            pending_updates=observation.pending_maintenance,
            per_node_rate=observation.features.per_node_rate,
            observed_lag=observation.max_propagation_lag,
        )

    # ---------------------------------------------------------------- reporting

    def observations(self) -> List[WindowObservation]:
        return list(self._observations)

    def violation_windows(self) -> int:
        """Number of closed windows in which at least one SLA was violated."""
        return sum(1 for obs in self._observations if obs.any_sla_violated())
