"""Workload and SLA monitoring: the observation half of the feedback loop.

Every control interval the monitor closes a window: it measures the request
rate and write fraction, the cluster's load statistics, the pending
maintenance backlog, and each SLA's attainment over the window, then feeds
those observations into the ML performance models.  The resulting
:class:`WindowObservation` is what the planner and controller act on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Tuple

from repro.core.consistency.spec import PerformanceSLA
from repro.metrics.sla import SLAReport, SLATracker
from repro.ml.features import FeatureExtractor, WorkloadFeatures
from repro.ml.performance_model import LatencyPercentileModel, PropagationLagModel
from repro.storage.cluster import Cluster


class WorkloadStatsProvider(Protocol):
    """What the monitor needs from the serving engine."""

    def cumulative_operation_counts(self) -> Dict[str, int]:
        """Cumulative counts since start, keyed 'read' / 'write' (at least)."""

    def sla_trackers(self) -> Dict[str, SLATracker]:
        """The live SLA trackers, keyed by operation type."""

    def pending_maintenance(self) -> int:
        """Queued asynchronous index-maintenance tasks right now."""

    def recent_max_propagation_lag(self) -> float:
        """Largest replication/index propagation lag observed recently (seconds)."""

    def cache_hit_counts(self) -> Tuple[int, int]:
        """Cumulative cache-tier (hits, misses); (0, 0) without a cache.

        Optional: providers predating the cache tier may omit it (the monitor
        falls back to (0, 0) via ``getattr``).
        """

    def drain_cluster_read_window(self):
        """Latencies of reads the *cluster* served this window (cache hits
        excluded), as a :class:`~repro.metrics.percentiles.PercentileEstimator`
        — or None when the window had none.

        Optional, like :meth:`cache_hit_counts`: the monitor probes via
        ``getattr`` and simply keeps the pre-existing skip-on-blend behaviour
        when the provider cannot separate the miss path.
        """


@dataclass
class WindowObservation:
    """Everything measured over one closed control window."""

    time: float
    duration: float
    request_rate: float
    write_fraction: float
    features: WorkloadFeatures
    sla_reports: Dict[str, SLAReport] = field(default_factory=dict)
    pending_maintenance: int = 0
    max_propagation_lag: float = 0.0
    # Fraction of this window's client demand the cache tier absorbed.
    # ``request_rate`` is the *client* rate (what the forecaster should learn);
    # the cluster saw only ``request_rate * (1 - cache_hit_rate)`` of it, and
    # ``features`` are built from that cluster-side rate.
    cache_hit_rate: float = 0.0
    # SLA-percentile latency over only the reads the cluster served this
    # window (None when the provider cannot separate them, or none happened).
    # On blended windows this replaces the poisoned blended label.
    cluster_read_percentile: Optional[float] = None
    # Contention diagnosis (inert defaults when the contention layer is off).
    # A violated window is *contention-classified* when the worst host's mean
    # service residual clears the configured threshold while cluster mean
    # utilisation sits below the quiet bound — service-dominated latency at
    # low queueing, the signature renting capacity cannot fix.
    contention_suspected: bool = False
    noisy_host: str = ""
    noisy_host_residual: float = 0.0
    # Worst-decile span-kind fractions for this window (telemetry-on only;
    # evidence attached to timeline records, never consulted by decisions —
    # telemetry-on runs must stay byte-identical to telemetry-off runs).
    span_kind_fractions: Optional[Dict[str, float]] = None

    def any_sla_violated(self) -> bool:
        return any(not report.satisfied for report in self.sla_reports.values())


class SLAMonitor:
    """Closes observation windows and trains the performance models."""

    # Above this window absorption, the observed latency percentile is a
    # cache/cluster blend and is not used as a latency-model label.
    CACHE_BLEND_TRAINING_CUTOFF = 0.05

    def __init__(
        self,
        cluster: Cluster,
        stats_provider: WorkloadStatsProvider,
        latency_model: LatencyPercentileModel,
        lag_model: PropagationLagModel,
        slas: Dict[str, PerformanceSLA],
        exclude_hotspot_training: bool = False,
        hotspot_skew_ratio: float = 1.6,
        rate_tracker=None,
        sizing_model=None,
        telemetry=None,
        contention_config=None,
        tracer=None,
    ) -> None:
        """``sizing_model`` is an optional
        :class:`~repro.core.provisioning.analytic.AnalyticSizingModel`; when
        supplied, each clean training window also calibrates its percentile
        service time and demand amplification (bounded EWMAs — see
        ``observe_window``), so the analytical planner backends track the
        measured workload without inheriting the ML model's failure modes.

        ``rate_tracker`` is an optional
        :class:`~repro.storage.rebalancer.PartitionLoadTracker` (any object
        with ``rate_estimate()``/``total_load()``).  When supplied — the
        engine passes the rebalancer's tracker — the mean-utilisation feature
        is computed from its decayed-count rate inversion instead of the mean
        of per-node interarrival EWMAs, whose reciprocal is systematically
        high (Jensen) and noisy over short windows.  The max-utilisation
        feature keeps using node EWMAs: it exists to capture single-node
        hotspots, which an aggregate rate cannot see.
        """
        if hotspot_skew_ratio <= 1.0:
            raise ValueError("hotspot_skew_ratio must be > 1")
        self._cluster = cluster
        self._provider = stats_provider
        self._latency_model = latency_model
        self._lag_model = lag_model
        self._slas = dict(slas)
        self._exclude_hotspot_training = exclude_hotspot_training
        self._hotspot_skew_ratio = hotspot_skew_ratio
        self._rate_tracker = rate_tracker
        self._sizing_model = sizing_model
        # Optional obs.Telemetry: per-window counters/gauges/histograms.
        self._telemetry = telemetry
        # Optional repro.sim.hosts.ContentionConfig: arms the per-host health
        # estimator and contention-vs-capacity window classification.
        self._contention_config = contention_config
        # Optional obs.Tracer: span-kind attribution *evidence* for
        # contention-classified windows (never part of the decision).
        self._tracer = tracer
        self._extractor = FeatureExtractor()
        self._last_counts: Dict[str, int] = {}
        self._last_time: Optional[float] = None
        self._last_cache_counts: Tuple[int, int] = (0, 0)
        self._observations: List[WindowObservation] = []

    # ------------------------------------------------------------------ windows

    def close_window(self, now: float) -> WindowObservation:
        """Measure everything since the previous window close and train models."""
        counts = self._provider.cumulative_operation_counts()
        previous = self._last_counts or {key: 0 for key in counts}
        window_counts = {key: counts.get(key, 0) - previous.get(key, 0) for key in counts}
        duration = now - self._last_time if self._last_time is not None else 0.0
        self._last_counts = dict(counts)
        self._last_time = now

        total_ops = sum(max(v, 0) for v in window_counts.values())
        writes = max(window_counts.get("write", 0), 0)
        request_rate = total_ops / duration if duration > 0 else 0.0
        write_fraction = writes / total_ops if total_ops > 0 else 0.0
        cache_hit_rate = self._window_cache_hit_rate(write_fraction)

        self._cluster.decay_load()
        stats = self._cluster.stats()
        pending = self._provider.pending_maintenance()
        # The cluster never saw the reads the cache absorbed; feed the models
        # the rate that actually reached the nodes, or a well-cached workload
        # would teach the latency model that enormous rates are harmless.
        # Absorption also shifts the *mix* that reaches the nodes toward
        # writes (only reads are absorbed), so the feature write fraction is
        # writes over cluster-served operations, not over client operations.
        cluster_rate = request_rate * (1.0 - cache_hit_rate)
        cluster_write_fraction = write_fraction
        if cache_hit_rate > 0.0:
            cluster_write_fraction = min(
                write_fraction / max(1.0 - cache_hit_rate, 1e-9), 1.0)
        mean_utilisation = stats.mean_utilisation
        if self._rate_tracker is not None and self._rate_tracker.total_load() > 0 \
                and stats.total_capacity_ops > 0 \
                and getattr(self._rate_tracker, "prunes_total", 0) == 0:
            # Decayed-count rate inversion: steadier than per-node
            # interarrival EWMAs (see PartitionLoadTracker.rate_estimate).
            # Once the sketch has pruned, its totals under-count the cold
            # tail and the inverted rate is biased low — a deflated mean
            # would misclassify busy windows as hotspots (and suppress
            # latency-model training), so fall back to the EWMAs then.
            mean_utilisation = (self._rate_tracker.rate_estimate()
                                / stats.total_capacity_ops)
        features = self._extractor.extract(
            request_rate=cluster_rate,
            write_fraction=cluster_write_fraction,
            node_count=max(stats.node_count, 1),
            mean_utilisation=mean_utilisation,
            max_utilisation=stats.max_utilisation,
            pending_updates=pending,
        )

        reports: Dict[str, SLAReport] = {}
        for op_type, tracker in self._provider.sla_trackers().items():
            reports[op_type] = tracker.close_window()

        max_lag = self._provider.recent_max_propagation_lag()
        cluster_read_percentile = self._drain_cluster_read_percentile()
        observation = WindowObservation(
            time=now,
            duration=duration,
            request_rate=request_rate,
            write_fraction=write_fraction,
            features=features,
            sla_reports=reports,
            pending_maintenance=pending,
            max_propagation_lag=max_lag,
            cache_hit_rate=cache_hit_rate,
            cluster_read_percentile=cluster_read_percentile,
        )
        if self._contention_config is not None:
            self._diagnose(observation)
        self._train(observation)
        self._observations.append(observation)
        telemetry = self._telemetry
        if telemetry is not None:
            telemetry.count("monitor.windows")
            if observation.any_sla_violated():
                telemetry.count("monitor.violation_windows")
            if observation.contention_suspected:
                telemetry.count("monitor.contention_windows")
            telemetry.gauge("monitor.peak_request_rate", request_rate)
            telemetry.gauge("monitor.peak_utilisation", stats.max_utilisation)
            if duration > 0:
                telemetry.observe("monitor.window_rate", request_rate)
                telemetry.observe("monitor.window_cache_hit_rate", cache_hit_rate)
        return observation

    def host_residuals(self) -> Dict[str, float]:
        """Per-host health: mean service residual over alive colocated nodes.

        Built from each node's EWMA of observed base service time relative to
        its model's analytic mean (:meth:`StorageNode.service_residual`) —
        an estimator, not the injected ground-truth factor.  Correlated
        elevation across one host's tenants is the noisy-neighbor signature.
        """
        residuals: Dict[str, float] = {}
        host_map = self._cluster.host_map
        if host_map is None:
            return residuals
        for host in host_map.hosts():
            values = []
            for node_id in host_map.nodes_on(host):
                node = self._cluster.nodes.get(node_id)
                if node is not None and node.alive:
                    values.append(node.service_residual())
            if values:
                residuals[host] = sum(values) / len(values)
        return residuals

    def _diagnose(self, observation: WindowObservation) -> None:
        """Classify a violated window: capacity shortfall vs contention.

        Contention = the worst host's residual clears ``residual_threshold``
        while mean utilisation is at or below ``quiet_utilisation``:
        service-dominated latency at low queueing.  Renting nodes cannot fix
        that — the controller's remediation is to evacuate the named host.
        When a tracer is attached, the window's worst-decile span-kind split
        is recorded as *evidence* only; the classification never reads it,
        so telemetry-on runs stay byte-identical to telemetry-off runs.
        """
        cfg = self._contention_config
        residuals = self.host_residuals()
        if not residuals:
            return
        noisy = max(residuals, key=residuals.get)
        observation.noisy_host_residual = residuals[noisy]
        if residuals[noisy] >= cfg.residual_threshold:
            observation.noisy_host = noisy
        observation.contention_suspected = (
            observation.any_sla_violated()
            and observation.noisy_host != ""
            and observation.features.mean_utilisation <= cfg.quiet_utilisation
        )
        if self._tracer is not None and observation.contention_suspected \
                and observation.duration > 0:
            from repro.obs.attribution import attribute_windows
            start = observation.time - observation.duration
            in_window = [t for t in self._tracer.traces
                         if start <= t.start <= observation.time]
            windows = attribute_windows(in_window, window=observation.duration)
            if windows:
                observation.span_kind_fractions = windows[-1].kind_fractions()

    def _drain_cluster_read_percentile(self) -> Optional[float]:
        """SLA-percentile latency of this window's cluster-served reads.

        Drained every window (whether or not training uses it) so the
        provider's miss-path estimator stays windowed; None when the provider
        predates the miss-path tracker or the window had no cluster reads.
        """
        drain = getattr(self._provider, "drain_cluster_read_window", None)
        if not callable(drain):
            return None
        window = drain()
        if window is None or len(window) == 0:
            return None
        read_sla = self._slas.get("read")
        percentile = read_sla.percentile if read_sla is not None else 99.0
        return window.percentile(percentile)

    def _window_cache_hit_rate(self, write_fraction: float) -> float:
        """Fraction of this window's client demand the cache tier absorbed.

        Measured in *lookup* units, not operations: a compiled query is one
        operation but several cache lookups (its range scan plus each
        dereference), and every lookup that misses is cluster work the
        discount must not hide.  The lookup-level hit rate — hits over
        (hits + misses) — is therefore the fraction of an average read's
        cluster cost that was absorbed; scaling by the read share
        ``1 - write_fraction`` converts it to a fraction of total demand
        (writes never consult the cache).
        """
        counts_fn = getattr(self._provider, "cache_hit_counts", None)
        if not callable(counts_fn):
            return 0.0
        hits, misses = counts_fn()
        last_hits, last_misses = self._last_cache_counts
        self._last_cache_counts = (hits, misses)
        window_hits = max(hits - last_hits, 0)
        window_misses = max(misses - last_misses, 0)
        lookups = window_hits + window_misses
        if lookups <= 0:
            return 0.0
        read_share = min(max(1.0 - write_fraction, 0.0), 1.0)
        return (window_hits / lookups) * read_share

    def _train(self, observation: WindowObservation) -> None:
        """Feed the window into the latency and propagation models."""
        if observation.request_rate <= 0:
            return
        # Train the latency model on the op type the primary SLA cares about
        # (reads by default), falling back to any op type with traffic.
        # Hotspot windows (one node far hotter than the cluster mean) are
        # optionally excluded: their tail latency reflects *placement*, not
        # capacity, and training on them teaches the capacity model that
        # adding nodes never helps.  The repartition branch owns that regime.
        # Windows with material cache absorption used to be excluded outright
        # for the dual reason: the observed *read* percentile blends
        # sub-millisecond cache hits with cluster reads, so the label says
        # "this cluster rate is harmless" when it is the *cache* that made it
        # harmless — a model trained on that under-provisions the moment the
        # hit rate drops.  With a provider that tracks the miss path
        # separately, the blend is repaired instead of skipped: the read
        # label becomes the cluster-served-reads-only percentile (which
        # matches the cluster-side features by construction), so the model
        # keeps learning while the cache is hot.  Providers without the
        # tracker keep the old skip.
        hotspot_window = (
            self._exclude_hotspot_training
            and observation.features.max_utilisation
            >= self._hotspot_skew_ratio * max(observation.features.mean_utilisation, 1e-9)
            and observation.features.max_utilisation >= 0.3
        )
        blended_window = observation.cache_hit_rate >= self.CACHE_BLEND_TRAINING_CUTOFF
        for op_type, sla in self._slas.items():
            report = observation.sla_reports.get(op_type)
            if report is None or report.request_count == 0:
                continue
            if hotspot_window:
                continue
            if observation.contention_suspected \
                    and self._contention_config.placement_aware:
                # Contention-classified windows have the same label pathology
                # as hotspot windows: the tail reflects a noisy *host*, not
                # capacity, and training on it teaches the sizing models that
                # nodes never help.  The evacuation branch owns this regime.
                # The capacity-only ablation (placement_aware=False) keeps
                # training on the poisoned labels on purpose: conflating
                # contention with capacity — and renting nodes that do not
                # help — is exactly the pathology it exists to demonstrate.
                continue
            label = report.observed_percentile_latency
            if blended_window and op_type == "read":
                if observation.cluster_read_percentile is None:
                    continue  # no clean label available: keep the old skip
                label = observation.cluster_read_percentile
            self._latency_model.observe(observation.features, label)
            if self._sizing_model is not None and op_type == "read":
                # Same label hygiene as the ML model: hotspot windows are
                # already skipped above, blended read labels are repaired.
                self._sizing_model.observe_window(observation.features, label)
        self._lag_model.observe(
            pending_updates=observation.pending_maintenance,
            per_node_rate=observation.features.per_node_rate,
            observed_lag=observation.max_propagation_lag,
        )

    # ---------------------------------------------------------------- reporting

    def observations(self) -> List[WindowObservation]:
        return list(self._observations)

    def violation_windows(self) -> int:
        """Number of closed windows in which at least one SLA was violated."""
        return sum(1 for obs in self._observations if obs.any_sla_violated())
