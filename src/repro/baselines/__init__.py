"""Comparison baselines.

* :class:`NaiveRdbms` — an unrestricted, single-node, scan-based store: the
  architecture the paper argues stops scaling (per-query cost grows with the
  user population).
* static provisioning — simply a :class:`~repro.core.engine.Scads` instance
  constructed with ``autoscale=False``; no separate class is needed.
* reactive provisioning — ``Scads(predictive_scaling=False)``: the controller
  reacts to the current observation instead of the ML forecast.
* :class:`QuorumStore` — a Dynamo-style (N, R, W) tunable store used to
  compare hand-tuned quorums against the declarative specification.
"""

from repro.baselines.naive_rdbms import NaiveRdbms
from repro.baselines.quorum_store import QuorumStore

__all__ = ["NaiveRdbms", "QuorumStore"]
