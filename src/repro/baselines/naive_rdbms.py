"""A deliberately naive single-node relational-style store.

This is the anti-pattern SCADS exists to replace: every query is executed by
scanning the relevant tables, so query latency grows linearly (or worse) with
the total number of rows — i.e. with the user population.  Experiment E1 runs
the same workload against this baseline and against SCADS to reproduce the
paper's scale-independence argument.

The cost model is intentionally simple and favourable to the baseline: each
row touched during a scan costs a fixed amount of CPU time, and there is no
network.  Even under those generous assumptions the per-query latency grows
with the user base while SCADS's stays flat.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple


@dataclass
class NaiveQueryResult:
    """Rows plus the modelled execution cost of a naive scan-based query."""

    rows: List[Dict[str, Any]]
    rows_scanned: int
    latency: float


class NaiveRdbms:
    """Single-node store executing joins by nested-loop scans.

    Args:
        row_scan_cost: seconds of CPU per row touched while scanning.
        base_cost: fixed per-query overhead (parsing, planning, round trip).
    """

    def __init__(self, row_scan_cost: float = 2e-6, base_cost: float = 0.002) -> None:
        if row_scan_cost <= 0 or base_cost < 0:
            raise ValueError("row_scan_cost must be positive and base_cost non-negative")
        self.row_scan_cost = row_scan_cost
        self.base_cost = base_cost
        self._tables: Dict[str, Dict[Tuple, Dict[str, Any]]] = {}

    # -------------------------------------------------------------------- data

    def create_table(self, name: str) -> None:
        """Create an empty table (idempotent)."""
        self._tables.setdefault(name, {})

    def insert(self, table: str, key: Tuple, row: Dict[str, Any]) -> None:
        """Insert or overwrite one row."""
        self.create_table(table)
        self._tables[table][key] = dict(row)

    def row_count(self, table: str) -> int:
        return len(self._tables.get(table, {}))

    def total_rows(self) -> int:
        return sum(len(rows) for rows in self._tables.values())

    # ----------------------------------------------------------------- queries

    def _scan(self, table: str) -> List[Dict[str, Any]]:
        return list(self._tables.get(table, {}).values())

    def select_where(self, table: str, column: str, value: Any,
                     limit: Optional[int] = None) -> NaiveQueryResult:
        """``SELECT * FROM table WHERE column = value`` by full scan."""
        scanned = 0
        matches = []
        for row in self._scan(table):
            scanned += 1
            if row.get(column) == value:
                matches.append(dict(row))
                if limit is not None and len(matches) >= limit:
                    # A real scan cannot stop early without an index unless it
                    # is willing to return an arbitrary subset; we allow the
                    # early exit anyway, which only flatters the baseline.
                    break
        return NaiveQueryResult(
            rows=matches,
            rows_scanned=scanned,
            latency=self.base_cost + scanned * self.row_scan_cost,
        )

    def friend_birthdays(self, user_id: str, limit: Optional[int] = None) -> NaiveQueryResult:
        """The paper's example query executed as a scan + nested-loop join.

        Scans the friendships table for the user's friends, then probes the
        profiles table (hash probe, one row cost each), then sorts by
        birthday.  Without a precomputed index the friendship scan alone
        touches every friendship row in the system.
        """
        scanned = 0
        friends: List[str] = []
        for row in self._scan("friendships"):
            scanned += 1
            if row.get("f1") == user_id:
                friends.append(row["f2"])
        joined: List[Dict[str, Any]] = []
        profiles = self._tables.get("profiles", {})
        for friend_id in friends:
            scanned += 1
            profile = profiles.get((friend_id,))
            if profile is not None:
                joined.append(dict(profile))
        joined.sort(key=lambda r: r.get("birthday", ""))
        if limit is not None:
            joined = joined[:limit]
        return NaiveQueryResult(
            rows=joined,
            rows_scanned=scanned,
            latency=self.base_cost + scanned * self.row_scan_cost,
        )

    def friends_of(self, user_id: str, limit: Optional[int] = None) -> NaiveQueryResult:
        """``SELECT * FROM friendships WHERE f1 = user_id`` by full scan."""
        return self.select_where("friendships", "f1", user_id, limit=None if limit is None else limit)
