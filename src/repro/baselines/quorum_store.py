"""A Dynamo-style quorum-tuned key-value store baseline.

The paper argues (Section 2.2 and related work) that exposing quorum knobs
(N, R, W) forces developers to reason about mechanisms, whereas SCADS lets
them declare outcomes.  This baseline exposes exactly those knobs on top of
the same simulated cluster so experiment E12 can sweep (R, W) combinations
and compare latency / consistency outcomes against one declarative spec.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

from repro.sim.simulator import Simulator
from repro.storage.cluster import Cluster
from repro.storage.records import Key
from repro.storage.router import RequestResult, Router


@dataclass
class QuorumConfig:
    """The hand-tuned knobs: replication factor N, read quorum R, write quorum W."""

    n: int = 3
    r: int = 1
    w: int = 1

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("N must be >= 1")
        if not 1 <= self.r <= self.n:
            raise ValueError("need 1 <= R <= N")
        if not 1 <= self.w <= self.n:
            raise ValueError("need 1 <= W <= N")

    @property
    def strongly_consistent(self) -> bool:
        """R + W > N guarantees a read quorum overlaps every write quorum."""
        return self.r + self.w > self.n


class QuorumStore:
    """A key-value store whose consistency is tuned via (N, R, W)."""

    NAMESPACE = "quorum:data"

    def __init__(
        self,
        config: QuorumConfig,
        seed: int = 0,
        initial_groups: int = 2,
        node_capacity_ops: float = 1000.0,
    ) -> None:
        self.config = config
        self.sim = Simulator(seed=seed)
        self.cluster = Cluster(
            simulator=self.sim,
            replication_factor=config.n,
            initial_groups=initial_groups,
            node_capacity_ops=node_capacity_ops,
        )
        self.router = Router(self.cluster)
        self._writes = 0
        self._reads = 0
        self._stale_reads = 0

    # ---------------------------------------------------------------- operations

    def put(self, key: Key, value: Dict[str, Any], writer: str = "") -> RequestResult:
        """Write with W synchronous acknowledgements."""
        self._writes += 1
        return self.router.write(
            self.NAMESPACE, key, value, writer=writer, write_quorum=self.config.w
        )

    def get(self, key: Key) -> RequestResult:
        """Read from R replicas, returning the newest version seen."""
        self._reads += 1
        return self.router.read(self.NAMESPACE, key, read_quorum=self.config.r)

    def get_and_check_staleness(self, key: Key) -> Tuple[RequestResult, bool]:
        """Read and report whether the result was stale w.r.t. the primary.

        Used by E12 to measure the consistency outcome of each (R, W) setting
        without the developer having declared what they actually wanted.
        """
        result = self.get(key)
        stale = False
        if result.success:
            group = self.cluster.group_for_key(self.NAMESPACE, key)
            primary = self.cluster.nodes.get(group.primary)
            if primary is not None and primary.alive:
                latest = primary.peek(self.NAMESPACE, key)
                observed_version = result.value.version if result.value is not None else 0
                latest_version = latest.version if latest is not None else 0
                stale = observed_version < latest_version
        if stale:
            self._stale_reads += 1
        return result, stale

    def run_for(self, seconds: float) -> None:
        """Advance simulated time (lets asynchronous replication apply)."""
        self.sim.run_until(self.sim.now + seconds)

    # ----------------------------------------------------------------- reporting

    def stale_read_fraction(self) -> float:
        """Fraction of checked reads that returned stale data."""
        if self._reads == 0:
            return 0.0
        return self._stale_reads / self._reads
