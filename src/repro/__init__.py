"""Reproduction of SCADS: Scale-Independent Storage for Social Computing Applications.

The package is organised as a set of substrates (``sim``, ``storage``,
``cloud``, ``workloads``, ``ml``, ``metrics``), the paper's core contribution
(``core``) built on top of them, and the comparison baselines
(``baselines``).  The public entry point for applications is
:class:`repro.core.engine.Scads`.
"""

from repro.core.engine import Scads
# Imported after the engine: the cache package reaches back into
# repro.core.consistency, so letting the engine import complete first keeps
# the (benign) cycle one-directional at import time.
from repro.cache.tier import CacheConfig
from repro.core.schema import EntitySchema, Field, FieldType, Relationship
from repro.core.consistency import (
    ConsistencySpec,
    DurabilitySLA,
    PerformanceSLA,
    ReadConsistency,
    SessionGuarantee,
    WriteConsistency,
)

__version__ = "0.1.0"

__all__ = [
    "Scads",
    "CacheConfig",
    "EntitySchema",
    "Field",
    "FieldType",
    "Relationship",
    "ConsistencySpec",
    "PerformanceSLA",
    "WriteConsistency",
    "ReadConsistency",
    "SessionGuarantee",
    "DurabilitySLA",
    "__version__",
]
