"""Machine-learning substrate.

The paper leans on prior RAD Lab work (Hilighter, query-performance
prediction, ensembles of models) for one job: *predict performance from
workload and configuration so provisioning can act before SLAs are violated*.
This package provides that capability with models implemented directly on
numpy — linear and quantile regression, k-nearest-neighbour prediction, and
ensembles — plus the workload forecaster and the performance models the
provisioning loop trains online from the simulator's own measurements.
"""

from repro.ml.features import FeatureExtractor, WorkloadFeatures
from repro.ml.regression import (
    LinearRegressionModel,
    QuantileRegressionModel,
    RidgeRegressionModel,
)
from repro.ml.knn import KNNRegressor
from repro.ml.ensemble import EnsembleModel
from repro.ml.forecaster import WorkloadForecaster
from repro.ml.performance_model import LatencyPercentileModel, PropagationLagModel

__all__ = [
    "WorkloadFeatures",
    "FeatureExtractor",
    "LinearRegressionModel",
    "RidgeRegressionModel",
    "QuantileRegressionModel",
    "KNNRegressor",
    "EnsembleModel",
    "WorkloadForecaster",
    "LatencyPercentileModel",
    "PropagationLagModel",
]
