"""Workload forecasting.

Scale-up must start *before* load arrives (instances take minutes to boot and
data movement takes time), so the provisioning loop forecasts the request rate
a horizon ahead.  The forecaster fits both a linear and an exponential
(log-linear) trend to the recent rate history and uses whichever explains the
recent window better — exponential growth is exactly the Animoto/Figure-1
case, where linear extrapolation would systematically under-provision.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

import numpy as np


class WorkloadForecaster:
    """Short-horizon request-rate forecaster built from observed history.

    Args:
        window: number of recent observations used for trend fitting.
        min_observations: below this, the forecaster just returns the latest
            rate (no extrapolation) — avoids wild forecasts from two points.
    """

    def __init__(self, window: int = 30, min_observations: int = 5) -> None:
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        if min_observations < 2:
            raise ValueError(f"min_observations must be >= 2, got {min_observations}")
        self.window = window
        self.min_observations = min_observations
        self._history: Deque[Tuple[float, float]] = deque(maxlen=window)

    def observe(self, time: float, rate: float) -> None:
        """Record the observed aggregate request rate at a point in time."""
        if rate < 0:
            raise ValueError(f"rate must be non-negative, got {rate}")
        if self._history and time < self._history[-1][0]:
            raise ValueError("observations must arrive in time order")
        self._history.append((float(time), float(rate)))

    def observation_count(self) -> int:
        return len(self._history)

    def latest_rate(self) -> float:
        """The most recently observed rate (0 if nothing observed yet)."""
        if not self._history:
            return 0.0
        return self._history[-1][1]

    def forecast(self, horizon: float) -> float:
        """Predicted aggregate rate ``horizon`` seconds from the last observation.

        Falls back to the latest observation when history is too short, and
        never forecasts below zero.
        """
        if horizon < 0:
            raise ValueError(f"horizon must be non-negative, got {horizon}")
        if len(self._history) < self.min_observations:
            return self.latest_rate()
        times = np.array([t for t, _ in self._history])
        rates = np.array([r for _, r in self._history])
        t0 = times[-1]
        x = times - t0  # so the forecast point is x = horizon
        linear_pred, linear_err = self._fit_and_score(x, rates, horizon)
        if np.all(rates > 0):
            log_pred, log_err = self._fit_and_score(x, np.log(rates), horizon)
            exp_pred = float(np.exp(log_pred))
            # Compare errors in rate space to pick the better-shaped trend.
            if self._rate_space_error_log(x, rates) < linear_err:
                return max(exp_pred, 0.0)
        return max(float(linear_pred), 0.0)

    @staticmethod
    def _fit_and_score(x: np.ndarray, y: np.ndarray, horizon: float) -> Tuple[float, float]:
        """Least-squares line fit; returns (prediction at ``horizon``, mean abs error)."""
        design = np.vstack([x, np.ones_like(x)]).T
        coeffs, *_ = np.linalg.lstsq(design, y, rcond=None)
        fitted = design @ coeffs
        error = float(np.mean(np.abs(fitted - y)))
        prediction = float(coeffs[0] * horizon + coeffs[1])
        return prediction, error

    @staticmethod
    def _rate_space_error_log(x: np.ndarray, rates: np.ndarray) -> float:
        """Mean absolute error of the log-linear fit, evaluated in rate space."""
        design = np.vstack([x, np.ones_like(x)]).T
        coeffs, *_ = np.linalg.lstsq(design, np.log(rates), rcond=None)
        fitted = np.exp(design @ coeffs)
        return float(np.mean(np.abs(fitted - rates)))

    def growth_rate(self) -> float:
        """Recent relative growth per second (0 when history is too short).

        Positive values mean the workload is growing; the provisioning
        controller uses this to decide how aggressively to lead demand.
        """
        if len(self._history) < self.min_observations:
            return 0.0
        times = np.array([t for t, _ in self._history])
        rates = np.array([r for _, r in self._history])
        span = times[-1] - times[0]
        if span <= 0 or rates[0] <= 0:
            return 0.0
        return float((rates[-1] - rates[0]) / rates[0] / span)
