"""Regression models implemented on numpy.

Three flavours are used by the provisioning loop:

* :class:`LinearRegressionModel` — ordinary least squares, the workhorse for
  mean-behaviour prediction (replication lag, throughput).
* :class:`RidgeRegressionModel` — the same with L2 regularisation, more stable
  when the loop has only a few observation windows.
* :class:`QuantileRegressionModel` — pinball-loss regression fitted by
  subgradient descent; this is what predicts *tail* latency (the 99.9th
  percentile the SLA talks about) rather than the mean.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np


class NotFittedError(RuntimeError):
    """Raised when predict() is called before fit()."""


def _design_matrix(features: np.ndarray) -> np.ndarray:
    """Append an intercept column to a 2-D feature matrix."""
    features = np.atleast_2d(np.asarray(features, dtype=float))
    ones = np.ones((features.shape[0], 1))
    return np.hstack([features, ones])


class LinearRegressionModel:
    """Ordinary least-squares linear regression with an intercept."""

    def __init__(self) -> None:
        self._weights: Optional[np.ndarray] = None

    @property
    def is_fitted(self) -> bool:
        return self._weights is not None

    def fit(self, features: Sequence[Sequence[float]], targets: Sequence[float]) -> "LinearRegressionModel":
        """Fit weights minimising squared error."""
        x = _design_matrix(np.asarray(features, dtype=float))
        y = np.asarray(targets, dtype=float)
        if x.shape[0] != y.shape[0]:
            raise ValueError(
                f"feature rows ({x.shape[0]}) and targets ({y.shape[0]}) must match"
            )
        if x.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        self._weights, *_ = np.linalg.lstsq(x, y, rcond=None)
        return self

    def predict(self, features: Sequence[Sequence[float]]) -> np.ndarray:
        """Predict targets for a matrix (or single row) of features."""
        if self._weights is None:
            raise NotFittedError("model has not been fitted")
        x = _design_matrix(np.asarray(features, dtype=float))
        return x @ self._weights

    def predict_one(self, feature_row: Sequence[float]) -> float:
        """Predict for a single feature vector."""
        return float(self.predict([list(feature_row)])[0])

    @property
    def coefficients(self) -> np.ndarray:
        """Fitted weights (last entry is the intercept)."""
        if self._weights is None:
            raise NotFittedError("model has not been fitted")
        return self._weights.copy()


class RidgeRegressionModel(LinearRegressionModel):
    """Linear regression with L2 regularisation (intercept not penalised)."""

    def __init__(self, alpha: float = 1.0) -> None:
        super().__init__()
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        self.alpha = alpha

    def fit(self, features: Sequence[Sequence[float]], targets: Sequence[float]) -> "RidgeRegressionModel":
        x = _design_matrix(np.asarray(features, dtype=float))
        y = np.asarray(targets, dtype=float)
        if x.shape[0] != y.shape[0]:
            raise ValueError("feature rows and targets must match")
        if x.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        n_features = x.shape[1]
        penalty = self.alpha * np.eye(n_features)
        penalty[-1, -1] = 0.0  # do not shrink the intercept
        self._weights = np.linalg.solve(x.T @ x + penalty, x.T @ y)
        return self


class QuantileRegressionModel:
    """Linear quantile regression fitted with subgradient descent on pinball loss.

    Args:
        quantile: the conditional quantile to estimate, e.g. 0.999 for the
            99.9th-percentile latency SLA.
        learning_rate: subgradient step size.
        iterations: number of passes over the data.
    """

    def __init__(self, quantile: float = 0.99, learning_rate: float = 0.05,
                 iterations: int = 400) -> None:
        if not 0.0 < quantile < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {quantile}")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self.quantile = quantile
        self.learning_rate = learning_rate
        self.iterations = iterations
        self._weights: Optional[np.ndarray] = None
        self._feature_scale: Optional[np.ndarray] = None

    @property
    def is_fitted(self) -> bool:
        return self._weights is not None

    def fit(self, features: Sequence[Sequence[float]], targets: Sequence[float]) -> "QuantileRegressionModel":
        """Fit by minimising the pinball (quantile) loss."""
        x_raw = np.atleast_2d(np.asarray(features, dtype=float))
        y = np.asarray(targets, dtype=float)
        if x_raw.shape[0] != y.shape[0]:
            raise ValueError("feature rows and targets must match")
        if x_raw.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        # Scale features to keep the subgradient steps well conditioned.
        scale = np.maximum(np.abs(x_raw).max(axis=0), 1e-9)
        self._feature_scale = scale
        x = _design_matrix(x_raw / scale)
        n_samples, n_features = x.shape
        weights = np.zeros(n_features)
        # Warm start from the least-squares solution: it is usually close.
        weights, *_ = np.linalg.lstsq(x, y, rcond=None)
        tau = self.quantile
        for iteration in range(self.iterations):
            residuals = y - x @ weights
            # Pinball-loss subgradient w.r.t. predictions.
            grad_pred = np.where(residuals >= 0, -tau, 1.0 - tau)
            gradient = x.T @ grad_pred / n_samples
            step = self.learning_rate / (1.0 + 0.01 * iteration)
            weights = weights - step * gradient * max(np.abs(y).mean(), 1e-9)
            self._weights = weights
        return self

    def predict(self, features: Sequence[Sequence[float]]) -> np.ndarray:
        """Predict the conditional quantile for each feature row."""
        if self._weights is None or self._feature_scale is None:
            raise NotFittedError("model has not been fitted")
        x_raw = np.atleast_2d(np.asarray(features, dtype=float))
        x = _design_matrix(x_raw / self._feature_scale)
        return x @ self._weights

    def predict_one(self, feature_row: Sequence[float]) -> float:
        """Predict the conditional quantile for a single feature vector."""
        return float(self.predict([list(feature_row)])[0])

    def pinball_loss(self, features: Sequence[Sequence[float]], targets: Sequence[float]) -> float:
        """Mean pinball loss on a dataset (lower is better)."""
        predictions = self.predict(features)
        y = np.asarray(targets, dtype=float)
        residuals = y - predictions
        tau = self.quantile
        losses = np.where(residuals >= 0, tau * residuals, (tau - 1.0) * residuals)
        return float(np.mean(losses))
