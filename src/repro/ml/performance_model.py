"""Performance models trained online from the system's own measurements.

Two models close the paper's provisioning feedback loop:

* :class:`LatencyPercentileModel` — maps workload/configuration features to
  the observed latency at the SLA percentile.  The capacity planner inverts
  it ("how many nodes keep the predicted percentile under the target?").
* :class:`PropagationLagModel` — maps update-queue pressure to observed
  replication/index-propagation lag, used to provision for wall-clock
  staleness bounds.

Both start from a conservative analytic prior (an M/M/1-shaped curve) so the
system behaves sensibly before it has gathered any training windows, then
switch to the learned model once enough observations exist.

Training is bounded on both axes: observations live in a sliding window of
the most recent ``max_training_windows`` measurements (stale regimes age
out, memory stays O(window) over arbitrarily long runs), and refits happen
on a ``retrain_every`` cadence rather than per observation (refitting per
window is O(n^2) work over a run).

The planner no longer trusts this model unconditionally: in the default
``hybrid`` backend (see :mod:`repro.core.provisioning.backends`) its answer
is a *bounded residual* clamped to a band around the closed-form analytical
answer, so mistaught training windows cannot demand capacity without bound.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

import numpy as np

from repro.ml.ensemble import EnsembleModel
from repro.ml.features import WorkloadFeatures
from repro.ml.knn import KNNRegressor
from repro.ml.regression import QuantileRegressionModel, RidgeRegressionModel


@dataclass(frozen=True)
class NodeRequirement:
    """Result of inverting the latency model for a target.

    ``feasible=False`` means no node count within ``max_nodes`` met the
    target — ``nodes`` is then the ``max_nodes`` cap itself and callers must
    treat it as "the model says scaling cannot fix this", not as a sizing
    answer.  (The old API returned the cap silently, which is how the
    latency-model runaway rented toward ``max_nodes`` unnoticed.)
    """

    nodes: int
    feasible: bool


class LatencyPercentileModel:
    """Predicts the SLA-percentile latency for a candidate configuration.

    Args:
        base_service_time: node service time at low load (seconds); anchors
            the analytic prior.
        node_capacity_ops: per-node sustainable ops/sec; anchors the prior's
            utilisation term.
        percentile: the SLA percentile being modelled (e.g. 99.9).
        min_training_windows: observations required before trusting the
            learned model over the analytic prior.
        retrain_every: refit cadence, in observations.
        max_training_windows: sliding-window bound on retained observations.
    """

    # Tail inflation of the percentile over the median for a log-normal-ish
    # service distribution; only used by the analytic prior.
    PRIOR_TAIL_FACTOR = 4.0

    def __init__(
        self,
        base_service_time: float = 0.004,
        node_capacity_ops: float = 1000.0,
        percentile: float = 99.9,
        min_training_windows: int = 8,
        retrain_every: int = 4,
        max_training_windows: int = 512,
    ) -> None:
        if base_service_time <= 0 or node_capacity_ops <= 0:
            raise ValueError("base_service_time and node_capacity_ops must be positive")
        if not 0.0 < percentile < 100.0:
            raise ValueError(f"percentile must be in (0, 100), got {percentile}")
        if max_training_windows < min_training_windows:
            raise ValueError("max_training_windows must be >= min_training_windows")
        self.base_service_time = base_service_time
        self.node_capacity_ops = node_capacity_ops
        self.percentile = percentile
        self.min_training_windows = min_training_windows
        self.retrain_every = retrain_every
        self.max_training_windows = max_training_windows
        self._features: Deque[np.ndarray] = deque(maxlen=max_training_windows)
        self._targets: Deque[float] = deque(maxlen=max_training_windows)
        self._model: Optional[EnsembleModel] = None
        self._observations_since_fit = 0
        self.fit_count = 0

    # -------------------------------------------------------------- observation

    def observe(self, features: WorkloadFeatures, observed_percentile_latency: float) -> None:
        """Record one closed window's features and measured percentile latency."""
        if observed_percentile_latency < 0:
            raise ValueError("latency must be non-negative")
        if not math.isfinite(observed_percentile_latency):
            # Windows with no successful requests report infinite latency;
            # they carry no signal about the latency-vs-load surface.
            return
        self._features.append(features.as_vector())
        self._targets.append(float(observed_percentile_latency))
        self._observations_since_fit += 1
        if (
            len(self._targets) >= self.min_training_windows
            and self._observations_since_fit >= self.retrain_every
        ):
            self._fit()

    def training_size(self) -> int:
        return len(self._targets)

    @property
    def is_trained(self) -> bool:
        return self._model is not None

    def _fit(self) -> None:
        members = [
            RidgeRegressionModel(alpha=1.0),
            QuantileRegressionModel(quantile=min(self.percentile / 100.0, 0.995),
                                    iterations=200),
            KNNRegressor(k=5),
        ]
        model = EnsembleModel(members)
        model.fit(list(self._features), list(self._targets))
        self._model = model
        self._observations_since_fit = 0
        self.fit_count += 1

    # --------------------------------------------------------------- prediction

    def prior_prediction(self, per_node_rate: float) -> float:
        """Analytic prior: M/M/1-shaped percentile latency vs. per-node load."""
        utilisation = min(per_node_rate / self.node_capacity_ops, 0.99)
        return self.base_service_time * self.PRIOR_TAIL_FACTOR / (1.0 - utilisation)

    def predict(self, features: WorkloadFeatures) -> float:
        """Predicted SLA-percentile latency for the given configuration."""
        if self._model is None:
            return self.prior_prediction(features.per_node_rate)
        learned = float(self._model.predict_one(features.as_vector()))
        # The learned model can extrapolate below physical service time when
        # asked about configurations far from anything observed; floor it.
        return max(learned, self.base_service_time)

    def _candidate_features(self, predicted_rate: float, write_fraction: float,
                            nodes: int, pending_updates: int) -> WorkloadFeatures:
        """The feature vector of a candidate configuration at ``nodes``."""
        utilisation = min(predicted_rate / (nodes * self.node_capacity_ops), 0.99)
        return WorkloadFeatures(
            request_rate=predicted_rate,
            write_fraction=write_fraction,
            node_count=float(nodes),
            per_node_rate=predicted_rate / nodes,
            mean_utilisation=utilisation,
            max_utilisation=min(utilisation * 1.2, 0.99),
            pending_updates=float(pending_updates),
        )

    def required_nodes_search(
        self,
        predicted_rate: float,
        write_fraction: float,
        target_latency: float,
        max_nodes: int = 10_000,
        headroom: float = 0.85,
        pending_updates: int = 0,
    ) -> NodeRequirement:
        """Smallest node count whose predicted percentile latency meets the SLA.

        ``headroom`` tightens the target so the plan leaves margin for model
        error — the provisioning loop's "don't sail exactly at the SLA" knob.

        The search is a monotone bisection over the capacity-feasible range
        ``[ceil(rate / capacity), max_nodes]`` — O(log max_nodes) predictions
        instead of the old O(max_nodes) linear scan.  Predicted latency is
        assumed non-increasing in the node count (true of the prior and of
        any physically sensible learned surface; where a mistaught model
        violates it, bisection still terminates and the hybrid planner's
        clamp band bounds the damage).  When not even ``max_nodes`` meets
        the target the result carries ``feasible=False`` instead of the old
        silent cap.
        """
        if predicted_rate < 0:
            raise ValueError("predicted_rate must be non-negative")
        if target_latency <= 0:
            raise ValueError("target_latency must be positive")
        if not 0.0 < headroom <= 1.0:
            raise ValueError("headroom must be in (0, 1]")
        effective_target = target_latency * headroom
        if predicted_rate == 0:
            return NodeRequirement(nodes=1, feasible=True)

        def meets(nodes: int) -> bool:
            features = self._candidate_features(
                predicted_rate, write_fraction, nodes, pending_updates)
            return self.predict(features) <= effective_target

        # Lower bound from raw capacity so the search starts in a sane place.
        lower = max(int(math.ceil(predicted_rate / self.node_capacity_ops)), 1)
        if lower > max_nodes or not meets(max_nodes):
            return NodeRequirement(nodes=max_nodes, feasible=False)
        low, high = lower, max_nodes
        while low < high:
            mid = (low + high) // 2
            if meets(mid):
                high = mid
            else:
                low = mid + 1
        return NodeRequirement(nodes=low, feasible=True)

    def required_nodes(
        self,
        predicted_rate: float,
        write_fraction: float,
        target_latency: float,
        max_nodes: int = 10_000,
        headroom: float = 0.85,
        pending_updates: int = 0,
    ) -> int:
        """Node count from :meth:`required_nodes_search` (back-compat shim).

        Prefer the search variant: this collapses the ``feasible`` flag and
        cannot distinguish "needs max_nodes" from "infeasible at any scale".
        """
        return self.required_nodes_search(
            predicted_rate=predicted_rate,
            write_fraction=write_fraction,
            target_latency=target_latency,
            max_nodes=max_nodes,
            headroom=headroom,
            pending_updates=pending_updates,
        ).nodes


class PropagationLagModel:
    """Predicts index/replica propagation lag from update-queue pressure.

    Like the latency model, training is bounded: a sliding window of the
    most recent ``max_training_windows`` observations, refit every
    ``retrain_every`` observations (the old behaviour refit on *every*
    observe past the minimum — O(n^2) over a long run — while the
    observation lists grew without bound).
    """

    def __init__(
        self,
        min_training_windows: int = 6,
        retrain_every: int = 4,
        max_training_windows: int = 512,
    ) -> None:
        if max_training_windows < min_training_windows:
            raise ValueError("max_training_windows must be >= min_training_windows")
        if retrain_every < 1:
            raise ValueError("retrain_every must be >= 1")
        self.min_training_windows = min_training_windows
        self.retrain_every = retrain_every
        self.max_training_windows = max_training_windows
        self._features: Deque[list] = deque(maxlen=max_training_windows)
        self._targets: Deque[float] = deque(maxlen=max_training_windows)
        self._model: Optional[RidgeRegressionModel] = None
        self._observations_since_fit = 0
        self.fit_count = 0

    def observe(self, pending_updates: int, per_node_rate: float, observed_lag: float) -> None:
        """Record one window's queue depth, per-node load, and measured lag."""
        if observed_lag < 0:
            raise ValueError("lag must be non-negative")
        self._features.append([float(pending_updates), float(per_node_rate)])
        self._targets.append(float(observed_lag))
        self._observations_since_fit += 1
        if (
            len(self._targets) >= self.min_training_windows
            and self._observations_since_fit >= self.retrain_every
        ):
            self._model = RidgeRegressionModel(alpha=1.0).fit(
                list(self._features), list(self._targets))
            self._observations_since_fit = 0
            self.fit_count += 1

    def training_size(self) -> int:
        return len(self._targets)

    @property
    def is_trained(self) -> bool:
        return self._model is not None

    def predict(self, pending_updates: int, per_node_rate: float) -> float:
        """Predicted propagation lag (seconds) for the given pressure.

        Before training, returns a conservative prior proportional to queue
        depth (each pending update is assumed to take a few milliseconds).
        """
        if self._model is None:
            return 0.005 * float(pending_updates) + 0.01
        predicted = self._model.predict_one([float(pending_updates), float(per_node_rate)])
        return max(float(predicted), 0.0)

    def danger(self, pending_updates: int, per_node_rate: float, staleness_bound: float) -> bool:
        """True when predicted lag is within 20 % of the declared staleness bound."""
        if staleness_bound <= 0:
            raise ValueError("staleness_bound must be positive")
        return self.predict(pending_updates, per_node_rate) >= 0.8 * staleness_bound
