"""Performance models trained online from the system's own measurements.

Two models close the paper's provisioning feedback loop:

* :class:`LatencyPercentileModel` — maps workload/configuration features to
  the observed latency at the SLA percentile.  The capacity planner inverts
  it ("how many nodes keep the predicted percentile under the target?").
* :class:`PropagationLagModel` — maps update-queue pressure to observed
  replication/index-propagation lag, used to provision for wall-clock
  staleness bounds.

Both start from a conservative analytic prior (an M/M/1-shaped curve) so the
system behaves sensibly before it has gathered any training windows, then
switch to the learned model once enough observations exist.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.ml.ensemble import EnsembleModel
from repro.ml.features import WorkloadFeatures
from repro.ml.knn import KNNRegressor
from repro.ml.regression import QuantileRegressionModel, RidgeRegressionModel


class LatencyPercentileModel:
    """Predicts the SLA-percentile latency for a candidate configuration.

    Args:
        base_service_time: node service time at low load (seconds); anchors
            the analytic prior.
        node_capacity_ops: per-node sustainable ops/sec; anchors the prior's
            utilisation term.
        percentile: the SLA percentile being modelled (e.g. 99.9).
        min_training_windows: observations required before trusting the
            learned model over the analytic prior.
    """

    # Tail inflation of the percentile over the median for a log-normal-ish
    # service distribution; only used by the analytic prior.
    PRIOR_TAIL_FACTOR = 4.0

    def __init__(
        self,
        base_service_time: float = 0.004,
        node_capacity_ops: float = 1000.0,
        percentile: float = 99.9,
        min_training_windows: int = 8,
        retrain_every: int = 4,
    ) -> None:
        if base_service_time <= 0 or node_capacity_ops <= 0:
            raise ValueError("base_service_time and node_capacity_ops must be positive")
        if not 0.0 < percentile < 100.0:
            raise ValueError(f"percentile must be in (0, 100), got {percentile}")
        self.base_service_time = base_service_time
        self.node_capacity_ops = node_capacity_ops
        self.percentile = percentile
        self.min_training_windows = min_training_windows
        self.retrain_every = retrain_every
        self._features: List[np.ndarray] = []
        self._targets: List[float] = []
        self._model: Optional[EnsembleModel] = None
        self._observations_since_fit = 0

    # -------------------------------------------------------------- observation

    def observe(self, features: WorkloadFeatures, observed_percentile_latency: float) -> None:
        """Record one closed window's features and measured percentile latency."""
        if observed_percentile_latency < 0:
            raise ValueError("latency must be non-negative")
        if not math.isfinite(observed_percentile_latency):
            # Windows with no successful requests report infinite latency;
            # they carry no signal about the latency-vs-load surface.
            return
        self._features.append(features.as_vector())
        self._targets.append(float(observed_percentile_latency))
        self._observations_since_fit += 1
        if (
            len(self._targets) >= self.min_training_windows
            and self._observations_since_fit >= self.retrain_every
        ):
            self._fit()

    def training_size(self) -> int:
        return len(self._targets)

    @property
    def is_trained(self) -> bool:
        return self._model is not None

    def _fit(self) -> None:
        members = [
            RidgeRegressionModel(alpha=1.0),
            QuantileRegressionModel(quantile=min(self.percentile / 100.0, 0.995),
                                    iterations=200),
            KNNRegressor(k=5),
        ]
        model = EnsembleModel(members)
        model.fit(self._features, self._targets)
        self._model = model
        self._observations_since_fit = 0

    # --------------------------------------------------------------- prediction

    def prior_prediction(self, per_node_rate: float) -> float:
        """Analytic prior: M/M/1-shaped percentile latency vs. per-node load."""
        utilisation = min(per_node_rate / self.node_capacity_ops, 0.99)
        return self.base_service_time * self.PRIOR_TAIL_FACTOR / (1.0 - utilisation)

    def predict(self, features: WorkloadFeatures) -> float:
        """Predicted SLA-percentile latency for the given configuration."""
        if self._model is None:
            return self.prior_prediction(features.per_node_rate)
        learned = float(self._model.predict_one(features.as_vector()))
        # The learned model can extrapolate below physical service time when
        # asked about configurations far from anything observed; floor it.
        return max(learned, self.base_service_time)

    def required_nodes(
        self,
        predicted_rate: float,
        write_fraction: float,
        target_latency: float,
        max_nodes: int = 10_000,
        headroom: float = 0.85,
        pending_updates: int = 0,
    ) -> int:
        """Smallest node count whose predicted percentile latency meets the SLA.

        ``headroom`` tightens the target so the plan leaves margin for model
        error — the provisioning loop's "don't sail exactly at the SLA" knob.
        """
        if predicted_rate < 0:
            raise ValueError("predicted_rate must be non-negative")
        if target_latency <= 0:
            raise ValueError("target_latency must be positive")
        if not 0.0 < headroom <= 1.0:
            raise ValueError("headroom must be in (0, 1]")
        effective_target = target_latency * headroom
        if predicted_rate == 0:
            return 1
        # Lower bound from raw capacity so the search starts in a sane place.
        lower = max(int(math.ceil(predicted_rate / self.node_capacity_ops)), 1)
        for nodes in range(lower, max_nodes + 1):
            features = WorkloadFeatures(
                request_rate=predicted_rate,
                write_fraction=write_fraction,
                node_count=float(nodes),
                per_node_rate=predicted_rate / nodes,
                mean_utilisation=min(predicted_rate / (nodes * self.node_capacity_ops), 0.99),
                max_utilisation=min(predicted_rate / (nodes * self.node_capacity_ops) * 1.2, 0.99),
                pending_updates=float(pending_updates),
            )
            if self.predict(features) <= effective_target:
                return nodes
        return max_nodes


class PropagationLagModel:
    """Predicts index/replica propagation lag from update-queue pressure."""

    def __init__(self, min_training_windows: int = 6) -> None:
        self.min_training_windows = min_training_windows
        self._features: List[List[float]] = []
        self._targets: List[float] = []
        self._model: Optional[RidgeRegressionModel] = None

    def observe(self, pending_updates: int, per_node_rate: float, observed_lag: float) -> None:
        """Record one window's queue depth, per-node load, and measured lag."""
        if observed_lag < 0:
            raise ValueError("lag must be non-negative")
        self._features.append([float(pending_updates), float(per_node_rate)])
        self._targets.append(float(observed_lag))
        if len(self._targets) >= self.min_training_windows:
            self._model = RidgeRegressionModel(alpha=1.0).fit(self._features, self._targets)

    @property
    def is_trained(self) -> bool:
        return self._model is not None

    def predict(self, pending_updates: int, per_node_rate: float) -> float:
        """Predicted propagation lag (seconds) for the given pressure.

        Before training, returns a conservative prior proportional to queue
        depth (each pending update is assumed to take a few milliseconds).
        """
        if self._model is None:
            return 0.005 * float(pending_updates) + 0.01
        predicted = self._model.predict_one([float(pending_updates), float(per_node_rate)])
        return max(float(predicted), 0.0)

    def danger(self, pending_updates: int, per_node_rate: float, staleness_bound: float) -> bool:
        """True when predicted lag is within 20 % of the declared staleness bound."""
        if staleness_bound <= 0:
            raise ValueError("staleness_bound must be positive")
        return self.predict(pending_updates, per_node_rate) >= 0.8 * staleness_bound
