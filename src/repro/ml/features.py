"""Feature extraction for the performance models.

A feature vector summarises one observation window: what the workload looked
like and what the cluster configuration was.  The models then learn the map
from these features to observed latency percentiles / replication lag.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import List

import numpy as np


@dataclass(frozen=True)
class WorkloadFeatures:
    """One observation window's workload + configuration summary.

    Attributes:
        request_rate: aggregate offered request rate (ops/sec).
        write_fraction: fraction of operations that are writes.
        node_count: storage nodes serving the workload.
        per_node_rate: request_rate / node_count — the main capacity signal.
        mean_utilisation: cluster-mean node utilisation during the window.
        max_utilisation: worst node utilisation (captures hot spots).
        pending_updates: queued asynchronous index updates at window end.
    """

    request_rate: float
    write_fraction: float
    node_count: float
    per_node_rate: float
    mean_utilisation: float
    max_utilisation: float
    pending_updates: float = 0.0

    def as_vector(self) -> np.ndarray:
        """The features as a flat numpy vector (field order is stable)."""
        return np.array([getattr(self, f.name) for f in fields(self)], dtype=float)

    @staticmethod
    def feature_names() -> List[str]:
        """Names in the same order ``as_vector`` uses."""
        return [f.name for f in fields(WorkloadFeatures)]


class FeatureExtractor:
    """Builds :class:`WorkloadFeatures` from raw window measurements."""

    def extract(
        self,
        request_rate: float,
        write_fraction: float,
        node_count: int,
        mean_utilisation: float,
        max_utilisation: float,
        pending_updates: int = 0,
    ) -> WorkloadFeatures:
        """Assemble a feature vector, deriving the per-node rate."""
        if node_count <= 0:
            raise ValueError(f"node_count must be positive, got {node_count}")
        if request_rate < 0:
            raise ValueError(f"request_rate must be non-negative, got {request_rate}")
        if not 0.0 <= write_fraction <= 1.0:
            raise ValueError(f"write_fraction must be in [0, 1], got {write_fraction}")
        return WorkloadFeatures(
            request_rate=float(request_rate),
            write_fraction=float(write_fraction),
            node_count=float(node_count),
            per_node_rate=float(request_rate) / float(node_count),
            mean_utilisation=float(mean_utilisation),
            max_utilisation=float(max_utilisation),
            pending_updates=float(pending_updates),
        )
