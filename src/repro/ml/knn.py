"""k-nearest-neighbour regression.

A non-parametric alternative to the linear models: predict the latency of a
candidate configuration from the most similar configurations already
observed.  Useful early in a run, before enough windows exist for the
parametric models to extrapolate sensibly, and as an ensemble member.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.ml.regression import NotFittedError


class KNNRegressor:
    """Distance-weighted k-nearest-neighbour regression."""

    def __init__(self, k: int = 5) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self._features: Optional[np.ndarray] = None
        self._targets: Optional[np.ndarray] = None
        self._scale: Optional[np.ndarray] = None

    @property
    def is_fitted(self) -> bool:
        return self._features is not None

    def fit(self, features: Sequence[Sequence[float]], targets: Sequence[float]) -> "KNNRegressor":
        """Store the training set (lazy learner) with per-feature scaling."""
        x = np.atleast_2d(np.asarray(features, dtype=float))
        y = np.asarray(targets, dtype=float)
        if x.shape[0] != y.shape[0]:
            raise ValueError("feature rows and targets must match")
        if x.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        self._scale = np.maximum(np.abs(x).max(axis=0), 1e-9)
        self._features = x / self._scale
        self._targets = y
        return self

    def predict_one(self, feature_row: Sequence[float]) -> float:
        """Predict the target for one feature vector."""
        if self._features is None or self._targets is None or self._scale is None:
            raise NotFittedError("model has not been fitted")
        query = np.asarray(feature_row, dtype=float) / self._scale
        distances = np.linalg.norm(self._features - query, axis=1)
        k = min(self.k, len(distances))
        nearest = np.argsort(distances)[:k]
        nearest_distances = distances[nearest]
        weights = 1.0 / (nearest_distances + 1e-9)
        return float(np.average(self._targets[nearest], weights=weights))

    def predict(self, features: Sequence[Sequence[float]]) -> np.ndarray:
        """Predict targets for a matrix of feature vectors."""
        return np.array([self.predict_one(row) for row in np.atleast_2d(np.asarray(features, dtype=float))])
