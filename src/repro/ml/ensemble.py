"""Ensembles of models.

The paper cites "Ensembles of models for automated diagnosis of system
performance problems" (Zhang et al., DSN'05) as evidence that combining
several simple models beats relying on one.  :class:`EnsembleModel` does the
straightforward version of that: hold several regressors, weight them by
recent validation error, and predict with the weighted average.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.ml.regression import NotFittedError


class EnsembleModel:
    """A validation-weighted ensemble of regression models.

    Members must expose ``fit(features, targets)`` and
    ``predict_one(feature_row)`` — the shared surface of the models in
    :mod:`repro.ml`.
    """

    def __init__(self, members: Sequence, validation_fraction: float = 0.25) -> None:
        if not members:
            raise ValueError("an ensemble needs at least one member model")
        if not 0.0 < validation_fraction < 1.0:
            raise ValueError("validation_fraction must be in (0, 1)")
        self._members = list(members)
        self._validation_fraction = validation_fraction
        self._weights: Optional[np.ndarray] = None

    @property
    def is_fitted(self) -> bool:
        return self._weights is not None

    @property
    def member_weights(self) -> List[float]:
        """Current per-member weights (after fitting)."""
        if self._weights is None:
            raise NotFittedError("ensemble has not been fitted")
        return [float(w) for w in self._weights]

    def fit(self, features: Sequence[Sequence[float]], targets: Sequence[float]) -> "EnsembleModel":
        """Fit every member and weight them by held-out validation error."""
        x = np.atleast_2d(np.asarray(features, dtype=float))
        y = np.asarray(targets, dtype=float)
        if x.shape[0] != y.shape[0]:
            raise ValueError("feature rows and targets must match")
        if x.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        n = x.shape[0]
        split = max(int(n * (1.0 - self._validation_fraction)), 1)
        train_x, train_y = x[:split], y[:split]
        valid_x, valid_y = x[split:], y[split:]
        if valid_x.shape[0] == 0:
            valid_x, valid_y = train_x, train_y
        errors = []
        for member in self._members:
            member.fit(train_x, train_y)
            predictions = np.array([member.predict_one(row) for row in valid_x])
            errors.append(float(np.mean(np.abs(predictions - valid_y))) + 1e-9)
        inverse = 1.0 / np.asarray(errors)
        self._weights = inverse / inverse.sum()
        # Refit members on the full data now that the weights are chosen.
        for member in self._members:
            member.fit(x, y)
        return self

    def predict_one(self, feature_row: Sequence[float]) -> float:
        """Weighted-average prediction for one feature vector."""
        if self._weights is None:
            raise NotFittedError("ensemble has not been fitted")
        predictions = np.array([m.predict_one(feature_row) for m in self._members])
        return float(np.dot(self._weights, predictions))

    def predict(self, features: Sequence[Sequence[float]]) -> np.ndarray:
        """Weighted-average predictions for a matrix of feature vectors."""
        return np.array([self.predict_one(row) for row in np.atleast_2d(np.asarray(features, dtype=float))])
