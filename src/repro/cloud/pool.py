"""The elastic instance pool.

The provisioning controller asks the pool for more machines (paying the boot
delay before they become usable) or releases machines it no longer needs.
The pool records a full time series of running-instance counts so the Figure-1
reproduction can print the same "servers over time" curve the paper shows for
Animoto.

With a :class:`~repro.cloud.market.SpotMarket` attached, launches may name a
purchase option: ``spot`` instances bill per started minute at the market
rate, can be interrupted with a two-minute notice, and support
hibernate/resume — billing stops while hibernated and a resume pays only a
short wake delay instead of a full boot.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional

from repro.cloud.billing import BillingMeter
from repro.cloud.instances import (
    INSTANCE_TYPES,
    ON_DEMAND,
    PURCHASE_OPTIONS,
    SPOT,
    Instance,
    InstanceState,
    InstanceType,
)
from repro.cloud.market import SPOT_BILLING_INCREMENT, SpotMarket
from repro.metrics.timeseries import TimeSeries
from repro.sim.simulator import Simulator

# Waking a hibernated instance is much faster than a cold boot: the image is
# already laid down, only the guest needs thawing.
RESUME_DELAY = 15.0


class SpotUnavailableError(RuntimeError):
    """Raised when a spot launch/resume is refused by the market."""


class InstancePool:
    """Rents and releases simulated utility-computing instances."""

    def __init__(
        self,
        simulator: Simulator,
        instance_type: InstanceType = INSTANCE_TYPES["m1.small"],
        max_instances: int = 10_000,
        market: Optional[SpotMarket] = None,
    ) -> None:
        if max_instances < 1:
            raise ValueError("max_instances must be at least 1")
        self._sim = simulator
        self.instance_type = instance_type
        self.max_instances = max_instances
        self.billing = BillingMeter()
        self._instances: Dict[str, Instance] = {}
        self._counter = itertools.count()
        self._count_series = TimeSeries(name="running-instances")
        self._count_series.append(simulator.now, 0.0)
        self._market: Optional[SpotMarket] = None
        # Fleet-layer hook: called with (instance, deadline, reason) when the
        # market delivers an interruption notice for one of our instances.
        self.on_spot_interruption: Optional[Callable[[Instance, float, str], None]] = None
        if market is not None:
            self.attach_market(market)

    # ------------------------------------------------------------------ market

    def attach_market(self, market: SpotMarket) -> None:
        """Enable spot purchases against ``market`` for this pool's class."""
        market.add_instance_type(self.instance_type)
        market.set_revoke_hook(self._force_revoke)
        self._market = market

    @property
    def market(self) -> Optional[SpotMarket]:
        return self._market

    def spot_available(self) -> bool:
        """True when the market will accept a spot launch right now."""
        return self._market is not None and self._market.available(self.instance_type.name)

    # ----------------------------------------------------------------- renting

    def launch(self, count: int = 1,
               on_ready: Optional[Callable[[Instance], None]] = None,
               boot_delay_override: Optional[float] = None,
               purchase_option: str = ON_DEMAND) -> List[Instance]:
        """Request ``count`` new instances.

        Each instance becomes usable after its type's boot delay, at which
        point ``on_ready`` is invoked (the provisioner uses this to attach the
        machine to the storage cluster).  ``boot_delay_override`` exists so a
        controller can adopt machines that are already running (delay 0) at
        experiment start.  Raises ``ValueError`` when the request would exceed
        the pool cap, and :class:`SpotUnavailableError` when ``spot`` is
        requested without an attached market or during a drought/price spike.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        if boot_delay_override is not None and boot_delay_override < 0:
            raise ValueError("boot_delay_override must be non-negative")
        if purchase_option not in PURCHASE_OPTIONS:
            raise ValueError(f"unknown purchase option {purchase_option!r}")
        if self.active_count() + self.booting_count() + count > self.max_instances:
            raise ValueError(
                f"launching {count} instances would exceed the pool cap of {self.max_instances}"
            )
        if purchase_option == SPOT:
            if self._market is None:
                raise SpotUnavailableError("no spot market attached to this pool")
            if not self._market.available(self.instance_type.name):
                raise SpotUnavailableError(
                    f"spot capacity for {self.instance_type.name} unavailable "
                    "(drought or price at/above on-demand)")
        boot_delay = (
            self.instance_type.boot_delay if boot_delay_override is None else boot_delay_override
        )
        launched = []
        for _ in range(count):
            instance = Instance(
                instance_id=f"i-{next(self._counter):06d}",
                instance_type=self.instance_type,
                launch_time=self._sim.now,
                purchase_option=purchase_option,
            )
            self._instances[instance.instance_id] = instance
            self._open_lease(instance)
            if purchase_option == SPOT:
                self._register_with_market(instance)
            launched.append(instance)

            def make_ready(inst: Instance) -> Callable[[], None]:
                def ready() -> None:
                    if inst.state is not InstanceState.BOOTING:
                        return  # terminated or hibernated while booting
                    inst.mark_running(self._sim.now)
                    self._record_count()
                    if on_ready is not None:
                        on_ready(inst)

                return ready

            if boot_delay == 0:
                make_ready(instance)()
            else:
                self._sim.schedule(boot_delay, make_ready(instance),
                                   name=f"boot:{instance.instance_id}")
        self._record_count()
        return launched

    def _open_lease(self, instance: Instance) -> None:
        if instance.purchase_option == SPOT:
            assert self._market is not None
            self.billing.open_lease(
                instance.instance_id, self.instance_type, self._sim.now,
                purchase_option=SPOT,
                billing_increment=SPOT_BILLING_INCREMENT,
                price_per_hour=self._market.price_fn(self.instance_type.name),
            )
        else:
            self.billing.open_lease(
                instance.instance_id, self.instance_type, self._sim.now,
                purchase_option=ON_DEMAND,
            )

    def _register_with_market(self, instance: Instance) -> None:
        assert self._market is not None

        def notify(instance_id: str, deadline: float, reason: str) -> None:
            inst = self._instances.get(instance_id)
            if inst is None or inst.state is InstanceState.TERMINATED:
                return
            if self.on_spot_interruption is not None:
                self.on_spot_interruption(inst, deadline, reason)

        self._market.register(instance.instance_id, self.instance_type.name, notify)

    def _force_revoke(self, instance_id: str) -> None:
        """Market deadline enforcement: hibernate an un-drained spot instance."""
        instance = self._instances.get(instance_id)
        if instance is None or instance.state is not InstanceState.RUNNING:
            return
        self.hibernate(instance_id)

    def terminate(self, instance_id: str) -> None:
        """Release one instance (billing charges the started increment)."""
        instance = self._instances.get(instance_id)
        if instance is None:
            raise KeyError(f"unknown instance {instance_id!r}")
        if instance.state is InstanceState.TERMINATED:
            return
        was_hibernated = instance.state is InstanceState.HIBERNATED
        instance.terminate(self._sim.now)
        if not was_hibernated:  # a hibernated instance's lease is already closed
            self.billing.close_lease(instance_id, self._sim.now)
        if self._market is not None:
            self._market.unregister(instance_id)
        self._record_count()

    # -------------------------------------------------------------- hibernation

    def hibernate(self, instance_id: str) -> Instance:
        """Freeze a running instance: lease closes, state is preserved."""
        instance = self._instances.get(instance_id)
        if instance is None:
            raise KeyError(f"unknown instance {instance_id!r}")
        instance.hibernate(self._sim.now)
        self.billing.close_lease(instance_id, self._sim.now)
        if self._market is not None:
            self._market.unregister(instance_id)
        self._record_count()
        return instance

    def resume(self, instance_id: str,
               on_ready: Optional[Callable[[Instance], None]] = None) -> Instance:
        """Wake a hibernated instance; a fresh lease opens immediately.

        Spot instances can only resume when the market will have them back
        (:class:`SpotUnavailableError` otherwise).  ``on_ready`` fires after
        the short :data:`RESUME_DELAY`.
        """
        instance = self._instances.get(instance_id)
        if instance is None:
            raise KeyError(f"unknown instance {instance_id!r}")
        if instance.state is not InstanceState.HIBERNATED:
            raise ValueError(f"instance {instance_id!r} is not hibernated")
        if instance.purchase_option == SPOT:
            if self._market is None or not self._market.available(self.instance_type.name):
                raise SpotUnavailableError(
                    f"cannot resume {instance_id!r}: spot capacity unavailable")
        instance.begin_resume()
        self._open_lease(instance)
        if instance.purchase_option == SPOT:
            self._register_with_market(instance)

        def ready() -> None:
            if instance.state is not InstanceState.BOOTING:
                return
            instance.mark_running(self._sim.now)
            self._record_count()
            if on_ready is not None:
                on_ready(instance)

        self._sim.schedule(RESUME_DELAY, ready, name=f"resume:{instance_id}")
        self._record_count()
        return instance

    # ------------------------------------------------------------------ queries

    def instances(self, state: Optional[InstanceState] = None) -> List[Instance]:
        """All instances, optionally filtered by state."""
        if state is None:
            return list(self._instances.values())
        return [i for i in self._instances.values() if i.state is state]

    def get(self, instance_id: str) -> Optional[Instance]:
        return self._instances.get(instance_id)

    def active_count(self) -> int:
        """Instances currently able to serve traffic."""
        return len(self.instances(InstanceState.RUNNING))

    def booting_count(self) -> int:
        """Instances paid for but not yet usable."""
        return len(self.instances(InstanceState.BOOTING))

    def hibernated_count(self) -> int:
        """Instances frozen with their state preserved (not billed)."""
        return len(self.instances(InstanceState.HIBERNATED))

    def running_or_booting(self) -> List[Instance]:
        """Instances that are currently being paid for."""
        return [
            i for i in self._instances.values()
            if i.state in (InstanceState.RUNNING, InstanceState.BOOTING)
        ]

    def count_series(self) -> TimeSeries:
        """Time series of the number of billed (running or booting) instances."""
        return self._count_series

    def _record_count(self) -> None:
        self._count_series.append(self._sim.now, float(len(self.running_or_booting())))

    # ------------------------------------------------------------------ billing

    def total_cost(self) -> float:
        """Dollars accrued so far (open leases billed up to the current time)."""
        return self.billing.total_cost(self._sim.now)

    def total_machine_hours(self) -> float:
        """Machine-hours accrued so far."""
        return self.billing.total_machine_hours(self._sim.now)

    def cost_by_purchase_option(self) -> Dict[str, float]:
        """Dollars split by purchase option."""
        return self.billing.cost_by_purchase_option(self._sim.now)
